// Power estimation from signal statistics: the paper's point that the
// t.o.p. integral *is* the toggling rate, so SPSTA subsumes probabilistic
// power estimation (Sec. 3.1). Compares three toggle-rate estimators and
// prints dynamic power for both scenarios.
//
//   $ ./example_power_estimate [circuit]     (default: s344)

#include <cmath>
#include <cstdio>
#include <string>

#include "core/spsta.hpp"
#include "core/toggle_moments.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"
#include "power/transition_density.hpp"

int main(int argc, char** argv) {
  using namespace spsta;

  const std::string which = argc > 1 ? argv[1] : "s344";
  const netlist::Netlist design = netlist::make_paper_circuit(which);
  const netlist::DelayModel delays = netlist::DelayModel::unit(design);

  std::printf("circuit %s: %zu gates\n\n", design.name().c_str(), design.gate_count());
  std::printf("%-10s  %-12s  %-12s  %-12s  %-12s\n", "scenario", "density-eq6",
              "spsta-top", "mc-filtered", "power @1GHz");

  for (const bool second : {false, true}) {
    const netlist::SourceStats sc =
        second ? netlist::scenario_II() : netlist::scenario_I();

    // (a) Najm transition density (paper Eq. 6).
    const power::TransitionDensities td = power::propagate_transition_density(
        design, std::vector<double>{sc.probs.final_one()},
        std::vector<double>{sc.probs.toggle_probability()});

    // (b) SPSTA t.o.p. masses: glitch-filtered per-cycle toggle probability.
    const core::SpstaResult spsta =
        core::run_spsta_moment(design, delays, std::vector{sc});

    // (c) Monte Carlo reference.
    mc::MonteCarloConfig cfg;
    cfg.runs = 10000;
    const mc::MonteCarloResult mcr =
        mc::run_monte_carlo(design, delays, std::vector{sc}, cfg);

    double sum_density = 0.0, sum_top = 0.0, sum_mc = 0.0;
    for (netlist::NodeId id = 0; id < design.node_count(); ++id) {
      if (!netlist::is_combinational(design.node(id).type)) continue;
      sum_density += td.density[id];
      sum_top += spsta.node[id].rise.mass + spsta.node[id].fall.mass;
      sum_mc += mcr.node[id].probs().toggle_probability();
    }
    // Dynamic power with 10 fF/net, 0.9 V, 1 GHz from the SPSTA estimate.
    power::TransitionDensities top_based;
    top_based.density.assign(1, sum_top);
    const double watts = power::dynamic_power(top_based, 0.9, 1e9, 10e-15);

    std::printf("%-10s  %-12.2f  %-12.2f  %-12.2f  %.3f mW\n",
                second ? "II" : "I", sum_density, sum_top, sum_mc, watts * 1e3);
  }

  std::printf("\n(sums of per-gate toggle rates; density-eq6 counts glitch edges,\n"
              " spsta-top and mc-filtered count settled transitions only)\n");

  // Toggle-rate moments and correlations (paper Eq. 13).
  const netlist::SourceStats sc = netlist::scenario_I();
  const double tp = sc.probs.toggle_probability();
  const core::ToggleMoments tm = core::propagate_toggle_moments(
      design, std::vector<double>{sc.probs.final_one()},
      std::vector<core::SourceToggle>{{tp, tp * (1.0 - tp)}});

  const auto endpoints = design.timing_endpoints();
  if (endpoints.size() >= 2) {
    std::printf("\ntoggle-rate statistics at two endpoints (Eq. 13):\n");
    for (int i = 0; i < 2; ++i) {
      std::printf("  %-8s mean=%.3f  sigma=%.3f\n",
                  design.node(endpoints[i]).name.c_str(), tm.mean(endpoints[i]),
                  std::sqrt(tm.variance(endpoints[i])));
    }
    std::printf("  correlation(%s, %s) = %.3f\n",
                design.node(endpoints[0]).name.c_str(),
                design.node(endpoints[1]).name.c_str(),
                tm.correlation(endpoints[0], endpoints[1]));
  }
  return 0;
}
