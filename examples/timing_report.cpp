// Timing report for an ISCAS'89-class benchmark: run SPSTA / SSTA / Monte
// Carlo, print the Table 2-style comparison at the most critical endpoint
// plus the structural critical path.
//
//   $ ./example_timing_report [circuit] [scenario]
//
//   circuit:  s27, s208, s298, s344, s349, s382, s386, s526, s1196, s1238
//             or a path to a .bench file               (default: s298)
//   scenario: I or II                                  (default: I)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "netlist/bench_io.hpp"
#include "netlist/graph.hpp"
#include "netlist/iscas89.hpp"
#include "report/experiment.hpp"
#include "report/table.hpp"
#include "spsta_api.hpp"

int main(int argc, char** argv) {
  using namespace spsta;

  const std::string which = argc > 1 ? argv[1] : "s298";
  const std::string scenario = argc > 2 ? argv[2] : "I";

  netlist::Netlist parsed;
  if (std::filesystem::exists(which)) {
    std::ifstream in(which);
    parsed = netlist::parse_bench_stream(in, std::filesystem::path(which).stem().string());
  } else {
    parsed = netlist::make_paper_circuit(which);
  }

  report::ExperimentConfig cfg;
  cfg.scenario = scenario == "II" ? netlist::scenario_II() : netlist::scenario_I();
  cfg.mc_runs = 10000;

  // One Analyzer owns the design, unit delay model, per-source statistics
  // and the compiled analysis plan every engine below reuses.
  netlist::DelayModel unit_delays = netlist::DelayModel::unit(parsed);
  Analyzer analyzer(std::move(parsed), std::move(unit_delays),
                    std::vector<netlist::SourceStats>{cfg.scenario});
  const netlist::Netlist& design = analyzer.design();

  std::printf("circuit %s: %zu inputs, %zu outputs, %zu DFFs, %zu gates\n",
              design.name().c_str(), design.primary_inputs().size(),
              design.primary_outputs().size(), design.dffs().size(),
              design.gate_count());

  const report::CircuitExperiment e = report::run_paper_experiment(analyzer, cfg);

  report::Table table({"dir", "endpoint", "SPSTA mu", "SPSTA sig", "SPSTA P",
                       "SSTA mu", "SSTA sig", "MC mu", "MC sig", "MC P"});
  for (const report::DirectionRow* row : {&e.rise, &e.fall}) {
    table.add_row({row->rising ? "r" : "f", design.node(row->endpoint).name,
                   report::Table::num(row->spsta_mu), report::Table::num(row->spsta_sigma),
                   report::Table::num(row->spsta_p), report::Table::num(row->ssta_mu),
                   report::Table::num(row->ssta_sigma), report::Table::num(row->mc_mu),
                   report::Table::num(row->mc_sigma), report::Table::num(row->mc_p)});
  }
  std::printf("\n%s\n", table.to_string().c_str());

  std::printf("mean |signal probability error| vs MC over all nets: %.4f\n",
              e.signal_prob_error);
  std::printf("runtimes: SPSTA %.3fs, SSTA %.3fs, 10K MC %.3fs\n\n",
              e.runtime.spsta_seconds, e.runtime.ssta_seconds, e.runtime.mc_seconds);

  // Structural critical path under the analyzer's mean delays.
  const auto paths = netlist::critical_paths(design, analyzer.delays().means(), 1);
  if (!paths.empty()) {
    std::printf("structural critical path (delay %.1f):\n  ", paths[0].delay);
    for (std::size_t i = 0; i < paths[0].nodes.size(); ++i) {
      if (i) std::printf(" -> ");
      std::printf("%s", design.node(paths[0].nodes[i]).name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
