// Incremental timing-driven "gate sizing" loop: the optimization workload
// block-based SSTA exists for. Repeatedly find the most critical endpoint,
// walk its structurally critical path, speed up the slowest gate on it,
// and re-evaluate — each iteration touching only the changed fanout cone
// through the incremental engine. Also shows the SPSTA yield improving as
// the critical path shrinks.
//
//   $ ./example_incremental_optimization [circuit]     (default: s386)

#include <cmath>
#include <cstdio>
#include <string>

#include "core/spsta.hpp"
#include "core/yield.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/graph.hpp"
#include "netlist/iscas89.hpp"
#include "ssta/incremental.hpp"
#include "ssta/node_criticality.hpp"

int main(int argc, char** argv) {
  using namespace spsta;

  const std::string which = argc > 1 ? argv[1] : "s386";
  const netlist::Netlist design = netlist::make_paper_circuit(which);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  // Start from a load-aware cell library.
  const netlist::CellLibrary lib = netlist::CellLibrary::parse(R"(
NAND    0.90 0.05 0.08
NOR     0.95 0.05 0.08
AND     1.10 0.06 0.10
OR      1.10 0.06 0.10
NOT     0.45 0.02 0.05
BUFF    0.40 0.02 0.05
default 1.00 0.05 0.05
)");
  netlist::DelayModel delays = lib.apply(design);

  ssta::IncrementalSsta inc(design, delays, sc);
  std::printf("optimizing %s (%zu gates)\n\n", design.name().c_str(),
              design.gate_count());
  std::printf("%-5s  %-10s  %-14s  %-14s  %-12s\n", "iter", "WNS-endpoint",
              "worst mu+3sig", "resized gate", "cone visited");

  constexpr int kIterations = 12;
  std::uint64_t last_count = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    // Worst endpoint by mu + 3 sigma of the rising arrival.
    netlist::NodeId worst = design.timing_endpoints().front();
    double worst_q = -1e300;
    for (netlist::NodeId ep : design.timing_endpoints()) {
      const stats::Gaussian& g = inc.arrival(ep).rise;
      const double q = g.mean + 3.0 * g.stddev();
      if (q > worst_q) {
        worst_q = q;
        worst = ep;
      }
    }

    // Resize target: the gate with the largest statistical-criticality x
    // delay product (tightness-cascade criticality, not just the one
    // structural path — a gate on many near-critical paths scores higher).
    const ssta::NodeCriticality crit =
        ssta::compute_node_criticality(design, delays, sc);
    netlist::NodeId slowest = netlist::kInvalidNode;
    double best_score = 0.3;  // stop when nothing slow is critical anymore
    for (netlist::NodeId id = 0; id < design.node_count(); ++id) {
      if (!netlist::is_combinational(design.node(id).type)) continue;
      const double score = crit.criticality[id] * delays.delay(id).mean;
      if (score > best_score) {
        best_score = score;
        slowest = id;
      }
    }
    if (slowest == netlist::kInvalidNode) break;

    // "Upsize": 30% faster, slightly tighter sigma.
    const stats::Gaussian old_delay = delays.delay(slowest);
    const stats::Gaussian new_delay{0.7 * old_delay.mean, 0.5 * old_delay.var};
    delays.set_delay(slowest, new_delay);
    inc.set_delay(slowest, new_delay);
    (void)inc.arrival(worst);

    std::printf("%-5d  %-10s  %-14.3f  %-14s  %llu\n", iter,
                design.node(worst).name.c_str(), worst_q,
                design.node(slowest).name.c_str(),
                static_cast<unsigned long long>(inc.nodes_reevaluated() - last_count));
    last_count = inc.nodes_reevaluated();
  }

  std::printf("\ntotal nodes re-evaluated: %llu (vs %d full passes = %llu)\n",
              static_cast<unsigned long long>(inc.nodes_reevaluated()), kIterations,
              static_cast<unsigned long long>(kIterations * design.node_count()));

  // Yield before/after from the SPSTA numeric engine.
  const core::SpstaNumericResult before = core::run_spsta_numeric(
      design, lib.apply(design), sc);
  const core::SpstaNumericResult after = core::run_spsta_numeric(design, delays, sc);
  const double t_target =
      core::period_for_yield(design, before, 0.99, 0.0, 50.0);
  std::printf("yield at T=%.2f: before %.4f -> after %.4f\n", t_target,
              core::timing_yield(design, before, t_target),
              core::timing_yield(design, after, t_target));
  return 0;
}
