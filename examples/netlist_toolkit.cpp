// Netlist toolkit tour: parse, transform, verify, and export a design —
// the substrate workflow around the timing engines.
//
//   $ ./example_netlist_toolkit [circuit-or-.bench-path]   (default: s344)
//   $ ./example_netlist_toolkit design.hbench        hierarchical: flatten first
//   $ ./example_netlist_toolkit gen-hier:20000:7     generate (gates:seed), then tour
//
// Steps: load -> sweep buffers -> decompose to 2-input gates -> prove
// equivalence with the BDD checker -> report the effect on SPSTA runtime
// -> emit structural Verilog and a DOT view of the critical path.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bdd/equivalence.hpp"
#include "core/spsta.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/dot_export.hpp"
#include "netlist/generator.hpp"
#include "netlist/graph.hpp"
#include "netlist/hier_bench_io.hpp"
#include "netlist/iscas89.hpp"
#include "netlist/transform.hpp"
#include "netlist/verilog_io.hpp"

namespace {
double seconds(auto&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace spsta;

  const std::string which = argc > 1 ? argv[1] : "s344";
  netlist::Netlist design;
  if (which.rfind("gen-hier", 0) == 0) {
    // "gen-hier[:gates[:seed]]": deterministic hierarchical generation; the
    // tour then runs over the flattened equivalent.
    netlist::HierGeneratorSpec spec;
    spec.total_gates = 20000;
    const std::size_t c1 = which.find(':');
    if (c1 != std::string::npos) {
      const std::size_t c2 = which.find(':', c1 + 1);
      spec.total_gates = std::stoull(which.substr(c1 + 1, c2 - c1 - 1));
      if (c2 != std::string::npos) spec.seed = std::stoull(which.substr(c2 + 1));
    }
    const netlist::HierDesign hier = netlist::generate_hier_circuit(spec);
    std::ofstream(spec.name + ".hbench") << netlist::write_hier_bench(hier);
    std::printf("generated %s.hbench: %zu blocks, %zu instances, %zu expanded gates\n",
                spec.name.c_str(), hier.blocks().size(), hier.instances().size(),
                hier.expanded_gate_count());
    design = hier.flatten();
  } else if (which.size() > 7 && which.rfind(".hbench") == which.size() - 7) {
    std::ifstream in(which);
    const netlist::HierDesign hier = netlist::parse_hier_bench_stream(
        in, std::filesystem::path(which).stem().string());
    std::printf("hierarchical %s: %zu blocks, %zu instances -> flattening\n",
                hier.name().c_str(), hier.blocks().size(), hier.instances().size());
    design = hier.flatten();
  } else if (std::filesystem::exists(which)) {
    std::ifstream in(which);
    design = netlist::parse_bench_stream(in, std::filesystem::path(which).stem().string());
  } else {
    design = netlist::make_paper_circuit(which);
  }
  std::printf("loaded %s: %zu nodes, %zu gates\n", design.name().c_str(),
              design.node_count(), design.gate_count());

  // Transform chain.
  netlist::TransformStats sweep_stats, decomp_stats;
  const netlist::Netlist swept = netlist::sweep_buffers(design, &sweep_stats);
  const netlist::Netlist narrow =
      netlist::decompose_wide_gates(swept, 2, &decomp_stats);
  std::printf("sweep_buffers: bypassed %zu gates (%zu nodes remain)\n",
              sweep_stats.gates_bypassed, swept.node_count());
  std::printf("decompose(2):  added %zu gates (%zu nodes now)\n",
              decomp_stats.gates_added, narrow.node_count());

  // Prove the chain preserved every output / DFF function.
  const bdd::EquivalenceResult eq = bdd::check_equivalence(design, narrow);
  std::printf("equivalence:   %s\n",
              eq.equivalent ? "PROVEN (BDD)" :
              eq.failure_reason.empty() ? ("MISMATCH at " + eq.counterexample_output).c_str()
                                        : eq.failure_reason.c_str());

  // Effect on the enumeration-based engine.
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};
  double t_orig = 0.0, t_narrow = 0.0;
  t_orig = seconds([&] {
    (void)core::run_spsta_moment(design, netlist::DelayModel::unit(design), sc);
  });
  t_narrow = seconds([&] {
    (void)core::run_spsta_moment(narrow, netlist::DelayModel::unit(narrow), sc);
  });
  std::printf("SPSTA runtime: %.4fs original vs %.4fs after fanin-2 decomposition\n",
              t_orig, t_narrow);

  // Exports.
  const std::string vpath = design.name() + "_narrow.v";
  std::ofstream(vpath) << netlist::write_verilog(narrow);
  std::printf("wrote %s\n", vpath.c_str());

  const netlist::DelayModel delays = netlist::DelayModel::unit(design);
  const auto paths = netlist::critical_paths(design, delays.means(), 1);
  netlist::DotOptions dot_opt;
  if (!paths.empty()) dot_opt.highlight = paths[0].nodes;
  const std::string dpath = design.name() + ".dot";
  std::ofstream(dpath) << netlist::to_dot(design, dot_opt);
  std::printf("wrote %s (critical path highlighted)\n", dpath.c_str());
  return 0;
}
