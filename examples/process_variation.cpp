// Process variation on top of input statistics: layer Gaussian per-gate
// delays (the library feature the paper's model leaves at unit delay) and
// compare how each engine's critical arrival spreads. Also demonstrates
// the variational substrate: canonical forms with a shared global
// parameter, PCA of a correlated parameter covariance, and interval STA
// bounds (paper Fig. 1's dotted corners).
//
//   $ ./example_process_variation [circuit]     (default: s208)

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas89.hpp"
#include "ssta/path_ssta.hpp"
#include "ssta/ssta.hpp"
#include "stats/pca.hpp"
#include "variational/canonical.hpp"
#include "variational/interval.hpp"

int main(int argc, char** argv) {
  using namespace spsta;

  const std::string which = argc > 1 ? argv[1] : "s208";
  const netlist::Netlist design = netlist::make_paper_circuit(which);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  std::printf("circuit %s under gate-delay variation N(1.0, sigma^2)\n\n",
              design.name().c_str());
  std::printf("%-8s  %-16s  %-16s  %-16s\n", "sigma", "SPSTA mu/sig", "SSTA mu/sig",
              "MC mu/sig");

  for (double sigma : {0.0, 0.05, 0.1, 0.2}) {
    const netlist::DelayModel delays =
        sigma == 0.0 ? netlist::DelayModel::unit(design)
                     : netlist::DelayModel::gaussian(design, 1.0, sigma);

    const ssta::SstaResult sr = ssta::run_ssta(design, delays, sc);
    netlist::NodeId ep = design.timing_endpoints().front();
    for (netlist::NodeId cand : design.timing_endpoints()) {
      if (sr.arrival[cand].rise.mean > sr.arrival[ep].rise.mean) ep = cand;
    }

    const core::SpstaResult spsta = core::run_spsta_moment(design, delays, sc);
    mc::MonteCarloConfig cfg;
    cfg.runs = 5000;
    const mc::MonteCarloResult mcr = mc::run_monte_carlo(design, delays, sc, cfg);

    std::printf("%-8.2f  %6.2f / %-6.2f  %6.2f / %-6.2f  %6.2f / %-6.2f\n", sigma,
                spsta.node[ep].rise.arrival.mean, spsta.node[ep].rise.arrival.stddev(),
                sr.arrival[ep].rise.mean, sr.arrival[ep].rise.stddev(),
                mcr.node[ep].rise_time.mean(), mcr.node[ep].rise_time.stddev());
  }

  // Interval STA corners (the STA bounds of the paper's Fig. 1).
  const netlist::DelayModel varied = netlist::DelayModel::gaussian(design, 1.0, 0.1);
  const auto bounds = variational::interval_sta(design, varied, {-3.0, 3.0}, 3.0);
  netlist::NodeId deepest = design.timing_endpoints().front();
  for (netlist::NodeId cand : design.timing_endpoints()) {
    if (bounds[cand].hi > bounds[deepest].hi) deepest = cand;
  }
  std::printf("\ninterval STA 3-sigma corners at %s: [%.2f, %.2f]\n",
              design.node(deepest).name.c_str(), bounds[deepest].lo, bounds[deepest].hi);

  // Path-based SSTA with shared-segment correlation.
  const ssta::PathSstaResult paths =
      ssta::run_path_ssta(design, varied, {0.0, 1.0}, 5);
  std::printf("\ntop critical paths (path-based SSTA):\n");
  for (const auto& p : paths.paths) {
    std::printf("  delay %.2f +- %.2f  criticality %.2f  (%zu nodes)\n", p.delay.mean,
                p.delay.stddev(), p.criticality, p.path.nodes.size());
  }
  std::printf("  max over paths: %.2f +- %.2f\n", paths.max_delay.mean,
              paths.max_delay.stddev());

  // Correlated global parameters -> PCA -> canonical forms.
  stats::SymmetricMatrix cov(2);
  cov.set(0, 0, 1.0);
  cov.set(1, 1, 1.0);
  cov.set(0, 1, 0.8);  // strongly correlated process knobs
  const stats::Pca pca = stats::pca_from_covariance(cov);
  std::printf("\nPCA of a correlated 2-parameter covariance: eigenvalues %.2f, %.2f\n",
              pca.eigen.values[0], pca.eigen.values[1]);

  const variational::CanonicalForm stage1(
      1.0, {0.1 * pca.loading(0, 0), 0.1 * pca.loading(0, 1)}, 0.02);
  const variational::CanonicalForm stage2(
      1.2, {0.1 * pca.loading(1, 0), 0.1 * pca.loading(1, 1)}, 0.02);
  const variational::CanonicalForm path_delay = variational::sum(stage1, stage2);
  std::printf("two correlated stages in canonical form: total %.2f +- %.3f "
              "(corr between stages %.2f)\n",
              path_delay.mean(), std::sqrt(path_delay.variance()),
              variational::correlation(stage1, stage2));
  return 0;
}
