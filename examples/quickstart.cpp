// Quickstart: build a small circuit through the Netlist API, hand it to
// the unified `Analyzer`, and run signal-probability-based statistical
// timing analysis.
//
//   $ ./example_quickstart
//
// Walks through the three analyses of the paper on a 5-gate circuit and
// prints per-net four-value probabilities and arrival statistics. One
// Analyzer owns the design and its compiled analysis plan; each engine is
// selected by an AnalysisRequest.

#include <cstdio>

#include "spsta_api.hpp"

int main() {
  using namespace spsta;

  // 1. Describe the circuit: y = (a & b) | !(c & d).
  netlist::Netlist design("quickstart");
  const auto a = design.add_input("a");
  const auto b = design.add_input("b");
  const auto c = design.add_input("c");
  const auto d = design.add_input("d");
  const auto g1 = design.add_gate(netlist::GateType::And, "g1", {a, b});
  const auto g2 = design.add_gate(netlist::GateType::Nand, "g2", {c, d});
  const auto y = design.add_gate(netlist::GateType::Or, "y", {g1, g2});
  design.mark_output(y);

  // 2. One Analyzer = design + delay model + input statistics + compiled
  //    plan. This constructor applies the paper's experiment model: unit
  //    gate delays, and scenario I on every source — each input is 0/1/r/f
  //    with probability 1/4 and transitions arrive as N(0, 1).
  Analyzer analyzer(std::move(design));
  const netlist::Netlist& net = analyzer.design();

  // 3. SPSTA: four-value probabilities plus transition t.o.p. per net.
  AnalysisRequest request;
  request.engine = Engine::SpstaMoment;
  const core::SpstaResult spsta =
      std::get<core::SpstaResult>(analyzer.run(request).result);

  // 4. The SSTA baseline and a 10K-run Monte Carlo reference — same
  //    analyzer, different engine per request; the compiled plan is reused.
  request.engine = Engine::Ssta;
  const ssta::SstaResult ssta_result =
      std::get<ssta::SstaResult>(analyzer.run(request).result);
  request.engine = Engine::Mc;
  request.runs = 10000;
  const mc::MonteCarloResult mc_result =
      std::get<mc::MonteCarloResult>(analyzer.run(request).result);

  std::printf("net   P0    P1    Pr    Pf    | SPSTA rise mu/sigma | SSTA rise mu/sigma | MC rise mu/sigma\n");
  for (netlist::NodeId id = 0; id < net.node_count(); ++id) {
    const core::NodeTop& nt = spsta.node[id];
    const auto& sa = ssta_result.arrival[id];
    const auto& est = mc_result.node[id];
    std::printf("%-4s  %.3f %.3f %.3f %.3f |   %6.3f / %-6.3f   |  %6.3f / %-6.3f   | %6.3f / %-6.3f\n",
                net.node(id).name.c_str(), nt.probs.p0, nt.probs.p1, nt.probs.pr,
                nt.probs.pf, nt.rise.arrival.mean, nt.rise.arrival.stddev(),
                sa.rise.mean, sa.rise.stddev(), est.rise_time.mean(),
                est.rise_time.stddev());
  }

  std::printf("\noutput y: transition probability (rise) SPSTA=%.3f MC=%.3f\n",
              spsta.node[y].rise.mass, mc_result.node[y].rise_probability());
  std::printf("SSTA assumes a transition always happens - it has no such number.\n");
  return 0;
}
