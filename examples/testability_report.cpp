// Random-pattern testability report: the dynamic-test perspective the
// paper opens with ("manufactured chips are tested dynamically, i.e., by
// given test vectors for a required fault coverage"). COP analysis over
// the suite circuit, with expected coverage vs vector count and the
// random-pattern-resistant fault list.
//
//   $ ./example_testability_report [circuit]     (default: s386)

#include <algorithm>
#include <cstdio>
#include <string>

#include "netlist/iscas89.hpp"
#include "report/table.hpp"
#include "sigprob/testability.hpp"

int main(int argc, char** argv) {
  using namespace spsta;

  const std::string which = argc > 1 ? argv[1] : "s386";
  const netlist::Netlist design = netlist::make_paper_circuit(which);

  // Uniform random vectors: P(=1) = 0.5 per input and FF output.
  const sigprob::TestabilityResult t =
      sigprob::analyze_testability(design, std::vector<double>{0.5});

  std::printf("circuit %s: %zu nets, %zu stuck-at faults\n\n", design.name().c_str(),
              design.node_count(), 2 * design.node_count());

  report::Table coverage({"vectors", "expected coverage"});
  for (std::size_t v : {10u, 32u, 100u, 320u, 1000u, 10000u}) {
    coverage.add_row({std::to_string(v),
                      report::Table::num(100.0 * t.expected_coverage(v), 2) + " %"});
  }
  std::printf("%s\n", coverage.to_string().c_str());

  // The ten hardest faults.
  std::vector<netlist::NodeId> nodes(design.node_count());
  for (netlist::NodeId id = 0; id < design.node_count(); ++id) nodes[id] = id;
  std::sort(nodes.begin(), nodes.end(), [&](netlist::NodeId a, netlist::NodeId b) {
    return std::min(t.detect_sa0[a], t.detect_sa1[a]) <
           std::min(t.detect_sa0[b], t.detect_sa1[b]);
  });
  report::Table hard({"net", "C1", "observability", "P(detect sa0)", "P(detect sa1)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, nodes.size()); ++i) {
    const netlist::NodeId id = nodes[i];
    hard.add_row({design.node(id).name, report::Table::num(t.controllability_one[id], 3),
                  report::Table::num(t.observability[id], 3),
                  report::Table::num(t.detect_sa0[id], 4),
                  report::Table::num(t.detect_sa1[id], 4)});
  }
  std::printf("ten hardest random-pattern faults:\n%s\n", hard.to_string().c_str());
  std::printf("low-observability deep logic and low-probability side conditions are\n"
              "exactly where dynamic test (and hence actual chip timing behaviour)\n"
              "diverges from input-oblivious static analysis.\n");
  return 0;
}
