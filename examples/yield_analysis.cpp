// Timing-yield analysis: P(circuit meets a clock period) as a function of
// the period — the quantity the paper argues SSTA's min/max distributions
// cannot deliver (Sec. 3.7, point 3) but transition-occurrence-weighted
// analysis can. Compares SPSTA's numeric t.o.p. CDF against Monte Carlo
// and the SSTA Gaussian at the critical endpoint.
//
//   $ ./example_yield_analysis [circuit]     (default: s386)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/iscas89.hpp"
#include "ssta/ssta.hpp"

int main(int argc, char** argv) {
  using namespace spsta;

  const std::string which = argc > 1 ? argv[1] : "s386";
  const netlist::Netlist design = netlist::make_paper_circuit(which);
  const netlist::DelayModel delays = netlist::DelayModel::unit(design);
  const std::vector<netlist::SourceStats> sc{netlist::scenario_I()};

  // Critical endpoint by SSTA mean rise arrival.
  const ssta::SstaResult ssta_result = ssta::run_ssta(design, delays, sc);
  netlist::NodeId ep = netlist::kInvalidNode;
  double best = -1e300;
  for (netlist::NodeId cand : design.timing_endpoints()) {
    if (ssta_result.arrival[cand].rise.mean > best) {
      best = ssta_result.arrival[cand].rise.mean;
      ep = cand;
    }
  }

  core::SpstaOptions opt;
  opt.grid_dt = 0.02;
  const core::SpstaNumericResult spsta =
      core::run_spsta_numeric(design, delays, sc, opt);

  mc::MonteCarloConfig cfg;
  cfg.runs = 20000;
  const mc::MonteCarloResult mcr = mc::run_monte_carlo(design, delays, sc, cfg);
  std::vector<double> mc_samples;
  // Rebuild the empirical distribution from the histogram facility.
  mc::MonteCarloConfig cfg_hist = cfg;
  cfg_hist.histogram_node = ep;
  cfg_hist.histogram_lo = -6.0;
  cfg_hist.histogram_hi = best + 10.0;
  cfg_hist.histogram_bins = 200;
  const mc::MonteCarloResult mc_hist = mc::run_monte_carlo(design, delays, sc, cfg_hist);

  const double p_transition_spsta = spsta.node[ep].rise.mass();
  const double p_transition_mc = mcr.node[ep].rise_probability();

  std::printf("circuit %s, endpoint %s\n", design.name().c_str(),
              design.node(ep).name.c_str());
  std::printf("P(rising transition per cycle): SPSTA %.3f, MC %.3f\n\n",
              p_transition_spsta, p_transition_mc);
  std::printf("timing yield = P(no late rising transition at period T)\n");
  std::printf("%-8s  %-10s  %-10s  %-10s\n", "T", "SPSTA", "MC", "SSTA-naive");

  const auto& top = spsta.node[ep].rise;  // mass = transition probability
  const auto& mc_density = mc_hist.histogram->to_density();
  const double mc_mass =
      p_transition_mc;  // fraction of cycles with a rising transition

  for (double period = best - 4.0; period <= best + 4.0; period += 1.0) {
    // Yield: either no transition happens, or it happens before T.
    const double yield_spsta = (1.0 - top.mass()) + top.cdf_at(period);
    const double yield_mc =
        (1.0 - mc_mass) + mc_mass * mc_density.normalized().cdf_at(period);
    // The SSTA "yield" (assumes a transition always occurs).
    const double yield_ssta = ssta_result.arrival[ep].rise.cdf(period);
    std::printf("%-8.2f  %-10.4f  %-10.4f  %-10.4f\n", period, yield_spsta, yield_mc,
                yield_ssta);
  }

  std::printf("\nSSTA-naive treats every cycle as transitioning, so it understates\n"
              "yield whenever the transition probability is below one.\n");
  return 0;
}
