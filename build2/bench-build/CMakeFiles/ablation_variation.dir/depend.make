# Empty dependencies file for ablation_variation.
# This may be replaced when dependencies are built.
