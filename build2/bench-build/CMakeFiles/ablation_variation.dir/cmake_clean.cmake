file(REMOVE_RECURSE
  "../bench/ablation_variation"
  "../bench/ablation_variation.pdb"
  "CMakeFiles/ablation_variation.dir/ablation_variation.cpp.o"
  "CMakeFiles/ablation_variation.dir/ablation_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
