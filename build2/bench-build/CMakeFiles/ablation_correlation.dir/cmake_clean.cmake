file(REMOVE_RECURSE
  "../bench/ablation_correlation"
  "../bench/ablation_correlation.pdb"
  "CMakeFiles/ablation_correlation.dir/ablation_correlation.cpp.o"
  "CMakeFiles/ablation_correlation.dir/ablation_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
