# Empty compiler generated dependencies file for ablation_correlation.
# This may be replaced when dependencies are built.
