# Empty compiler generated dependencies file for fig3_and_gate.
# This may be replaced when dependencies are built.
