file(REMOVE_RECURSE
  "../bench/fig3_and_gate"
  "../bench/fig3_and_gate.pdb"
  "CMakeFiles/fig3_and_gate.dir/fig3_and_gate.cpp.o"
  "CMakeFiles/fig3_and_gate.dir/fig3_and_gate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_and_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
