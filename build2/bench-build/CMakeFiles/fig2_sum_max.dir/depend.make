# Empty dependencies file for fig2_sum_max.
# This may be replaced when dependencies are built.
