file(REMOVE_RECURSE
  "../bench/fig2_sum_max"
  "../bench/fig2_sum_max.pdb"
  "CMakeFiles/fig2_sum_max.dir/fig2_sum_max.cpp.o"
  "CMakeFiles/fig2_sum_max.dir/fig2_sum_max.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sum_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
