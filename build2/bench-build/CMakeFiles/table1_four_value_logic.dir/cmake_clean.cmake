file(REMOVE_RECURSE
  "../bench/table1_four_value_logic"
  "../bench/table1_four_value_logic.pdb"
  "CMakeFiles/table1_four_value_logic.dir/table1_four_value_logic.cpp.o"
  "CMakeFiles/table1_four_value_logic.dir/table1_four_value_logic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_four_value_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
