# Empty compiler generated dependencies file for table1_four_value_logic.
# This may be replaced when dependencies are built.
