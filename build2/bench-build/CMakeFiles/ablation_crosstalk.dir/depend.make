# Empty dependencies file for ablation_crosstalk.
# This may be replaced when dependencies are built.
