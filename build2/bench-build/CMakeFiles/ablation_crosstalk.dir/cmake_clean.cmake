file(REMOVE_RECURSE
  "../bench/ablation_crosstalk"
  "../bench/ablation_crosstalk.pdb"
  "CMakeFiles/ablation_crosstalk.dir/ablation_crosstalk.cpp.o"
  "CMakeFiles/ablation_crosstalk.dir/ablation_crosstalk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crosstalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
