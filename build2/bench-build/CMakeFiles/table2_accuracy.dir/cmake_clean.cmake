file(REMOVE_RECURSE
  "../bench/table2_accuracy"
  "../bench/table2_accuracy.pdb"
  "CMakeFiles/table2_accuracy.dir/table2_accuracy.cpp.o"
  "CMakeFiles/table2_accuracy.dir/table2_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
