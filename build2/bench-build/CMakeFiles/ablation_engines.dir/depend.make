# Empty dependencies file for ablation_engines.
# This may be replaced when dependencies are built.
