file(REMOVE_RECURSE
  "../bench/ablation_engines"
  "../bench/ablation_engines.pdb"
  "CMakeFiles/ablation_engines.dir/ablation_engines.cpp.o"
  "CMakeFiles/ablation_engines.dir/ablation_engines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
