# Empty dependencies file for ablation_sigprob.
# This may be replaced when dependencies are built.
