file(REMOVE_RECURSE
  "../bench/ablation_sigprob"
  "../bench/ablation_sigprob.pdb"
  "CMakeFiles/ablation_sigprob.dir/ablation_sigprob.cpp.o"
  "CMakeFiles/ablation_sigprob.dir/ablation_sigprob.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sigprob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
