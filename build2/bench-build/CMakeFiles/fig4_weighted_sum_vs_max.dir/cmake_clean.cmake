file(REMOVE_RECURSE
  "../bench/fig4_weighted_sum_vs_max"
  "../bench/fig4_weighted_sum_vs_max.pdb"
  "CMakeFiles/fig4_weighted_sum_vs_max.dir/fig4_weighted_sum_vs_max.cpp.o"
  "CMakeFiles/fig4_weighted_sum_vs_max.dir/fig4_weighted_sum_vs_max.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_weighted_sum_vs_max.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
