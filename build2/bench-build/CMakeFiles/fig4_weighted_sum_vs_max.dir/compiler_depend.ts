# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_weighted_sum_vs_max.
