# Empty dependencies file for fig4_weighted_sum_vs_max.
# This may be replaced when dependencies are built.
