file(REMOVE_RECURSE
  "../bench/table3_runtime"
  "../bench/table3_runtime.pdb"
  "CMakeFiles/table3_runtime.dir/table3_runtime.cpp.o"
  "CMakeFiles/table3_runtime.dir/table3_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
