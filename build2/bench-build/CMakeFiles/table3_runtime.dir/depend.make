# Empty dependencies file for table3_runtime.
# This may be replaced when dependencies are built.
