file(REMOVE_RECURSE
  "../bench/ablation_incremental"
  "../bench/ablation_incremental.pdb"
  "CMakeFiles/ablation_incremental.dir/ablation_incremental.cpp.o"
  "CMakeFiles/ablation_incremental.dir/ablation_incremental.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
