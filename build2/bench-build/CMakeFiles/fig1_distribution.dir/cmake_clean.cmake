file(REMOVE_RECURSE
  "../bench/fig1_distribution"
  "../bench/fig1_distribution.pdb"
  "CMakeFiles/fig1_distribution.dir/fig1_distribution.cpp.o"
  "CMakeFiles/fig1_distribution.dir/fig1_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
