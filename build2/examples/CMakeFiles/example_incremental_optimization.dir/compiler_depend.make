# Empty compiler generated dependencies file for example_incremental_optimization.
# This may be replaced when dependencies are built.
