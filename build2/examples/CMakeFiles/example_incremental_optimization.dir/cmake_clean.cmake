file(REMOVE_RECURSE
  "CMakeFiles/example_incremental_optimization.dir/incremental_optimization.cpp.o"
  "CMakeFiles/example_incremental_optimization.dir/incremental_optimization.cpp.o.d"
  "example_incremental_optimization"
  "example_incremental_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incremental_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
