file(REMOVE_RECURSE
  "CMakeFiles/example_timing_report.dir/timing_report.cpp.o"
  "CMakeFiles/example_timing_report.dir/timing_report.cpp.o.d"
  "example_timing_report"
  "example_timing_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_timing_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
