# Empty dependencies file for example_timing_report.
# This may be replaced when dependencies are built.
