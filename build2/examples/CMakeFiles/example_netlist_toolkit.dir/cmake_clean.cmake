file(REMOVE_RECURSE
  "CMakeFiles/example_netlist_toolkit.dir/netlist_toolkit.cpp.o"
  "CMakeFiles/example_netlist_toolkit.dir/netlist_toolkit.cpp.o.d"
  "example_netlist_toolkit"
  "example_netlist_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netlist_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
