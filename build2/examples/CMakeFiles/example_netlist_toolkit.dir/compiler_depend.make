# Empty compiler generated dependencies file for example_netlist_toolkit.
# This may be replaced when dependencies are built.
