# Empty dependencies file for example_yield_analysis.
# This may be replaced when dependencies are built.
