file(REMOVE_RECURSE
  "CMakeFiles/example_yield_analysis.dir/yield_analysis.cpp.o"
  "CMakeFiles/example_yield_analysis.dir/yield_analysis.cpp.o.d"
  "example_yield_analysis"
  "example_yield_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_yield_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
