# Empty dependencies file for example_power_estimate.
# This may be replaced when dependencies are built.
