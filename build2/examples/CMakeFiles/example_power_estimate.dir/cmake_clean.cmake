file(REMOVE_RECURSE
  "CMakeFiles/example_power_estimate.dir/power_estimate.cpp.o"
  "CMakeFiles/example_power_estimate.dir/power_estimate.cpp.o.d"
  "example_power_estimate"
  "example_power_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_power_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
