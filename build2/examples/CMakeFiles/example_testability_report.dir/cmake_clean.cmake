file(REMOVE_RECURSE
  "CMakeFiles/example_testability_report.dir/testability_report.cpp.o"
  "CMakeFiles/example_testability_report.dir/testability_report.cpp.o.d"
  "example_testability_report"
  "example_testability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_testability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
