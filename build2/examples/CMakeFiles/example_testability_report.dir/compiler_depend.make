# Empty compiler generated dependencies file for example_testability_report.
# This may be replaced when dependencies are built.
