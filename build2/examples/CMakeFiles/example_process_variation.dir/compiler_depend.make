# Empty compiler generated dependencies file for example_process_variation.
# This may be replaced when dependencies are built.
