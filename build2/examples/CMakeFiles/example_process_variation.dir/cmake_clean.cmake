file(REMOVE_RECURSE
  "CMakeFiles/example_process_variation.dir/process_variation.cpp.o"
  "CMakeFiles/example_process_variation.dir/process_variation.cpp.o.d"
  "example_process_variation"
  "example_process_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_process_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
