file(REMOVE_RECURSE
  "CMakeFiles/stats_normal_test.dir/stats_normal_test.cpp.o"
  "CMakeFiles/stats_normal_test.dir/stats_normal_test.cpp.o.d"
  "stats_normal_test"
  "stats_normal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_normal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
