# Empty dependencies file for stats_normal_test.
# This may be replaced when dependencies are built.
