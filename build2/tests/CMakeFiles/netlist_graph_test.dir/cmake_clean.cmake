file(REMOVE_RECURSE
  "CMakeFiles/netlist_graph_test.dir/netlist_graph_test.cpp.o"
  "CMakeFiles/netlist_graph_test.dir/netlist_graph_test.cpp.o.d"
  "netlist_graph_test"
  "netlist_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
