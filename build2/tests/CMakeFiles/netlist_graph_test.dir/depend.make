# Empty dependencies file for netlist_graph_test.
# This may be replaced when dependencies are built.
