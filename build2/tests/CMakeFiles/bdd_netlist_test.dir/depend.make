# Empty dependencies file for bdd_netlist_test.
# This may be replaced when dependencies are built.
