file(REMOVE_RECURSE
  "CMakeFiles/bdd_netlist_test.dir/bdd_netlist_test.cpp.o"
  "CMakeFiles/bdd_netlist_test.dir/bdd_netlist_test.cpp.o.d"
  "bdd_netlist_test"
  "bdd_netlist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
