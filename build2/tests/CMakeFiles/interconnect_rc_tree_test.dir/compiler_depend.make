# Empty compiler generated dependencies file for interconnect_rc_tree_test.
# This may be replaced when dependencies are built.
