file(REMOVE_RECURSE
  "CMakeFiles/interconnect_rc_tree_test.dir/interconnect_rc_tree_test.cpp.o"
  "CMakeFiles/interconnect_rc_tree_test.dir/interconnect_rc_tree_test.cpp.o.d"
  "interconnect_rc_tree_test"
  "interconnect_rc_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_rc_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
