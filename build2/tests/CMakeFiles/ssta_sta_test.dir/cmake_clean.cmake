file(REMOVE_RECURSE
  "CMakeFiles/ssta_sta_test.dir/ssta_sta_test.cpp.o"
  "CMakeFiles/ssta_sta_test.dir/ssta_sta_test.cpp.o.d"
  "ssta_sta_test"
  "ssta_sta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_sta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
