# Empty compiler generated dependencies file for ssta_sta_test.
# This may be replaced when dependencies are built.
