file(REMOVE_RECURSE
  "CMakeFiles/netlist_verilog_io_test.dir/netlist_verilog_io_test.cpp.o"
  "CMakeFiles/netlist_verilog_io_test.dir/netlist_verilog_io_test.cpp.o.d"
  "netlist_verilog_io_test"
  "netlist_verilog_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_verilog_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
