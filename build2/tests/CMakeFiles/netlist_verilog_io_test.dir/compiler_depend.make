# Empty compiler generated dependencies file for netlist_verilog_io_test.
# This may be replaced when dependencies are built.
