file(REMOVE_RECURSE
  "CMakeFiles/netlist_levelize_test.dir/netlist_levelize_test.cpp.o"
  "CMakeFiles/netlist_levelize_test.dir/netlist_levelize_test.cpp.o.d"
  "netlist_levelize_test"
  "netlist_levelize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_levelize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
