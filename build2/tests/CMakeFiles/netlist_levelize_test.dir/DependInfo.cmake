
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netlist_levelize_test.cpp" "tests/CMakeFiles/netlist_levelize_test.dir/netlist_levelize_test.cpp.o" "gcc" "tests/CMakeFiles/netlist_levelize_test.dir/netlist_levelize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_report.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_service.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_mc.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_ssta.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_power.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_sigprob.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_bdd.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_variational.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_interconnect.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
