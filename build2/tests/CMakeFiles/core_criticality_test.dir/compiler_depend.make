# Empty compiler generated dependencies file for core_criticality_test.
# This may be replaced when dependencies are built.
