file(REMOVE_RECURSE
  "CMakeFiles/core_criticality_test.dir/core_criticality_test.cpp.o"
  "CMakeFiles/core_criticality_test.dir/core_criticality_test.cpp.o.d"
  "core_criticality_test"
  "core_criticality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_criticality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
