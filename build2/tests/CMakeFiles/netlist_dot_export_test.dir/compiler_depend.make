# Empty compiler generated dependencies file for netlist_dot_export_test.
# This may be replaced when dependencies are built.
