file(REMOVE_RECURSE
  "CMakeFiles/netlist_dot_export_test.dir/netlist_dot_export_test.cpp.o"
  "CMakeFiles/netlist_dot_export_test.dir/netlist_dot_export_test.cpp.o.d"
  "netlist_dot_export_test"
  "netlist_dot_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_dot_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
