# Empty dependencies file for netlist_generator_test.
# This may be replaced when dependencies are built.
