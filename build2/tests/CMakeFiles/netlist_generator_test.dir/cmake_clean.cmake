file(REMOVE_RECURSE
  "CMakeFiles/netlist_generator_test.dir/netlist_generator_test.cpp.o"
  "CMakeFiles/netlist_generator_test.dir/netlist_generator_test.cpp.o.d"
  "netlist_generator_test"
  "netlist_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
