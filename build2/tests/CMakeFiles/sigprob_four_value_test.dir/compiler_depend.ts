# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sigprob_four_value_test.
