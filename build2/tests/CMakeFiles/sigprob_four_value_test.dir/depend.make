# Empty dependencies file for sigprob_four_value_test.
# This may be replaced when dependencies are built.
