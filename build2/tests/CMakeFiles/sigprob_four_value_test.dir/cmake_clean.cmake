file(REMOVE_RECURSE
  "CMakeFiles/sigprob_four_value_test.dir/sigprob_four_value_test.cpp.o"
  "CMakeFiles/sigprob_four_value_test.dir/sigprob_four_value_test.cpp.o.d"
  "sigprob_four_value_test"
  "sigprob_four_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigprob_four_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
