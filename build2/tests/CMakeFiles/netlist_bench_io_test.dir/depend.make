# Empty dependencies file for netlist_bench_io_test.
# This may be replaced when dependencies are built.
