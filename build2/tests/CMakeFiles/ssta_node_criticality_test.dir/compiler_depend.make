# Empty compiler generated dependencies file for ssta_node_criticality_test.
# This may be replaced when dependencies are built.
