file(REMOVE_RECURSE
  "CMakeFiles/ssta_node_criticality_test.dir/ssta_node_criticality_test.cpp.o"
  "CMakeFiles/ssta_node_criticality_test.dir/ssta_node_criticality_test.cpp.o.d"
  "ssta_node_criticality_test"
  "ssta_node_criticality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_node_criticality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
