# Empty dependencies file for variational_canonical_test.
# This may be replaced when dependencies are built.
