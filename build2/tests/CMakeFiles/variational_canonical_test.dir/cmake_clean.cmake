file(REMOVE_RECURSE
  "CMakeFiles/variational_canonical_test.dir/variational_canonical_test.cpp.o"
  "CMakeFiles/variational_canonical_test.dir/variational_canonical_test.cpp.o.d"
  "variational_canonical_test"
  "variational_canonical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variational_canonical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
