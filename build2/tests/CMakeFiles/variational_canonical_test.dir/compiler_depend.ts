# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for variational_canonical_test.
