file(REMOVE_RECURSE
  "CMakeFiles/mc_monte_carlo_test.dir/mc_monte_carlo_test.cpp.o"
  "CMakeFiles/mc_monte_carlo_test.dir/mc_monte_carlo_test.cpp.o.d"
  "mc_monte_carlo_test"
  "mc_monte_carlo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_monte_carlo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
