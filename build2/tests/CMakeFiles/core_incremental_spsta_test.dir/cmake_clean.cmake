file(REMOVE_RECURSE
  "CMakeFiles/core_incremental_spsta_test.dir/core_incremental_spsta_test.cpp.o"
  "CMakeFiles/core_incremental_spsta_test.dir/core_incremental_spsta_test.cpp.o.d"
  "core_incremental_spsta_test"
  "core_incremental_spsta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_incremental_spsta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
