# Empty dependencies file for core_incremental_spsta_test.
# This may be replaced when dependencies are built.
