# Empty compiler generated dependencies file for directional_delay_test.
# This may be replaced when dependencies are built.
