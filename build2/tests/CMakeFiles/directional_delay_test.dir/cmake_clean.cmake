file(REMOVE_RECURSE
  "CMakeFiles/directional_delay_test.dir/directional_delay_test.cpp.o"
  "CMakeFiles/directional_delay_test.dir/directional_delay_test.cpp.o.d"
  "directional_delay_test"
  "directional_delay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directional_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
