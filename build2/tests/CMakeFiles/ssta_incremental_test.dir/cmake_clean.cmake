file(REMOVE_RECURSE
  "CMakeFiles/ssta_incremental_test.dir/ssta_incremental_test.cpp.o"
  "CMakeFiles/ssta_incremental_test.dir/ssta_incremental_test.cpp.o.d"
  "ssta_incremental_test"
  "ssta_incremental_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
