# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ssta_incremental_test.
