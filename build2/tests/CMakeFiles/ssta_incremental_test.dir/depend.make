# Empty dependencies file for ssta_incremental_test.
# This may be replaced when dependencies are built.
