file(REMOVE_RECURSE
  "CMakeFiles/core_patterns_test.dir/core_patterns_test.cpp.o"
  "CMakeFiles/core_patterns_test.dir/core_patterns_test.cpp.o.d"
  "core_patterns_test"
  "core_patterns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
