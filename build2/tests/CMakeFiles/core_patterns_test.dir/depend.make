# Empty dependencies file for core_patterns_test.
# This may be replaced when dependencies are built.
