file(REMOVE_RECURSE
  "CMakeFiles/power_glitch_test.dir/power_glitch_test.cpp.o"
  "CMakeFiles/power_glitch_test.dir/power_glitch_test.cpp.o.d"
  "power_glitch_test"
  "power_glitch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_glitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
