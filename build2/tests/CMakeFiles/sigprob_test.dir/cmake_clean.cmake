file(REMOVE_RECURSE
  "CMakeFiles/sigprob_test.dir/sigprob_test.cpp.o"
  "CMakeFiles/sigprob_test.dir/sigprob_test.cpp.o.d"
  "sigprob_test"
  "sigprob_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigprob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
