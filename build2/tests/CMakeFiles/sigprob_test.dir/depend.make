# Empty dependencies file for sigprob_test.
# This may be replaced when dependencies are built.
