# Empty dependencies file for sigprob_testability_test.
# This may be replaced when dependencies are built.
