file(REMOVE_RECURSE
  "CMakeFiles/sigprob_testability_test.dir/sigprob_testability_test.cpp.o"
  "CMakeFiles/sigprob_testability_test.dir/sigprob_testability_test.cpp.o.d"
  "sigprob_testability_test"
  "sigprob_testability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigprob_testability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
