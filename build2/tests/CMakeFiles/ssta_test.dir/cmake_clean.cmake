file(REMOVE_RECURSE
  "CMakeFiles/ssta_test.dir/ssta_test.cpp.o"
  "CMakeFiles/ssta_test.dir/ssta_test.cpp.o.d"
  "ssta_test"
  "ssta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
