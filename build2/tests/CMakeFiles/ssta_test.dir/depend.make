# Empty dependencies file for ssta_test.
# This may be replaced when dependencies are built.
