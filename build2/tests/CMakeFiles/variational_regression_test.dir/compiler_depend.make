# Empty compiler generated dependencies file for variational_regression_test.
# This may be replaced when dependencies are built.
