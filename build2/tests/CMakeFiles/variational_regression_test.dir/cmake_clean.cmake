file(REMOVE_RECURSE
  "CMakeFiles/variational_regression_test.dir/variational_regression_test.cpp.o"
  "CMakeFiles/variational_regression_test.dir/variational_regression_test.cpp.o.d"
  "variational_regression_test"
  "variational_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variational_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
