# Empty dependencies file for netlist_core_test.
# This may be replaced when dependencies are built.
