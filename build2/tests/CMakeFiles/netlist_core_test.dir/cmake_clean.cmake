file(REMOVE_RECURSE
  "CMakeFiles/netlist_core_test.dir/netlist_core_test.cpp.o"
  "CMakeFiles/netlist_core_test.dir/netlist_core_test.cpp.o.d"
  "netlist_core_test"
  "netlist_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
