file(REMOVE_RECURSE
  "CMakeFiles/variational_interval_test.dir/variational_interval_test.cpp.o"
  "CMakeFiles/variational_interval_test.dir/variational_interval_test.cpp.o.d"
  "variational_interval_test"
  "variational_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variational_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
