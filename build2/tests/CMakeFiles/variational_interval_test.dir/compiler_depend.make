# Empty compiler generated dependencies file for variational_interval_test.
# This may be replaced when dependencies are built.
