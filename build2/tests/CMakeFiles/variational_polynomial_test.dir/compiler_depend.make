# Empty compiler generated dependencies file for variational_polynomial_test.
# This may be replaced when dependencies are built.
