file(REMOVE_RECURSE
  "CMakeFiles/variational_polynomial_test.dir/variational_polynomial_test.cpp.o"
  "CMakeFiles/variational_polynomial_test.dir/variational_polynomial_test.cpp.o.d"
  "variational_polynomial_test"
  "variational_polynomial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variational_polynomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
