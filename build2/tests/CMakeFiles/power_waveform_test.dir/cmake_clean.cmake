file(REMOVE_RECURSE
  "CMakeFiles/power_waveform_test.dir/power_waveform_test.cpp.o"
  "CMakeFiles/power_waveform_test.dir/power_waveform_test.cpp.o.d"
  "power_waveform_test"
  "power_waveform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_waveform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
