# Empty dependencies file for power_waveform_test.
# This may be replaced when dependencies are built.
