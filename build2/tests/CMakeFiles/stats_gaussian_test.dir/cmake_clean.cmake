file(REMOVE_RECURSE
  "CMakeFiles/stats_gaussian_test.dir/stats_gaussian_test.cpp.o"
  "CMakeFiles/stats_gaussian_test.dir/stats_gaussian_test.cpp.o.d"
  "stats_gaussian_test"
  "stats_gaussian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_gaussian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
