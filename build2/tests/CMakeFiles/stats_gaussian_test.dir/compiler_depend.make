# Empty compiler generated dependencies file for stats_gaussian_test.
# This may be replaced when dependencies are built.
