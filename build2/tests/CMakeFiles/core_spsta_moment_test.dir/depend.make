# Empty dependencies file for core_spsta_moment_test.
# This may be replaced when dependencies are built.
