# Empty dependencies file for core_sequential_test.
# This may be replaced when dependencies are built.
