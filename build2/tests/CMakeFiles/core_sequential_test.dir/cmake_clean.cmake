file(REMOVE_RECURSE
  "CMakeFiles/core_sequential_test.dir/core_sequential_test.cpp.o"
  "CMakeFiles/core_sequential_test.dir/core_sequential_test.cpp.o.d"
  "core_sequential_test"
  "core_sequential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
