file(REMOVE_RECURSE
  "CMakeFiles/ssta_canonical_ssta_test.dir/ssta_canonical_ssta_test.cpp.o"
  "CMakeFiles/ssta_canonical_ssta_test.dir/ssta_canonical_ssta_test.cpp.o.d"
  "ssta_canonical_ssta_test"
  "ssta_canonical_ssta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_canonical_ssta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
