# Empty compiler generated dependencies file for ssta_canonical_ssta_test.
# This may be replaced when dependencies are built.
