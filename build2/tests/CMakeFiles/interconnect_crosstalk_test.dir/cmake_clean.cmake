file(REMOVE_RECURSE
  "CMakeFiles/interconnect_crosstalk_test.dir/interconnect_crosstalk_test.cpp.o"
  "CMakeFiles/interconnect_crosstalk_test.dir/interconnect_crosstalk_test.cpp.o.d"
  "interconnect_crosstalk_test"
  "interconnect_crosstalk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_crosstalk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
