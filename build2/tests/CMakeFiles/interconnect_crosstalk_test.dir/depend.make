# Empty dependencies file for interconnect_crosstalk_test.
# This may be replaced when dependencies are built.
