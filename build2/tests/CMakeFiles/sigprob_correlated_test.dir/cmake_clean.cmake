file(REMOVE_RECURSE
  "CMakeFiles/sigprob_correlated_test.dir/sigprob_correlated_test.cpp.o"
  "CMakeFiles/sigprob_correlated_test.dir/sigprob_correlated_test.cpp.o.d"
  "sigprob_correlated_test"
  "sigprob_correlated_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigprob_correlated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
