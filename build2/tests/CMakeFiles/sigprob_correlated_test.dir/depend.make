# Empty dependencies file for sigprob_correlated_test.
# This may be replaced when dependencies are built.
