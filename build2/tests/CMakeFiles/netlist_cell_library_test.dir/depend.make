# Empty dependencies file for netlist_cell_library_test.
# This may be replaced when dependencies are built.
