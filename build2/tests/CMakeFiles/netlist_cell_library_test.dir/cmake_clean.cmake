file(REMOVE_RECURSE
  "CMakeFiles/netlist_cell_library_test.dir/netlist_cell_library_test.cpp.o"
  "CMakeFiles/netlist_cell_library_test.dir/netlist_cell_library_test.cpp.o.d"
  "netlist_cell_library_test"
  "netlist_cell_library_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_cell_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
