# Empty dependencies file for core_spsta_canonical_test.
# This may be replaced when dependencies are built.
