# Empty compiler generated dependencies file for service_scheduler_test.
# This may be replaced when dependencies are built.
