file(REMOVE_RECURSE
  "CMakeFiles/service_scheduler_test.dir/service_scheduler_test.cpp.o"
  "CMakeFiles/service_scheduler_test.dir/service_scheduler_test.cpp.o.d"
  "service_scheduler_test"
  "service_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
