# Empty compiler generated dependencies file for report_csv_test.
# This may be replaced when dependencies are built.
