file(REMOVE_RECURSE
  "CMakeFiles/report_csv_test.dir/report_csv_test.cpp.o"
  "CMakeFiles/report_csv_test.dir/report_csv_test.cpp.o.d"
  "report_csv_test"
  "report_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
