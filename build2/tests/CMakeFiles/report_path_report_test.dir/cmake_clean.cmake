file(REMOVE_RECURSE
  "CMakeFiles/report_path_report_test.dir/report_path_report_test.cpp.o"
  "CMakeFiles/report_path_report_test.dir/report_path_report_test.cpp.o.d"
  "report_path_report_test"
  "report_path_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_path_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
