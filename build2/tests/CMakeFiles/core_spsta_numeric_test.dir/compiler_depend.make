# Empty compiler generated dependencies file for core_spsta_numeric_test.
# This may be replaced when dependencies are built.
