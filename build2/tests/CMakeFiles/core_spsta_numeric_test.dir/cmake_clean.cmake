file(REMOVE_RECURSE
  "CMakeFiles/core_spsta_numeric_test.dir/core_spsta_numeric_test.cpp.o"
  "CMakeFiles/core_spsta_numeric_test.dir/core_spsta_numeric_test.cpp.o.d"
  "core_spsta_numeric_test"
  "core_spsta_numeric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_spsta_numeric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
