file(REMOVE_RECURSE
  "CMakeFiles/netlist_transform_test.dir/netlist_transform_test.cpp.o"
  "CMakeFiles/netlist_transform_test.dir/netlist_transform_test.cpp.o.d"
  "netlist_transform_test"
  "netlist_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
