# Empty dependencies file for netlist_transform_test.
# This may be replaced when dependencies are built.
