# Empty compiler generated dependencies file for stats_mixture_test.
# This may be replaced when dependencies are built.
