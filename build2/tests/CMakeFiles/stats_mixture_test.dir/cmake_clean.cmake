file(REMOVE_RECURSE
  "CMakeFiles/stats_mixture_test.dir/stats_mixture_test.cpp.o"
  "CMakeFiles/stats_mixture_test.dir/stats_mixture_test.cpp.o.d"
  "stats_mixture_test"
  "stats_mixture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_mixture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
