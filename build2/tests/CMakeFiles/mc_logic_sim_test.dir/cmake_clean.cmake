file(REMOVE_RECURSE
  "CMakeFiles/mc_logic_sim_test.dir/mc_logic_sim_test.cpp.o"
  "CMakeFiles/mc_logic_sim_test.dir/mc_logic_sim_test.cpp.o.d"
  "mc_logic_sim_test"
  "mc_logic_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_logic_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
