# Empty dependencies file for mc_logic_sim_test.
# This may be replaced when dependencies are built.
