file(REMOVE_RECURSE
  "CMakeFiles/service_json_test.dir/service_json_test.cpp.o"
  "CMakeFiles/service_json_test.dir/service_json_test.cpp.o.d"
  "service_json_test"
  "service_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
