# Empty dependencies file for interconnect_variational_test.
# This may be replaced when dependencies are built.
