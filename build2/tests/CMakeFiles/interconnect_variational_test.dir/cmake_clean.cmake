file(REMOVE_RECURSE
  "CMakeFiles/interconnect_variational_test.dir/interconnect_variational_test.cpp.o"
  "CMakeFiles/interconnect_variational_test.dir/interconnect_variational_test.cpp.o.d"
  "interconnect_variational_test"
  "interconnect_variational_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_variational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
