# Empty compiler generated dependencies file for stats_welford_test.
# This may be replaced when dependencies are built.
