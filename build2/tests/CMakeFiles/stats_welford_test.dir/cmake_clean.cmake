file(REMOVE_RECURSE
  "CMakeFiles/stats_welford_test.dir/stats_welford_test.cpp.o"
  "CMakeFiles/stats_welford_test.dir/stats_welford_test.cpp.o.d"
  "stats_welford_test"
  "stats_welford_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_welford_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
