# Empty compiler generated dependencies file for stats_compare_test.
# This may be replaced when dependencies are built.
