file(REMOVE_RECURSE
  "CMakeFiles/stats_compare_test.dir/stats_compare_test.cpp.o"
  "CMakeFiles/stats_compare_test.dir/stats_compare_test.cpp.o.d"
  "stats_compare_test"
  "stats_compare_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
