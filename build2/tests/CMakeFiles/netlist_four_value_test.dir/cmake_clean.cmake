file(REMOVE_RECURSE
  "CMakeFiles/netlist_four_value_test.dir/netlist_four_value_test.cpp.o"
  "CMakeFiles/netlist_four_value_test.dir/netlist_four_value_test.cpp.o.d"
  "netlist_four_value_test"
  "netlist_four_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_four_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
