# Empty dependencies file for netlist_four_value_test.
# This may be replaced when dependencies are built.
