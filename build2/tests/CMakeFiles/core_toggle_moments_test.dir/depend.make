# Empty dependencies file for core_toggle_moments_test.
# This may be replaced when dependencies are built.
