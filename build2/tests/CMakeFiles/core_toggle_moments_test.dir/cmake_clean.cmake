file(REMOVE_RECURSE
  "CMakeFiles/core_toggle_moments_test.dir/core_toggle_moments_test.cpp.o"
  "CMakeFiles/core_toggle_moments_test.dir/core_toggle_moments_test.cpp.o.d"
  "core_toggle_moments_test"
  "core_toggle_moments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_toggle_moments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
