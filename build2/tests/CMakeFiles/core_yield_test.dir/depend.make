# Empty dependencies file for core_yield_test.
# This may be replaced when dependencies are built.
