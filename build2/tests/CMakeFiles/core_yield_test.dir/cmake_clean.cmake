file(REMOVE_RECURSE
  "CMakeFiles/core_yield_test.dir/core_yield_test.cpp.o"
  "CMakeFiles/core_yield_test.dir/core_yield_test.cpp.o.d"
  "core_yield_test"
  "core_yield_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_yield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
