file(REMOVE_RECURSE
  "CMakeFiles/ssta_slew_test.dir/ssta_slew_test.cpp.o"
  "CMakeFiles/ssta_slew_test.dir/ssta_slew_test.cpp.o.d"
  "ssta_slew_test"
  "ssta_slew_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_slew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
