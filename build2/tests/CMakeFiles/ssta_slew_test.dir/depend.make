# Empty dependencies file for ssta_slew_test.
# This may be replaced when dependencies are built.
