file(REMOVE_RECURSE
  "CMakeFiles/stats_piecewise_test.dir/stats_piecewise_test.cpp.o"
  "CMakeFiles/stats_piecewise_test.dir/stats_piecewise_test.cpp.o.d"
  "stats_piecewise_test"
  "stats_piecewise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_piecewise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
