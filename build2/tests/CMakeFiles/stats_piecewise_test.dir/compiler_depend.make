# Empty compiler generated dependencies file for stats_piecewise_test.
# This may be replaced when dependencies are built.
