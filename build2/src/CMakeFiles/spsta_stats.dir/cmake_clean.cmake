file(REMOVE_RECURSE
  "CMakeFiles/spsta_stats.dir/stats/compare.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/compare.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/gaussian.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/gaussian.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/mixture.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/mixture.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/normal.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/normal.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/pca.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/pca.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/piecewise.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/piecewise.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/rng.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/rng.cpp.o.d"
  "CMakeFiles/spsta_stats.dir/stats/welford.cpp.o"
  "CMakeFiles/spsta_stats.dir/stats/welford.cpp.o.d"
  "libspsta_stats.a"
  "libspsta_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
