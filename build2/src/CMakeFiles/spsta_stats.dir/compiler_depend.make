# Empty compiler generated dependencies file for spsta_stats.
# This may be replaced when dependencies are built.
