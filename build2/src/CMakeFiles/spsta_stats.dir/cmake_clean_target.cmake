file(REMOVE_RECURSE
  "libspsta_stats.a"
)
