
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/compare.cpp" "src/CMakeFiles/spsta_stats.dir/stats/compare.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/compare.cpp.o.d"
  "/root/repo/src/stats/gaussian.cpp" "src/CMakeFiles/spsta_stats.dir/stats/gaussian.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/gaussian.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/spsta_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/mixture.cpp" "src/CMakeFiles/spsta_stats.dir/stats/mixture.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/mixture.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/CMakeFiles/spsta_stats.dir/stats/normal.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/normal.cpp.o.d"
  "/root/repo/src/stats/pca.cpp" "src/CMakeFiles/spsta_stats.dir/stats/pca.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/pca.cpp.o.d"
  "/root/repo/src/stats/piecewise.cpp" "src/CMakeFiles/spsta_stats.dir/stats/piecewise.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/piecewise.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/CMakeFiles/spsta_stats.dir/stats/rng.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/rng.cpp.o.d"
  "/root/repo/src/stats/welford.cpp" "src/CMakeFiles/spsta_stats.dir/stats/welford.cpp.o" "gcc" "src/CMakeFiles/spsta_stats.dir/stats/welford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
