file(REMOVE_RECURSE
  "libspsta_core.a"
)
