file(REMOVE_RECURSE
  "CMakeFiles/spsta_core.dir/core/criticality.cpp.o"
  "CMakeFiles/spsta_core.dir/core/criticality.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/incremental_spsta.cpp.o"
  "CMakeFiles/spsta_core.dir/core/incremental_spsta.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/pattern_cache.cpp.o"
  "CMakeFiles/spsta_core.dir/core/pattern_cache.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/patterns.cpp.o"
  "CMakeFiles/spsta_core.dir/core/patterns.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/sequential.cpp.o"
  "CMakeFiles/spsta_core.dir/core/sequential.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/spsta_canonical.cpp.o"
  "CMakeFiles/spsta_core.dir/core/spsta_canonical.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/spsta_moment.cpp.o"
  "CMakeFiles/spsta_core.dir/core/spsta_moment.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/spsta_numeric.cpp.o"
  "CMakeFiles/spsta_core.dir/core/spsta_numeric.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/toggle_moments.cpp.o"
  "CMakeFiles/spsta_core.dir/core/toggle_moments.cpp.o.d"
  "CMakeFiles/spsta_core.dir/core/yield.cpp.o"
  "CMakeFiles/spsta_core.dir/core/yield.cpp.o.d"
  "libspsta_core.a"
  "libspsta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
