
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/criticality.cpp" "src/CMakeFiles/spsta_core.dir/core/criticality.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/criticality.cpp.o.d"
  "/root/repo/src/core/incremental_spsta.cpp" "src/CMakeFiles/spsta_core.dir/core/incremental_spsta.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/incremental_spsta.cpp.o.d"
  "/root/repo/src/core/pattern_cache.cpp" "src/CMakeFiles/spsta_core.dir/core/pattern_cache.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/pattern_cache.cpp.o.d"
  "/root/repo/src/core/patterns.cpp" "src/CMakeFiles/spsta_core.dir/core/patterns.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/patterns.cpp.o.d"
  "/root/repo/src/core/sequential.cpp" "src/CMakeFiles/spsta_core.dir/core/sequential.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/sequential.cpp.o.d"
  "/root/repo/src/core/spsta_canonical.cpp" "src/CMakeFiles/spsta_core.dir/core/spsta_canonical.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/spsta_canonical.cpp.o.d"
  "/root/repo/src/core/spsta_moment.cpp" "src/CMakeFiles/spsta_core.dir/core/spsta_moment.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/spsta_moment.cpp.o.d"
  "/root/repo/src/core/spsta_numeric.cpp" "src/CMakeFiles/spsta_core.dir/core/spsta_numeric.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/spsta_numeric.cpp.o.d"
  "/root/repo/src/core/toggle_moments.cpp" "src/CMakeFiles/spsta_core.dir/core/toggle_moments.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/toggle_moments.cpp.o.d"
  "/root/repo/src/core/yield.cpp" "src/CMakeFiles/spsta_core.dir/core/yield.cpp.o" "gcc" "src/CMakeFiles/spsta_core.dir/core/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_sigprob.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_ssta.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_variational.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_bdd.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
