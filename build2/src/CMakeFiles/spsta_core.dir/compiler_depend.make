# Empty compiler generated dependencies file for spsta_core.
# This may be replaced when dependencies are built.
