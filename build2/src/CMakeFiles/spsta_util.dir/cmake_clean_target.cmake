file(REMOVE_RECURSE
  "libspsta_util.a"
)
