file(REMOVE_RECURSE
  "CMakeFiles/spsta_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/spsta_util.dir/util/thread_pool.cpp.o.d"
  "libspsta_util.a"
  "libspsta_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
