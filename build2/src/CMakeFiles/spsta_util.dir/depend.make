# Empty dependencies file for spsta_util.
# This may be replaced when dependencies are built.
