file(REMOVE_RECURSE
  "CMakeFiles/spsta_sigprob.dir/sigprob/boolean_difference.cpp.o"
  "CMakeFiles/spsta_sigprob.dir/sigprob/boolean_difference.cpp.o.d"
  "CMakeFiles/spsta_sigprob.dir/sigprob/correlated.cpp.o"
  "CMakeFiles/spsta_sigprob.dir/sigprob/correlated.cpp.o.d"
  "CMakeFiles/spsta_sigprob.dir/sigprob/exact_bdd.cpp.o"
  "CMakeFiles/spsta_sigprob.dir/sigprob/exact_bdd.cpp.o.d"
  "CMakeFiles/spsta_sigprob.dir/sigprob/four_value_prop.cpp.o"
  "CMakeFiles/spsta_sigprob.dir/sigprob/four_value_prop.cpp.o.d"
  "CMakeFiles/spsta_sigprob.dir/sigprob/signal_prob.cpp.o"
  "CMakeFiles/spsta_sigprob.dir/sigprob/signal_prob.cpp.o.d"
  "CMakeFiles/spsta_sigprob.dir/sigprob/testability.cpp.o"
  "CMakeFiles/spsta_sigprob.dir/sigprob/testability.cpp.o.d"
  "libspsta_sigprob.a"
  "libspsta_sigprob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_sigprob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
