file(REMOVE_RECURSE
  "libspsta_sigprob.a"
)
