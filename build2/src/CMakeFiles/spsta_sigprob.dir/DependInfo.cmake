
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sigprob/boolean_difference.cpp" "src/CMakeFiles/spsta_sigprob.dir/sigprob/boolean_difference.cpp.o" "gcc" "src/CMakeFiles/spsta_sigprob.dir/sigprob/boolean_difference.cpp.o.d"
  "/root/repo/src/sigprob/correlated.cpp" "src/CMakeFiles/spsta_sigprob.dir/sigprob/correlated.cpp.o" "gcc" "src/CMakeFiles/spsta_sigprob.dir/sigprob/correlated.cpp.o.d"
  "/root/repo/src/sigprob/exact_bdd.cpp" "src/CMakeFiles/spsta_sigprob.dir/sigprob/exact_bdd.cpp.o" "gcc" "src/CMakeFiles/spsta_sigprob.dir/sigprob/exact_bdd.cpp.o.d"
  "/root/repo/src/sigprob/four_value_prop.cpp" "src/CMakeFiles/spsta_sigprob.dir/sigprob/four_value_prop.cpp.o" "gcc" "src/CMakeFiles/spsta_sigprob.dir/sigprob/four_value_prop.cpp.o.d"
  "/root/repo/src/sigprob/signal_prob.cpp" "src/CMakeFiles/spsta_sigprob.dir/sigprob/signal_prob.cpp.o" "gcc" "src/CMakeFiles/spsta_sigprob.dir/sigprob/signal_prob.cpp.o.d"
  "/root/repo/src/sigprob/testability.cpp" "src/CMakeFiles/spsta_sigprob.dir/sigprob/testability.cpp.o" "gcc" "src/CMakeFiles/spsta_sigprob.dir/sigprob/testability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_bdd.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
