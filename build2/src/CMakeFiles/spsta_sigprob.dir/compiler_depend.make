# Empty compiler generated dependencies file for spsta_sigprob.
# This may be replaced when dependencies are built.
