file(REMOVE_RECURSE
  "CMakeFiles/spsta_ssta.dir/ssta/canonical_ssta.cpp.o"
  "CMakeFiles/spsta_ssta.dir/ssta/canonical_ssta.cpp.o.d"
  "CMakeFiles/spsta_ssta.dir/ssta/incremental.cpp.o"
  "CMakeFiles/spsta_ssta.dir/ssta/incremental.cpp.o.d"
  "CMakeFiles/spsta_ssta.dir/ssta/node_criticality.cpp.o"
  "CMakeFiles/spsta_ssta.dir/ssta/node_criticality.cpp.o.d"
  "CMakeFiles/spsta_ssta.dir/ssta/path_ssta.cpp.o"
  "CMakeFiles/spsta_ssta.dir/ssta/path_ssta.cpp.o.d"
  "CMakeFiles/spsta_ssta.dir/ssta/slew.cpp.o"
  "CMakeFiles/spsta_ssta.dir/ssta/slew.cpp.o.d"
  "CMakeFiles/spsta_ssta.dir/ssta/ssta.cpp.o"
  "CMakeFiles/spsta_ssta.dir/ssta/ssta.cpp.o.d"
  "CMakeFiles/spsta_ssta.dir/ssta/sta.cpp.o"
  "CMakeFiles/spsta_ssta.dir/ssta/sta.cpp.o.d"
  "libspsta_ssta.a"
  "libspsta_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
