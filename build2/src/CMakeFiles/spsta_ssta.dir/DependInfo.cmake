
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssta/canonical_ssta.cpp" "src/CMakeFiles/spsta_ssta.dir/ssta/canonical_ssta.cpp.o" "gcc" "src/CMakeFiles/spsta_ssta.dir/ssta/canonical_ssta.cpp.o.d"
  "/root/repo/src/ssta/incremental.cpp" "src/CMakeFiles/spsta_ssta.dir/ssta/incremental.cpp.o" "gcc" "src/CMakeFiles/spsta_ssta.dir/ssta/incremental.cpp.o.d"
  "/root/repo/src/ssta/node_criticality.cpp" "src/CMakeFiles/spsta_ssta.dir/ssta/node_criticality.cpp.o" "gcc" "src/CMakeFiles/spsta_ssta.dir/ssta/node_criticality.cpp.o.d"
  "/root/repo/src/ssta/path_ssta.cpp" "src/CMakeFiles/spsta_ssta.dir/ssta/path_ssta.cpp.o" "gcc" "src/CMakeFiles/spsta_ssta.dir/ssta/path_ssta.cpp.o.d"
  "/root/repo/src/ssta/slew.cpp" "src/CMakeFiles/spsta_ssta.dir/ssta/slew.cpp.o" "gcc" "src/CMakeFiles/spsta_ssta.dir/ssta/slew.cpp.o.d"
  "/root/repo/src/ssta/ssta.cpp" "src/CMakeFiles/spsta_ssta.dir/ssta/ssta.cpp.o" "gcc" "src/CMakeFiles/spsta_ssta.dir/ssta/ssta.cpp.o.d"
  "/root/repo/src/ssta/sta.cpp" "src/CMakeFiles/spsta_ssta.dir/ssta/sta.cpp.o" "gcc" "src/CMakeFiles/spsta_ssta.dir/ssta/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_variational.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
