file(REMOVE_RECURSE
  "libspsta_ssta.a"
)
