# Empty compiler generated dependencies file for spsta_ssta.
# This may be replaced when dependencies are built.
