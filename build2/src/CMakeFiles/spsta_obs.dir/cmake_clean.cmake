file(REMOVE_RECURSE
  "CMakeFiles/spsta_obs.dir/obs/metrics.cpp.o"
  "CMakeFiles/spsta_obs.dir/obs/metrics.cpp.o.d"
  "CMakeFiles/spsta_obs.dir/obs/trace.cpp.o"
  "CMakeFiles/spsta_obs.dir/obs/trace.cpp.o.d"
  "libspsta_obs.a"
  "libspsta_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
