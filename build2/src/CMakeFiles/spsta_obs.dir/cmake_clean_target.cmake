file(REMOVE_RECURSE
  "libspsta_obs.a"
)
