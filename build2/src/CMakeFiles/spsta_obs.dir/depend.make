# Empty dependencies file for spsta_obs.
# This may be replaced when dependencies are built.
