file(REMOVE_RECURSE
  "CMakeFiles/spsta_interconnect.dir/interconnect/crosstalk.cpp.o"
  "CMakeFiles/spsta_interconnect.dir/interconnect/crosstalk.cpp.o.d"
  "CMakeFiles/spsta_interconnect.dir/interconnect/rc_tree.cpp.o"
  "CMakeFiles/spsta_interconnect.dir/interconnect/rc_tree.cpp.o.d"
  "CMakeFiles/spsta_interconnect.dir/interconnect/variational_elmore.cpp.o"
  "CMakeFiles/spsta_interconnect.dir/interconnect/variational_elmore.cpp.o.d"
  "libspsta_interconnect.a"
  "libspsta_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
