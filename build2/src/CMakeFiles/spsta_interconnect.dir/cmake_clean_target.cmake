file(REMOVE_RECURSE
  "libspsta_interconnect.a"
)
