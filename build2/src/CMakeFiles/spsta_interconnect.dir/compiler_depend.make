# Empty compiler generated dependencies file for spsta_interconnect.
# This may be replaced when dependencies are built.
