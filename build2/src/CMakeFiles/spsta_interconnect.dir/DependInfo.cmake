
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/crosstalk.cpp" "src/CMakeFiles/spsta_interconnect.dir/interconnect/crosstalk.cpp.o" "gcc" "src/CMakeFiles/spsta_interconnect.dir/interconnect/crosstalk.cpp.o.d"
  "/root/repo/src/interconnect/rc_tree.cpp" "src/CMakeFiles/spsta_interconnect.dir/interconnect/rc_tree.cpp.o" "gcc" "src/CMakeFiles/spsta_interconnect.dir/interconnect/rc_tree.cpp.o.d"
  "/root/repo/src/interconnect/variational_elmore.cpp" "src/CMakeFiles/spsta_interconnect.dir/interconnect/variational_elmore.cpp.o" "gcc" "src/CMakeFiles/spsta_interconnect.dir/interconnect/variational_elmore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_variational.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
