file(REMOVE_RECURSE
  "CMakeFiles/spsta_power.dir/power/glitch.cpp.o"
  "CMakeFiles/spsta_power.dir/power/glitch.cpp.o.d"
  "CMakeFiles/spsta_power.dir/power/transition_density.cpp.o"
  "CMakeFiles/spsta_power.dir/power/transition_density.cpp.o.d"
  "CMakeFiles/spsta_power.dir/power/waveform_sim.cpp.o"
  "CMakeFiles/spsta_power.dir/power/waveform_sim.cpp.o.d"
  "libspsta_power.a"
  "libspsta_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
