file(REMOVE_RECURSE
  "libspsta_power.a"
)
