# Empty dependencies file for spsta_power.
# This may be replaced when dependencies are built.
