
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/glitch.cpp" "src/CMakeFiles/spsta_power.dir/power/glitch.cpp.o" "gcc" "src/CMakeFiles/spsta_power.dir/power/glitch.cpp.o.d"
  "/root/repo/src/power/transition_density.cpp" "src/CMakeFiles/spsta_power.dir/power/transition_density.cpp.o" "gcc" "src/CMakeFiles/spsta_power.dir/power/transition_density.cpp.o.d"
  "/root/repo/src/power/waveform_sim.cpp" "src/CMakeFiles/spsta_power.dir/power/waveform_sim.cpp.o" "gcc" "src/CMakeFiles/spsta_power.dir/power/waveform_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_sigprob.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_bdd.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
