file(REMOVE_RECURSE
  "libspsta_netlist.a"
)
