
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_io.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/bench_io.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/cell_library.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/cell_library.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/cell_library.cpp.o.d"
  "/root/repo/src/netlist/delay_model.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/delay_model.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/delay_model.cpp.o.d"
  "/root/repo/src/netlist/dot_export.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/dot_export.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/dot_export.cpp.o.d"
  "/root/repo/src/netlist/four_value.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/four_value.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/four_value.cpp.o.d"
  "/root/repo/src/netlist/gate_type.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/gate_type.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/gate_type.cpp.o.d"
  "/root/repo/src/netlist/generator.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/generator.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/generator.cpp.o.d"
  "/root/repo/src/netlist/graph.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/graph.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/graph.cpp.o.d"
  "/root/repo/src/netlist/iscas89.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/iscas89.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/iscas89.cpp.o.d"
  "/root/repo/src/netlist/levelize.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/levelize.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/levelize.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/transform.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/transform.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/transform.cpp.o.d"
  "/root/repo/src/netlist/verilog_io.cpp" "src/CMakeFiles/spsta_netlist.dir/netlist/verilog_io.cpp.o" "gcc" "src/CMakeFiles/spsta_netlist.dir/netlist/verilog_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
