file(REMOVE_RECURSE
  "CMakeFiles/spsta_netlist.dir/netlist/bench_io.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/bench_io.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/cell_library.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/cell_library.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/delay_model.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/delay_model.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/dot_export.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/dot_export.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/four_value.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/four_value.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/gate_type.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/gate_type.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/generator.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/generator.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/graph.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/graph.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/iscas89.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/iscas89.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/levelize.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/levelize.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/netlist.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/transform.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/transform.cpp.o.d"
  "CMakeFiles/spsta_netlist.dir/netlist/verilog_io.cpp.o"
  "CMakeFiles/spsta_netlist.dir/netlist/verilog_io.cpp.o.d"
  "libspsta_netlist.a"
  "libspsta_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
