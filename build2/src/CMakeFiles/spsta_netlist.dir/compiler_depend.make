# Empty compiler generated dependencies file for spsta_netlist.
# This may be replaced when dependencies are built.
