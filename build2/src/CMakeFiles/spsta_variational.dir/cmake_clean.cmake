file(REMOVE_RECURSE
  "CMakeFiles/spsta_variational.dir/variational/canonical.cpp.o"
  "CMakeFiles/spsta_variational.dir/variational/canonical.cpp.o.d"
  "CMakeFiles/spsta_variational.dir/variational/interval.cpp.o"
  "CMakeFiles/spsta_variational.dir/variational/interval.cpp.o.d"
  "CMakeFiles/spsta_variational.dir/variational/polynomial.cpp.o"
  "CMakeFiles/spsta_variational.dir/variational/polynomial.cpp.o.d"
  "CMakeFiles/spsta_variational.dir/variational/regression.cpp.o"
  "CMakeFiles/spsta_variational.dir/variational/regression.cpp.o.d"
  "libspsta_variational.a"
  "libspsta_variational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_variational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
