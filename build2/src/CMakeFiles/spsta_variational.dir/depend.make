# Empty dependencies file for spsta_variational.
# This may be replaced when dependencies are built.
