file(REMOVE_RECURSE
  "libspsta_variational.a"
)
