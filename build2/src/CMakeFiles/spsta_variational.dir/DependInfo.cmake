
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variational/canonical.cpp" "src/CMakeFiles/spsta_variational.dir/variational/canonical.cpp.o" "gcc" "src/CMakeFiles/spsta_variational.dir/variational/canonical.cpp.o.d"
  "/root/repo/src/variational/interval.cpp" "src/CMakeFiles/spsta_variational.dir/variational/interval.cpp.o" "gcc" "src/CMakeFiles/spsta_variational.dir/variational/interval.cpp.o.d"
  "/root/repo/src/variational/polynomial.cpp" "src/CMakeFiles/spsta_variational.dir/variational/polynomial.cpp.o" "gcc" "src/CMakeFiles/spsta_variational.dir/variational/polynomial.cpp.o.d"
  "/root/repo/src/variational/regression.cpp" "src/CMakeFiles/spsta_variational.dir/variational/regression.cpp.o" "gcc" "src/CMakeFiles/spsta_variational.dir/variational/regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/spsta_netlist.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/spsta_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
