# Empty dependencies file for spsta_service.
# This may be replaced when dependencies are built.
