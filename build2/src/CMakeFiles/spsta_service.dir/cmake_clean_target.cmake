file(REMOVE_RECURSE
  "libspsta_service.a"
)
