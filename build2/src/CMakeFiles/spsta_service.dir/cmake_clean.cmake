file(REMOVE_RECURSE
  "CMakeFiles/spsta_service.dir/service/daemon.cpp.o"
  "CMakeFiles/spsta_service.dir/service/daemon.cpp.o.d"
  "CMakeFiles/spsta_service.dir/service/json.cpp.o"
  "CMakeFiles/spsta_service.dir/service/json.cpp.o.d"
  "CMakeFiles/spsta_service.dir/service/protocol.cpp.o"
  "CMakeFiles/spsta_service.dir/service/protocol.cpp.o.d"
  "CMakeFiles/spsta_service.dir/service/scheduler.cpp.o"
  "CMakeFiles/spsta_service.dir/service/scheduler.cpp.o.d"
  "CMakeFiles/spsta_service.dir/service/service.cpp.o"
  "CMakeFiles/spsta_service.dir/service/service.cpp.o.d"
  "CMakeFiles/spsta_service.dir/service/session.cpp.o"
  "CMakeFiles/spsta_service.dir/service/session.cpp.o.d"
  "libspsta_service.a"
  "libspsta_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
