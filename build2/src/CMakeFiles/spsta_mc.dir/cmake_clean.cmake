file(REMOVE_RECURSE
  "CMakeFiles/spsta_mc.dir/mc/logic_sim.cpp.o"
  "CMakeFiles/spsta_mc.dir/mc/logic_sim.cpp.o.d"
  "CMakeFiles/spsta_mc.dir/mc/monte_carlo.cpp.o"
  "CMakeFiles/spsta_mc.dir/mc/monte_carlo.cpp.o.d"
  "libspsta_mc.a"
  "libspsta_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
