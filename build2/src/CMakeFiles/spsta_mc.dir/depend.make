# Empty dependencies file for spsta_mc.
# This may be replaced when dependencies are built.
