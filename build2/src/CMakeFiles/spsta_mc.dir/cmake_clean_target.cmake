file(REMOVE_RECURSE
  "libspsta_mc.a"
)
