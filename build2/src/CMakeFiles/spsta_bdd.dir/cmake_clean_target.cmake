file(REMOVE_RECURSE
  "libspsta_bdd.a"
)
