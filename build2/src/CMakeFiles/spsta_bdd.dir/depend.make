# Empty dependencies file for spsta_bdd.
# This may be replaced when dependencies are built.
