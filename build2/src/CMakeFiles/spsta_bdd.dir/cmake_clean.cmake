file(REMOVE_RECURSE
  "CMakeFiles/spsta_bdd.dir/bdd/bdd.cpp.o"
  "CMakeFiles/spsta_bdd.dir/bdd/bdd.cpp.o.d"
  "CMakeFiles/spsta_bdd.dir/bdd/bdd_netlist.cpp.o"
  "CMakeFiles/spsta_bdd.dir/bdd/bdd_netlist.cpp.o.d"
  "CMakeFiles/spsta_bdd.dir/bdd/equivalence.cpp.o"
  "CMakeFiles/spsta_bdd.dir/bdd/equivalence.cpp.o.d"
  "libspsta_bdd.a"
  "libspsta_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
