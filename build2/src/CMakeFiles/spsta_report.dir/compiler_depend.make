# Empty compiler generated dependencies file for spsta_report.
# This may be replaced when dependencies are built.
