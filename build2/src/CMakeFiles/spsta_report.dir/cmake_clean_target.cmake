file(REMOVE_RECURSE
  "libspsta_report.a"
)
