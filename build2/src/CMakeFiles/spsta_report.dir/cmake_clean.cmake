file(REMOVE_RECURSE
  "CMakeFiles/spsta_report.dir/report/csv.cpp.o"
  "CMakeFiles/spsta_report.dir/report/csv.cpp.o.d"
  "CMakeFiles/spsta_report.dir/report/experiment.cpp.o"
  "CMakeFiles/spsta_report.dir/report/experiment.cpp.o.d"
  "CMakeFiles/spsta_report.dir/report/path_report.cpp.o"
  "CMakeFiles/spsta_report.dir/report/path_report.cpp.o.d"
  "CMakeFiles/spsta_report.dir/report/table.cpp.o"
  "CMakeFiles/spsta_report.dir/report/table.cpp.o.d"
  "libspsta_report.a"
  "libspsta_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
