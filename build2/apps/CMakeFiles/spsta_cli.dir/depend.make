# Empty dependencies file for spsta_cli.
# This may be replaced when dependencies are built.
