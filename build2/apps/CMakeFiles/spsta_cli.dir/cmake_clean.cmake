file(REMOVE_RECURSE
  "CMakeFiles/spsta_cli.dir/spsta.cpp.o"
  "CMakeFiles/spsta_cli.dir/spsta.cpp.o.d"
  "spsta"
  "spsta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
