file(REMOVE_RECURSE
  "CMakeFiles/spsta_serviced.dir/spsta_serviced.cpp.o"
  "CMakeFiles/spsta_serviced.dir/spsta_serviced.cpp.o.d"
  "spsta_serviced"
  "spsta_serviced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsta_serviced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
