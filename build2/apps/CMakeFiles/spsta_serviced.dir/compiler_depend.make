# Empty compiler generated dependencies file for spsta_serviced.
# This may be replaced when dependencies are built.
