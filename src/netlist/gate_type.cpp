#include "netlist/gate_type.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <string>

namespace spsta::netlist {

std::string_view to_string(GateType t) noexcept {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Buf: return "BUFF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

std::optional<GateType> parse_gate_type(std::string_view s) noexcept {
  std::string u(s);
  std::transform(u.begin(), u.end(), u.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (u == "INPUT") return GateType::Input;
  if (u == "BUF" || u == "BUFF") return GateType::Buf;
  if (u == "NOT" || u == "INV") return GateType::Not;
  if (u == "AND") return GateType::And;
  if (u == "NAND") return GateType::Nand;
  if (u == "OR") return GateType::Or;
  if (u == "NOR") return GateType::Nor;
  if (u == "XOR") return GateType::Xor;
  if (u == "XNOR") return GateType::Xnor;
  if (u == "CONST0" || u == "GND") return GateType::Const0;
  if (u == "CONST1" || u == "VDD") return GateType::Const1;
  if (u == "DFF") return GateType::Dff;
  return std::nullopt;
}

bool has_controlling_value(GateType t) noexcept {
  return t == GateType::And || t == GateType::Nand || t == GateType::Or ||
         t == GateType::Nor;
}

bool controlling_value(GateType t) noexcept {
  return t == GateType::Or || t == GateType::Nor;
}

bool is_inverting(GateType t) noexcept {
  return t == GateType::Not || t == GateType::Nand || t == GateType::Nor ||
         t == GateType::Xnor;
}

bool is_combinational(GateType t) noexcept {
  return t != GateType::Input && t != GateType::Dff;
}

bool eval_gate(GateType t, std::span<const bool> inputs) noexcept {
  switch (t) {
    case GateType::Const0: return false;
    case GateType::Const1: return true;
    case GateType::Buf:
    case GateType::Dff:
    case GateType::Input: return !inputs.empty() && inputs[0];
    case GateType::Not: return !(inputs.empty() ? false : inputs[0]);
    case GateType::And:
    case GateType::Nand: {
      bool all = true;
      for (bool b : inputs) all = all && b;
      return t == GateType::And ? all : !all;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool any = false;
      for (bool b : inputs) any = any || b;
      return t == GateType::Or ? any : !any;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool parity = false;
      for (bool b : inputs) parity = parity != b;
      return t == GateType::Xor ? parity : !parity;
    }
  }
  return false;
}

ArityRange arity_range(GateType t) noexcept {
  constexpr std::size_t unbounded = std::numeric_limits<std::size_t>::max();
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1: return {0, 0};
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff: return {1, 1};
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor: return {1, unbounded};
  }
  return {0, 0};
}

}  // namespace spsta::netlist
