/// \file cell_library.hpp
/// A minimal cell timing library: per-gate-type delay distributions with a
/// linear fanout-load term — the Liberty-style ingredient that turns the
/// paper's unit-delay experiment into a technology-aware one.
///
/// Text format (one entry per line, '#' comments):
///
///   # type   mean   sigma   load_coeff
///   NAND     0.90   0.05    0.08
///   NOT      0.45   0.02    0.05
///   default  1.00   0.00    0.00
///
/// A gate's delay is N(mean + load_coeff * fanout_count, sigma^2); types
/// without an entry use the `default` row (unit deterministic delay if no
/// default is given either).

#pragma once

#include <array>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Error thrown by the library parser; carries the 1-based line number.
class CellLibraryParseError : public std::runtime_error {
 public:
  CellLibraryParseError(std::size_t line, const std::string& message);
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Timing of one cell type.
struct CellTiming {
  double mean = 1.0;
  double sigma = 0.0;
  double load_coeff = 0.0;

  friend bool operator==(const CellTiming&, const CellTiming&) = default;
};

/// Parsed cell library.
class CellLibrary {
 public:
  /// Empty library: everything falls back to the default timing.
  CellLibrary() = default;

  /// Parses the text format above.
  [[nodiscard]] static CellLibrary parse(std::string_view text);

  /// Timing entry for a gate type; nullopt when only the default applies.
  [[nodiscard]] std::optional<CellTiming> timing(GateType type) const;
  /// The default row (unit deterministic delay unless parsed otherwise).
  [[nodiscard]] const CellTiming& default_timing() const noexcept { return default_; }

  void set_timing(GateType type, CellTiming t);
  void set_default(CellTiming t) { default_ = t; }

  /// Effective delay distribution of one node in \p design: sources and
  /// constants get zero delay, gates get their (or the default) entry
  /// with the load term applied.
  [[nodiscard]] stats::Gaussian delay_of(const Netlist& design, NodeId id) const;

  /// Builds a full DelayModel for \p design.
  [[nodiscard]] DelayModel apply(const Netlist& design) const;

  /// Serializes back to the text format (parse round-trips).
  [[nodiscard]] std::string to_text() const;

 private:
  static constexpr std::size_t kTypes = static_cast<std::size_t>(GateType::Dff) + 1;
  std::array<std::optional<CellTiming>, kTypes> entries_{};
  CellTiming default_{1.0, 0.0, 0.0};
};

}  // namespace spsta::netlist
