/// \file netlist.hpp
/// The gate-level netlist data model shared by every analysis engine.
///
/// A netlist is a set of named nodes; each node drives exactly one net, so
/// nodes and nets are identified. Primary inputs and DFF outputs are the
/// *timing sources* of combinational analysis; primary outputs and DFF D
/// pins are the *timing endpoints* — matching the paper's treatment of the
/// ISCAS'89 sequential benchmarks (values/arrival statistics are assigned
/// to "the primary inputs and the flip-flop outputs").

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/gate_type.hpp"

namespace spsta::netlist {

/// Index of a node within its netlist.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// One netlist node: a primary input, a constant, a logic gate, or a DFF.
struct Node {
  std::string name;
  GateType type = GateType::Input;
  std::vector<NodeId> fanins;
  std::vector<NodeId> fanouts;  ///< maintained by Netlist
};

/// Mutable gate-level netlist.
///
/// Construction is two-phase friendly: `declare` creates a node whose
/// fanins may be set later with `connect`, which is what the .bench parser
/// needs for forward references. `validate()` checks the completed design.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Creates a node with no fanins. Throws std::invalid_argument if the
  /// name is empty or already taken.
  NodeId declare(GateType type, std::string_view name);

  /// Sets a node's fanins (replacing any previous connection) and updates
  /// fanout lists. Throws on invalid ids or arity violations.
  void connect(NodeId node, std::vector<NodeId> fanins);

  /// declare + connect in one step for fully-known gates.
  NodeId add_gate(GateType type, std::string_view name, std::vector<NodeId> fanins);
  /// Shorthand for declare(GateType::Input, name).
  NodeId add_input(std::string_view name);

  /// Marks an existing node as a primary output (idempotent).
  void mark_output(NodeId node);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  /// Looks a node up by name; kInvalidNode if absent.
  [[nodiscard]] NodeId find(std::string_view name) const noexcept;

  [[nodiscard]] const std::vector<NodeId>& primary_inputs() const noexcept { return inputs_; }
  [[nodiscard]] const std::vector<NodeId>& primary_outputs() const noexcept { return outputs_; }
  [[nodiscard]] const std::vector<NodeId>& dffs() const noexcept { return dffs_; }

  /// PIs plus DFF outputs: the nodes that carry externally supplied
  /// values/arrival statistics.
  [[nodiscard]] std::vector<NodeId> timing_sources() const;
  /// POs plus DFF D-pin driver nodes: where arrival times are measured.
  [[nodiscard]] std::vector<NodeId> timing_endpoints() const;

  /// True for PI and DFF nodes (level-0 nodes of combinational traversal).
  [[nodiscard]] bool is_timing_source(NodeId id) const;

  /// Number of combinational gates (excludes inputs and DFFs).
  [[nodiscard]] std::size_t gate_count() const noexcept;
  /// Per-type node counts indexed by static_cast<size_t>(GateType).
  [[nodiscard]] std::vector<std::size_t> type_histogram() const;

  /// Checks structural invariants (all fanins connected with legal arity,
  /// outputs marked on existing nodes). Throws std::logic_error with a
  /// description of the first violation. Acyclicity is checked separately
  /// by levelize().
  void validate() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> dffs_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace spsta::netlist
