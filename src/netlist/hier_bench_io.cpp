#include "netlist/hier_bench_io.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

namespace spsta::netlist {

namespace {

using detail::parse_call;
using detail::trim;

// Incremental line-fed builder shared by the string and stream parsers.
// Block bodies are accumulated and handed to the flat parser at END, so the
// largest transient buffer is one block's text — never the whole file.
class HierBuilder {
 public:
  explicit HierBuilder(std::string name) : design_(std::move(name)) {}

  void feed(std::string_view raw, std::size_t line_no) {
    std::string_view no_comment = raw;
    const std::size_t hash = no_comment.find('#');
    if (hash != std::string_view::npos) no_comment = no_comment.substr(0, hash);
    const std::string_view line = trim(no_comment);

    if (in_block_) {
      if (line == "END" || line == "end") {
        finish_block(line_no);
        return;
      }
      // Raw line kept verbatim (comments included) for the flat parser.
      body_.append(raw);
      body_.push_back('\n');
      ++body_lines_;
      return;
    }

    if (line.empty()) return;
    if (line == "END" || line == "end") {
      throw BenchParseError(line_no, "END without a matching BLOCK");
    }

    const std::size_t eq = line.find('=');
    if (eq != std::string_view::npos) {
      const std::string target(trim(line.substr(0, eq)));
      if (target.empty()) throw BenchParseError(line_no, "missing instance name");
      auto [head, args] = parse_call(line.substr(eq + 1), line_no);
      if (head != "INSTANCE" && head != "instance") {
        throw BenchParseError(line_no, "top level allows only INSTANCE assignments; '" +
                                           head + "' gates belong inside a BLOCK");
      }
      if (args.empty()) {
        throw BenchParseError(line_no, "INSTANCE needs a block name");
      }
      const auto block = design_.find_block(args[0]);
      if (!block) {
        throw BenchParseError(line_no, "unknown block '" + args[0] + "'");
      }
      HierInstance inst;
      inst.name = target;
      inst.block = *block;
      inst.inputs.assign(args.begin() + 1, args.end());
      wrap(line_no, [&] { design_.add_instance(std::move(inst)); });
      return;
    }

    auto [head, args] = parse_call(line, line_no);
    if (args.size() != 1) {
      throw BenchParseError(line_no, head + " takes exactly one argument");
    }
    if (head == "BLOCK" || head == "block") {
      in_block_ = true;
      block_name_ = args[0];
      block_line_ = line_no;
      body_.clear();
      body_lines_ = 0;
    } else if (head == "INPUT" || head == "input") {
      wrap(line_no, [&] { design_.add_top_input(args[0]); });
    } else if (head == "OUTPUT" || head == "output") {
      wrap(line_no, [&] { design_.add_top_output(args[0]); });
    } else {
      throw BenchParseError(line_no,
                            "unknown top-level declaration '" + head +
                                "' (expected BLOCK, INPUT, OUTPUT or INSTANCE)");
    }
  }

  HierDesign finish(std::size_t last_line) {
    if (in_block_) {
      throw BenchParseError(block_line_, "BLOCK(" + block_name_ + ") without END");
    }
    try {
      design_.validate();
    } catch (const std::logic_error& e) {
      throw BenchParseError(last_line == 0 ? 1 : last_line, e.what());
    }
    return std::move(design_);
  }

 private:
  template <typename Fn>
  void wrap(std::size_t line_no, Fn&& fn) {
    try {
      fn();
    } catch (const std::invalid_argument& e) {
      throw BenchParseError(line_no, e.what());
    }
  }

  void finish_block(std::size_t end_line) {
    in_block_ = false;
    Netlist parsed;
    try {
      parsed = parse_bench(body_, block_name_);
    } catch (const BenchParseError& e) {
      // Body line numbers are block-relative; re-anchor to the file.
      const std::size_t file_line =
          e.line() <= body_lines_ ? block_line_ + e.line() : end_line;
      throw BenchParseError(file_line, std::string("in BLOCK(") + block_name_ +
                                           "): " + e.what());
    }
    wrap(block_line_, [&] { design_.add_block(std::move(parsed)); });
    body_.clear();
  }

  HierDesign design_;
  bool in_block_ = false;
  std::string block_name_;
  std::size_t block_line_ = 0;
  std::string body_;
  std::size_t body_lines_ = 0;
};

}  // namespace

HierDesign parse_hier_bench(std::string_view text, std::string name) {
  text = detail::strip_utf8_bom(text);
  HierBuilder builder(std::move(name));
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (raw.size() > kMaxBenchLineBytes) {
      throw BenchParseError(line_no, "line exceeds " + std::to_string(kMaxBenchLineBytes) +
                                         " byte limit");
    }
    builder.feed(raw, line_no);
  }
  return builder.finish(line_no);
}

HierDesign parse_hier_bench_stream(std::istream& in, std::string name) {
  HierBuilder builder(std::move(name));
  std::string line;
  std::size_t line_no = 0;
  while (read_bench_line(in, line, line_no + 1)) {
    ++line_no;
    std::string_view raw = line;
    if (line_no == 1) raw = detail::strip_utf8_bom(raw);
    builder.feed(raw, line_no);
  }
  return builder.finish(line_no);
}

void write_hier_bench(const HierDesign& design, std::ostream& out) {
  out << "# " << design.name() << " — hierarchical, written by spsta\n";
  for (const Netlist& block : design.blocks()) {
    out << "BLOCK(" << block.name() << ")\n";
    write_bench(block, out);
    out << "END\n";
  }
  for (const std::string& in : design.top_inputs()) {
    out << "INPUT(" << in << ")\n";
  }
  for (const std::string& sig : design.top_outputs()) {
    out << "OUTPUT(" << sig << ")\n";
  }
  for (const HierInstance& inst : design.instances()) {
    out << inst.name << " = INSTANCE(" << design.blocks()[inst.block].name();
    for (const std::string& sig : inst.inputs) out << ", " << sig;
    out << ")\n";
  }
}

std::string write_hier_bench(const HierDesign& design) {
  std::ostringstream out;
  write_hier_bench(design, out);
  return out.str();
}

}  // namespace spsta::netlist
