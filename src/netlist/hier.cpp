#include "netlist/hier.hpp"

#include <algorithm>
#include <stdexcept>

namespace spsta::netlist {

namespace {

[[noreturn]] void fail(const std::string& message) { throw std::logic_error(message); }

}  // namespace

std::size_t HierDesign::add_block(Netlist block) {
  if (block.name().empty()) {
    throw std::invalid_argument("hier: block netlist must be named");
  }
  if (block_index_.contains(block.name())) {
    throw std::invalid_argument("hier: duplicate block '" + block.name() + "'");
  }
  const std::size_t index = blocks_.size();
  block_index_.emplace(block.name(), index);
  blocks_.push_back(std::move(block));
  return index;
}

std::optional<std::size_t> HierDesign::find_block(std::string_view name) const {
  const auto it = block_index_.find(std::string(name));
  return it == block_index_.end() ? std::nullopt : std::make_optional(it->second);
}

void HierDesign::add_top_input(std::string name) {
  if (name.empty()) throw std::invalid_argument("hier: empty top input name");
  if (!top_input_index_.emplace(name, top_inputs_.size()).second) {
    throw std::invalid_argument("hier: duplicate top input '" + name + "'");
  }
  top_inputs_.push_back(std::move(name));
}

void HierDesign::add_top_output(std::string signal) {
  if (signal.empty()) throw std::invalid_argument("hier: empty top output signal");
  top_outputs_.push_back(std::move(signal));
}

std::size_t HierDesign::add_instance(HierInstance instance) {
  if (instance.name.empty()) throw std::invalid_argument("hier: empty instance name");
  if (!instance_index_.emplace(instance.name, instances_.size()).second) {
    throw std::invalid_argument("hier: duplicate instance '" + instance.name + "'");
  }
  instances_.push_back(std::move(instance));
  return instances_.size() - 1;
}

std::optional<HierSignalRef> HierDesign::resolve(std::string_view signal) const {
  if (const auto in = top_input_index_.find(std::string(signal)); in != top_input_index_.end()) {
    return HierSignalRef{HierSignalRef::kTopInput, in->second};
  }
  // Instance names may not contain '.' (validate enforces it), so the first
  // dot splits "<instance>.<port>" unambiguously even if port names dot.
  const std::size_t dot = signal.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == signal.size()) {
    return std::nullopt;
  }
  const auto inst = instance_index_.find(std::string(signal.substr(0, dot)));
  if (inst == instance_index_.end()) return std::nullopt;
  const Netlist& block = blocks_.at(instances_[inst->second].block);
  const NodeId node = block.find(signal.substr(dot + 1));
  if (node == kInvalidNode) return std::nullopt;
  const auto& outs = block.primary_outputs();
  const auto pos = std::find(outs.begin(), outs.end(), node);
  if (pos == outs.end()) return std::nullopt;
  return HierSignalRef{inst->second,
                       static_cast<std::size_t>(pos - outs.begin())};
}

std::vector<std::size_t> HierDesign::topo_instances() const {
  // Kahn's algorithm over the instance graph; edges from driver instance to
  // consumer. Unresolvable inputs and cycles both fail here.
  const std::size_t n = instances_.size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> consumers(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& sig : instances_[i].inputs) {
      const auto ref = resolve(sig);
      if (!ref) {
        fail("hier: instance '" + instances_[i].name + "' input '" + sig +
             "' does not resolve to a top input or instance output");
      }
      if (!ref->is_top_input()) {
        consumers[ref->instance].push_back(i);
        ++indegree[i];
      }
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  // Process smallest index first so the order is deterministic and matches
  // declaration order when the graph allows it.
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const std::size_t i = ready[head];
    order.push_back(i);
    for (const std::size_t c : consumers[i]) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  if (order.size() != n) {
    fail("hier: instance graph has a cycle");
  }
  return order;
}

void HierDesign::validate() const {
  if (blocks_.empty()) fail("hier: no block definitions");
  if (instances_.empty()) fail("hier: no instances");
  for (const std::string& in : top_inputs_) {
    if (in.find('.') != std::string::npos) {
      fail("hier: top input '" + in + "' may not contain '.'");
    }
    if (instance_index_.contains(in)) {
      fail("hier: top input '" + in + "' collides with an instance name");
    }
  }
  for (const Netlist& block : blocks_) {
    block.validate();
    if (block.primary_inputs().empty()) {
      fail("hier: block '" + block.name() + "' has no primary inputs");
    }
    if (block.primary_outputs().empty()) {
      fail("hier: block '" + block.name() + "' has no primary outputs");
    }
  }
  for (const HierInstance& inst : instances_) {
    if (inst.name.find('.') != std::string::npos) {
      fail("hier: instance name '" + inst.name + "' may not contain '.'");
    }
    if (inst.block >= blocks_.size()) {
      fail("hier: instance '" + inst.name + "' references unknown block index");
    }
    const Netlist& block = blocks_[inst.block];
    if (inst.inputs.size() != block.primary_inputs().size()) {
      fail("hier: instance '" + inst.name + "' connects " +
           std::to_string(inst.inputs.size()) + " inputs, block '" + block.name() +
           "' has " + std::to_string(block.primary_inputs().size()));
    }
  }
  for (const std::string& out : top_outputs_) {
    if (!resolve(out)) {
      fail("hier: top output '" + out +
           "' does not resolve to a top input or instance output");
    }
  }
  (void)topo_instances();  // resolves every instance input; rejects cycles
}

std::size_t HierDesign::expanded_gate_count() const noexcept {
  std::size_t total = 0;
  for (const HierInstance& inst : instances_) total += blocks_[inst.block].gate_count();
  return total;
}

std::size_t HierDesign::expanded_node_count() const noexcept {
  // Block input ports collapse onto their driving nets when flattened.
  std::size_t total = top_inputs_.size();
  for (const HierInstance& inst : instances_) {
    const Netlist& block = blocks_[inst.block];
    total += block.node_count() - block.primary_inputs().size();
  }
  return total;
}

std::size_t HierDesign::expanded_dff_count() const noexcept {
  std::size_t total = 0;
  for (const HierInstance& inst : instances_) total += blocks_[inst.block].dffs().size();
  return total;
}

Netlist HierDesign::flatten() const {
  validate();
  Netlist flat(name_);
  // signal -> flat node, filled as instances are expanded in topo order.
  std::unordered_map<std::string, NodeId> net;
  net.reserve(top_inputs_.size() + instances_.size() * 4);
  for (const std::string& in : top_inputs_) net.emplace(in, flat.add_input(in));

  for (const std::size_t index : topo_instances()) {
    const HierInstance& inst = instances_[index];
    const Netlist& block = blocks_[inst.block];
    std::vector<NodeId> map(block.node_count(), kInvalidNode);
    // Input ports collapse onto the nets driving them.
    const auto& ports = block.primary_inputs();
    for (std::size_t j = 0; j < ports.size(); ++j) {
      map[ports[j]] = net.at(inst.inputs[j]);
    }
    // Two-phase clone (declare then connect) mirrors the block's own
    // forward-reference-friendly construction.
    for (NodeId id = 0; id < block.node_count(); ++id) {
      const Node& node = block.node(id);
      if (node.type == GateType::Input) continue;
      map[id] = flat.declare(node.type, inst.name + "/" + node.name);
    }
    for (NodeId id = 0; id < block.node_count(); ++id) {
      const Node& node = block.node(id);
      if (node.type == GateType::Input) continue;
      std::vector<NodeId> fanins;
      fanins.reserve(node.fanins.size());
      for (const NodeId f : node.fanins) fanins.push_back(map[f]);
      flat.connect(map[id], std::move(fanins));
    }
    for (const NodeId out : block.primary_outputs()) {
      net.emplace(inst.name + "." + block.node(out).name, map[out]);
    }
  }

  for (const std::string& out : top_outputs_) flat.mark_output(net.at(out));
  flat.validate();
  return flat;
}

}  // namespace spsta::netlist
