/// \file hier_bench_io.hpp
/// Reader/writer for the hierarchical .bench extension (".hbench"): block
/// definitions wrapped in BLOCK/END, then a composition-only top level of
/// INPUT/OUTPUT declarations and INSTANCE statements.
///
///   BLOCK(adder)
///   INPUT(a)
///   INPUT(b)
///   OUTPUT(s)
///   s = XOR(a, b)
///   END
///   INPUT(x0)
///   INPUT(x1)
///   OUTPUT(u1.s)
///   u0 = INSTANCE(adder, x0, x1)
///   u1 = INSTANCE(adder, u0.s, x1)
///
/// Block bodies are plain flat .bench. INSTANCE arguments are positional
/// against the block's INPUT declaration order; instance outputs are
/// referenced as "<instance>.<port>". Parsing is line-streaming with the
/// same per-line byte cap as the flat reader (kMaxBenchLineBytes), so
/// million-gate hierarchy files never buffer more than one block body.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/bench_io.hpp"
#include "netlist/hier.hpp"

namespace spsta::netlist {

/// Parses hierarchical .bench text. Throws BenchParseError with file-global
/// line numbers (block-body errors are re-anchored to the enclosing file).
[[nodiscard]] HierDesign parse_hier_bench(std::string_view text,
                                          std::string name = "hier");

/// Streaming variant: reads line by line with bounded buffering.
[[nodiscard]] HierDesign parse_hier_bench_stream(std::istream& in,
                                                 std::string name = "hier");

/// Writes the hierarchical design back out; a parse_hier_bench round trip
/// reproduces it. Streaming — nothing larger than a line is buffered beyond
/// each block's flat serialization.
void write_hier_bench(const HierDesign& design, std::ostream& out);
[[nodiscard]] std::string write_hier_bench(const HierDesign& design);

}  // namespace spsta::netlist
