#include "netlist/levelize.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace spsta::netlist {

Levelization levelize(const Netlist& design) {
  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.levelize");
  const obs::StageTimer timer(stage_hist);
  const std::size_t n = design.node_count();
  Levelization out;
  out.level.assign(n, 0);
  out.order.reserve(n);

  // Kahn's algorithm over combinational dependences only: DFFs consume
  // their fanin as a timing endpoint, not as a combinational input.
  std::vector<std::size_t> pending(n, 0);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = design.node(id);
    const bool source = !is_combinational(node.type);
    pending[id] = source ? 0 : node.fanins.size();
    if (pending[id] == 0) ready.push_back(id);
  }

  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NodeId id = ready[head];
    out.order.push_back(id);
    for (NodeId fo : design.node(id).fanouts) {
      if (!is_combinational(design.node(fo).type)) continue;  // DFF D pin
      out.level[fo] = std::max(out.level[fo], out.level[id] + 1);
      if (--pending[fo] == 0) ready.push_back(fo);
    }
  }

  if (out.order.size() != n) {
    throw std::logic_error("levelize: combinational cycle detected in netlist '" +
                           design.name() + "'");
  }
  for (std::size_t lvl : out.level) out.depth = std::max(out.depth, lvl);
  return out;
}

std::vector<std::vector<NodeId>> level_groups(const Levelization& lv) {
  std::vector<std::vector<NodeId>> groups(lv.order.empty() ? 0 : lv.depth + 1);
  for (NodeId id : lv.order) groups[lv.level[id]].push_back(id);
  return groups;
}

}  // namespace spsta::netlist
