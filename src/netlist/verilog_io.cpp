#include "netlist/verilog_io.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <optional>
#include <sstream>
#include <vector>

#include "netlist/levelize.hpp"

namespace spsta::netlist {

VerilogParseError::VerilogParseError(std::size_t line, const std::string& message)
    : std::runtime_error("verilog:" + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

struct Token {
  std::string text;
  std::size_t line = 0;
};

/// Strips comments, splits into identifiers and single-char punctuation.
std::vector<Token> tokenize(std::string_view text) {
  // Tolerate a UTF-8 byte-order mark; it is whitespace-equivalent here.
  if (text.size() >= 3 && text[0] == '\xEF' && text[1] == '\xBB' && text[2] == '\xBF') {
    text.remove_prefix(3);
  }
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) throw VerilogParseError(line, "unterminated block comment");
      i += 2;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\\' ||
        c == '$' || c == '.' || c == '[' || c == ']') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_' || text[i] == '\\' || text[i] == '$' ||
                       text[i] == '.' || text[i] == '[' || text[i] == ']')) {
        ++i;
      }
      tokens.push_back({std::string(text.substr(start, i - start)), line});
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';') {
      tokens.push_back({std::string(1, c), line});
      ++i;
      continue;
    }
    throw VerilogParseError(line, std::string("unexpected character '") + c + "'");
  }
  return tokens;
}

struct Cursor {
  const std::vector<Token>& tokens;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= tokens.size(); }
  [[nodiscard]] const Token& peek() const {
    if (done()) throw VerilogParseError(tokens.empty() ? 1 : tokens.back().line,
                                        "unexpected end of input");
    return tokens[pos];
  }
  Token take() {
    const Token t = peek();
    ++pos;
    return t;
  }
  Token expect(std::string_view what) {
    const Token t = take();
    if (t.text != what) {
      throw VerilogParseError(t.line, "expected '" + std::string(what) + "', got '" +
                                          t.text + "'");
    }
    return t;
  }
};

std::optional<GateType> primitive_of(std::string_view word) {
  if (word == "and") return GateType::And;
  if (word == "nand") return GateType::Nand;
  if (word == "or") return GateType::Or;
  if (word == "nor") return GateType::Nor;
  if (word == "xor") return GateType::Xor;
  if (word == "xnor") return GateType::Xnor;
  if (word == "not") return GateType::Not;
  if (word == "buf") return GateType::Buf;
  if (word == "dff" || word == "DFF") return GateType::Dff;
  return std::nullopt;
}

bool is_identifier(const std::string& s) {
  return !s.empty() && s != "(" && s != ")" && s != "," && s != ";";
}

/// Comma-separated identifier list terminated by ';'.
std::vector<Token> identifier_list(Cursor& cur) {
  std::vector<Token> names;
  while (true) {
    const Token t = cur.take();
    if (!is_identifier(t.text)) {
      throw VerilogParseError(t.line, "expected identifier, got '" + t.text + "'");
    }
    names.push_back(t);
    const Token sep = cur.take();
    if (sep.text == ";") break;
    if (sep.text != ",") {
      throw VerilogParseError(sep.line, "expected ',' or ';', got '" + sep.text + "'");
    }
  }
  return names;
}

}  // namespace

Netlist parse_verilog(std::string_view text) {
  const std::vector<Token> tokens = tokenize(text);
  if (tokens.empty()) {
    throw VerilogParseError(1, "empty input: expected a module definition");
  }
  Cursor cur{tokens};

  cur.expect("module");
  const Token name = cur.take();
  if (!is_identifier(name.text)) {
    throw VerilogParseError(name.line, "expected module name");
  }

  // Port list (names only; directions come from input/output declarations).
  cur.expect("(");
  while (cur.peek().text != ")") {
    const Token t = cur.take();
    if (t.text != "," && !is_identifier(t.text)) {
      throw VerilogParseError(t.line, "bad port list token '" + t.text + "'");
    }
  }
  cur.expect(")");
  cur.expect(";");

  struct Instance {
    GateType type;
    std::size_t line;
    std::vector<std::string> ports;  // output first
  };
  std::vector<Token> inputs, outputs, wires;
  std::vector<Instance> instances;

  while (true) {
    const Token head = cur.take();
    if (head.text == "endmodule") break;
    if (head.text == "input") {
      const auto list = identifier_list(cur);
      inputs.insert(inputs.end(), list.begin(), list.end());
      continue;
    }
    if (head.text == "output") {
      const auto list = identifier_list(cur);
      outputs.insert(outputs.end(), list.begin(), list.end());
      continue;
    }
    if (head.text == "wire" || head.text == "reg") {
      const auto list = identifier_list(cur);
      wires.insert(wires.end(), list.begin(), list.end());
      continue;
    }
    const auto type = primitive_of(head.text);
    if (!type) {
      throw VerilogParseError(head.line, "unknown primitive or keyword '" +
                                             head.text + "'");
    }
    // Optional instance name.
    Token next = cur.take();
    if (next.text != "(") {
      if (!is_identifier(next.text)) {
        throw VerilogParseError(next.line, "expected instance name or '('");
      }
      cur.expect("(");
    }
    Instance inst;
    inst.type = *type;
    inst.line = head.line;
    while (true) {
      const Token port = cur.take();
      if (!is_identifier(port.text)) {
        throw VerilogParseError(port.line, "expected port name, got '" + port.text + "'");
      }
      inst.ports.push_back(port.text);
      const Token sep = cur.take();
      if (sep.text == ")") break;
      if (sep.text != ",") {
        throw VerilogParseError(sep.line, "expected ',' or ')'");
      }
    }
    cur.expect(";");
    if (inst.ports.size() < 2) {
      throw VerilogParseError(inst.line, "primitive needs an output and inputs");
    }
    instances.push_back(std::move(inst));
  }

  // Build the netlist: declare inputs and instance outputs, then connect.
  Netlist design(name.text);
  for (const Token& t : inputs) {
    if (design.find(t.text) != kInvalidNode) {
      throw VerilogParseError(t.line, "signal '" + t.text + "' declared twice");
    }
    design.add_input(t.text);
  }
  for (const Instance& inst : instances) {
    if (design.find(inst.ports[0]) != kInvalidNode) {
      throw VerilogParseError(inst.line,
                              "signal '" + inst.ports[0] + "' driven twice");
    }
    design.declare(inst.type, inst.ports[0]);
  }
  for (const Instance& inst : instances) {
    std::vector<NodeId> fanins;
    for (std::size_t i = 1; i < inst.ports.size(); ++i) {
      const NodeId f = design.find(inst.ports[i]);
      if (f == kInvalidNode) {
        throw VerilogParseError(inst.line, "undriven signal '" + inst.ports[i] + "'");
      }
      fanins.push_back(f);
    }
    try {
      design.connect(design.find(inst.ports[0]), std::move(fanins));
    } catch (const std::invalid_argument& e) {
      throw VerilogParseError(inst.line, e.what());
    }
  }
  for (const Token& t : outputs) {
    const NodeId id = design.find(t.text);
    if (id == kInvalidNode) {
      throw VerilogParseError(t.line, "output '" + t.text + "' is undriven");
    }
    design.mark_output(id);
  }
  design.validate();
  return design;
}

Netlist parse_verilog_stream(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_verilog(buffer.str());
}

std::string write_verilog(const Netlist& design) {
  std::ostringstream out;
  out << "// " << design.name() << " — written by spsta\n";
  out << "module " << (design.name().empty() ? "top" : design.name()) << " (";
  bool first = true;
  for (NodeId id : design.primary_inputs()) {
    out << (first ? "" : ", ") << design.node(id).name;
    first = false;
  }
  for (NodeId id : design.primary_outputs()) {
    out << (first ? "" : ", ") << design.node(id).name;
    first = false;
  }
  out << ");\n";

  for (NodeId id : design.primary_inputs()) {
    out << "  input " << design.node(id).name << ";\n";
  }
  for (NodeId id : design.primary_outputs()) {
    out << "  output " << design.node(id).name << ";\n";
  }
  // Internal nets.
  for (NodeId id = 0; id < design.node_count(); ++id) {
    const Node& n = design.node(id);
    if (n.type == GateType::Input) continue;
    const auto& outs = design.primary_outputs();
    if (std::find(outs.begin(), outs.end(), id) != outs.end()) continue;
    out << "  wire " << n.name << ";\n";
  }

  const Levelization lv = levelize(design);
  std::size_t index = 0;
  for (NodeId id : lv.order) {
    const Node& n = design.node(id);
    if (n.type == GateType::Input) continue;
    std::string prim;
    switch (n.type) {
      case GateType::And: prim = "and"; break;
      case GateType::Nand: prim = "nand"; break;
      case GateType::Or: prim = "or"; break;
      case GateType::Nor: prim = "nor"; break;
      case GateType::Xor: prim = "xor"; break;
      case GateType::Xnor: prim = "xnor"; break;
      case GateType::Not: prim = "not"; break;
      case GateType::Buf: prim = "buf"; break;
      case GateType::Dff: prim = "dff"; break;
      case GateType::Const0:
      case GateType::Const1:
        // Constants as buffers of themselves are not expressible in this
        // subset; emit a supply-style comment and a buf from nothing is
        // illegal, so reject.
        throw std::invalid_argument("write_verilog: constants unsupported");
      case GateType::Input: continue;
    }
    out << "  " << prim << " g" << index++ << " (" << n.name;
    for (NodeId f : n.fanins) out << ", " << design.node(f).name;
    out << ");\n";
  }
  out << "endmodule\n";
  return out.str();
}

}  // namespace spsta::netlist
