#include "netlist/four_value.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace spsta::netlist {

std::string_view to_string(FourValue v) noexcept {
  switch (v) {
    case FourValue::Zero: return "0";
    case FourValue::One: return "1";
    case FourValue::Rise: return "r";
    case FourValue::Fall: return "f";
  }
  return "?";
}

bool initial_value(FourValue v) noexcept {
  return v == FourValue::One || v == FourValue::Fall;
}

bool final_value(FourValue v) noexcept {
  return v == FourValue::One || v == FourValue::Rise;
}

FourValue from_initial_final(bool initial, bool final_) noexcept {
  if (initial) return final_ ? FourValue::One : FourValue::Fall;
  return final_ ? FourValue::Rise : FourValue::Zero;
}

FourValue eval_four_value(GateType type, std::span<const FourValue> inputs) noexcept {
  // Evaluate the Boolean gate on the initial and on the final input values;
  // equal results collapse to a constant (glitch filtering).
  constexpr std::size_t kStackFanin = 64;
  bool ini_arr[kStackFanin];
  bool fin_arr[kStackFanin];
  const std::size_t n = inputs.size();
  bool* ini = ini_arr;
  bool* fin = fin_arr;
  std::vector<std::uint8_t> big;  // only for gates wider than kStackFanin
  if (n > kStackFanin) {
    static_assert(sizeof(bool) == 1);
    big.resize(2 * n);
    ini = reinterpret_cast<bool*>(big.data());
    fin = reinterpret_cast<bool*>(big.data() + n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ini[i] = initial_value(inputs[i]);
    fin[i] = final_value(inputs[i]);
  }
  const bool out_initial = eval_gate(type, std::span<const bool>(ini, n));
  const bool out_final = eval_gate(type, std::span<const bool>(fin, n));
  return from_initial_final(out_initial, out_final);
}

double FourValueProbs::prob(FourValue v) const noexcept {
  switch (v) {
    case FourValue::Zero: return p0;
    case FourValue::One: return p1;
    case FourValue::Rise: return pr;
    case FourValue::Fall: return pf;
  }
  return 0.0;
}

bool FourValueProbs::is_valid(double eps) const noexcept {
  const auto in_range = [eps](double p) { return p >= -eps && p <= 1.0 + eps; };
  return in_range(p0) && in_range(p1) && in_range(pr) && in_range(pf) &&
         std::abs(p0 + p1 + pr + pf - 1.0) <= eps;
}

FourValueProbs FourValueProbs::normalized() const noexcept {
  FourValueProbs out{std::max(p0, 0.0), std::max(p1, 0.0), std::max(pr, 0.0),
                     std::max(pf, 0.0)};
  const double sum = out.p0 + out.p1 + out.pr + out.pf;
  if (sum <= 0.0) return {0.25, 0.25, 0.25, 0.25};
  out.p0 /= sum;
  out.p1 /= sum;
  out.pr /= sum;
  out.pf /= sum;
  return out;
}

SourceStats scenario_I() noexcept {
  return SourceStats{{0.25, 0.25, 0.25, 0.25}, {0.0, 1.0}, {0.0, 1.0}};
}

SourceStats scenario_II() noexcept {
  return SourceStats{{0.75, 0.15, 0.02, 0.08}, {0.0, 1.0}, {0.0, 1.0}};
}

}  // namespace spsta::netlist
