/// \file bench_io.hpp
/// Reader and writer for the ISCAS'89 .bench netlist format:
///
///   # comment
///   INPUT(G0)
///   OUTPUT(G17)
///   G10 = DFF(G14)
///   G11 = NAND(G0, G10)
///
/// Forward references are allowed (a gate may use a signal defined later),
/// as in the published benchmark files.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Error thrown by the parser; carries the 1-based line number.
class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(std::size_t line, const std::string& message);
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses .bench text. \p name becomes the netlist name.
/// Throws BenchParseError on malformed input (unknown gate type, duplicate
/// definition, undefined signal, bad syntax).
[[nodiscard]] Netlist parse_bench(std::string_view text, std::string name = "bench");

/// Parses a .bench file from a stream.
[[nodiscard]] Netlist parse_bench_stream(std::istream& in, std::string name = "bench");

/// Serializes \p design to .bench text (INPUTs, OUTPUTs, then gates in
/// topological order). parse_bench(write_bench(n)) reproduces the design.
[[nodiscard]] std::string write_bench(const Netlist& design);

}  // namespace spsta::netlist
