/// \file bench_io.hpp
/// Reader and writer for the ISCAS'89 .bench netlist format:
///
///   # comment
///   INPUT(G0)
///   OUTPUT(G17)
///   G10 = DFF(G14)
///   G11 = NAND(G0, G10)
///
/// Forward references are allowed (a gate may use a signal defined later),
/// as in the published benchmark files.
///
/// Both entry points parse line by line. The stream reader never slurps the
/// file into one std::string: it buffers at most one line (capped at
/// kMaxBenchLineBytes), so million-gate files parse in memory proportional
/// to the netlist, not to transient I/O copies, and a pathological
/// newline-free file fails fast with a structured error instead of an OOM.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Error thrown by the parser; carries the 1-based line number.
class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(std::size_t line, const std::string& message);
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Maximum accepted length of a single .bench line, matching the service
/// protocol's 8 MiB request-line cap (service/protocol kMaxRequestBytes).
/// Longer lines raise BenchParseError — streaming readers stop buffering at
/// the cap rather than growing without bound.
inline constexpr std::size_t kMaxBenchLineBytes = 8u << 20;

/// Parses .bench text. \p name becomes the netlist name.
/// Throws BenchParseError on malformed input (unknown gate type, duplicate
/// definition, undefined signal, bad syntax, over-long line).
[[nodiscard]] Netlist parse_bench(std::string_view text, std::string name = "bench");

/// Parses a .bench file from a stream, line by line with bounded buffering
/// (see file comment). Same error contract as parse_bench.
[[nodiscard]] Netlist parse_bench_stream(std::istream& in, std::string name = "bench");

/// Serializes \p design to .bench text (INPUTs, OUTPUTs, then gates in
/// topological order). parse_bench(write_bench(n)) reproduces the design.
[[nodiscard]] std::string write_bench(const Netlist& design);

/// Streaming variant: writes directly to \p out without building the full
/// text in memory — the writer half of the million-gate I/O path.
void write_bench(const Netlist& design, std::ostream& out);

/// Reads one newline-terminated line from \p in (terminator not stored).
/// Returns false at end of stream with nothing read. Buffers at most
/// kMaxBenchLineBytes: an over-long line throws BenchParseError(\p line_no)
/// instead of growing the buffer. Shared by the flat and hierarchical
/// parsers; exposed for any line-oriented netlist reader.
bool read_bench_line(std::istream& in, std::string& line, std::size_t line_no);

namespace detail {
/// Statement-lexing helpers shared between the flat parser and the
/// hierarchical parser in hier_bench_io.cpp. Not a stable public API.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;
[[nodiscard]] std::string_view strip_utf8_bom(std::string_view s) noexcept;
/// Parses "HEAD(arg, arg, ...)" returning {HEAD, args}; throws
/// BenchParseError(\p line) on malformed syntax.
[[nodiscard]] std::pair<std::string, std::vector<std::string>> parse_call(
    std::string_view s, std::size_t line);
}  // namespace detail

}  // namespace spsta::netlist
