/// \file levelize.hpp
/// Topological ordering and levelization of the combinational core of a
/// netlist. Every propagation engine (signal probability, SSTA, SPSTA,
/// Monte Carlo) walks nodes in this order — the "single netlist traversal"
/// the paper's complexity claims refer to.

#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Result of levelizing a netlist.
struct Levelization {
  /// All nodes in a topological order: every node appears after its fanins
  /// (DFF and Input nodes are sources and appear first).
  std::vector<NodeId> order;
  /// level[id]: 0 for timing sources and constants; 1 + max fanin level
  /// for gates.
  std::vector<std::size_t> level;
  /// Largest level in the design (combinational depth in gate counts).
  std::size_t depth = 0;
};

/// Levelizes \p design. DFF nodes are treated as sources (their D fanin is
/// an endpoint, not a combinational dependence), which breaks sequential
/// loops. Throws std::logic_error if a *combinational* cycle remains.
[[nodiscard]] Levelization levelize(const Netlist& design);

/// Nodes grouped by level: result[L] holds every node of level L, in
/// topological-order within the group. A node's fanins always live in
/// strictly lower groups, so nodes within one group are mutually
/// independent — the unit of parallel gate evaluation.
[[nodiscard]] std::vector<std::vector<NodeId>> level_groups(const Levelization& lv);

}  // namespace spsta::netlist
