#include "netlist/dot_export.hpp"

#include <algorithm>
#include <sstream>

namespace spsta::netlist {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_dot(const Netlist& design, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph \"" << escape(design.name()) << "\" {\n";
  if (options.left_to_right) out << "  rankdir=LR;\n";
  out << "  node [fontsize=10];\n";

  const auto highlighted = [&](NodeId id) {
    return std::find(options.highlight.begin(), options.highlight.end(), id) !=
           options.highlight.end();
  };

  for (NodeId id = 0; id < design.node_count(); ++id) {
    const Node& n = design.node(id);
    out << "  n" << id << " [label=\"" << escape(n.name);
    if (n.type != GateType::Input) {
      out << "\\n" << to_string(n.type);
    }
    if (options.annotate) {
      const std::string extra = options.annotate(id);
      if (!extra.empty()) out << "\\n" << escape(extra);
    }
    out << "\"";
    switch (n.type) {
      case GateType::Input: out << ", shape=box"; break;
      case GateType::Dff: out << ", shape=doublecircle"; break;
      default: out << ", shape=ellipse"; break;
    }
    if (highlighted(id)) out << ", color=red, penwidth=2";
    const auto& outs = design.primary_outputs();
    if (std::find(outs.begin(), outs.end(), id) != outs.end()) {
      out << ", peripheries=2";
    }
    out << "];\n";
  }
  for (NodeId id = 0; id < design.node_count(); ++id) {
    for (NodeId f : design.node(id).fanins) {
      out << "  n" << f << " -> n" << id;
      if (highlighted(id) && highlighted(f)) out << " [color=red, penwidth=2]";
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace spsta::netlist
