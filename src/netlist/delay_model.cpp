#include "netlist/delay_model.hpp"

#include <algorithm>

namespace spsta::netlist {

DelayModel DelayModel::unit(const Netlist& design) {
  DelayModel m(design);
  for (NodeId id = 0; id < design.node_count(); ++id) {
    const GateType t = design.node(id).type;
    if (is_combinational(t) && t != GateType::Const0 && t != GateType::Const1) {
      m.delay_[id] = {1.0, 0.0};
    }
  }
  return m;
}

DelayModel DelayModel::gaussian(const Netlist& design, double mean, double stddev) {
  DelayModel m(design);
  for (NodeId id = 0; id < design.node_count(); ++id) {
    const GateType t = design.node(id).type;
    if (is_combinational(t) && t != GateType::Const0 && t != GateType::Const1) {
      m.delay_[id] = {mean, stddev * stddev};
    }
  }
  return m;
}

std::vector<double> DelayModel::means() const {
  std::vector<double> out(delay_.size());
  for (std::size_t i = 0; i < delay_.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    out[i] = std::max(delay(id, true).mean, delay(id, false).mean);
  }
  return out;
}

}  // namespace spsta::netlist
