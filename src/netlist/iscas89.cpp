#include "netlist/iscas89.hpp"

#include <array>
#include <stdexcept>

#include "netlist/bench_io.hpp"

namespace spsta::netlist {

std::string_view s27_bench_text() noexcept {
  // The ISCAS'89 s27 benchmark (Brglez, Bryan, Kozminski 1989), public.
  return R"(# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";
}

Netlist make_s27() { return parse_bench(s27_bench_text(), "s27"); }

namespace {

struct SuiteEntry {
  std::string_view name;
  std::size_t pis, pos, dffs, gates, depth;
  std::uint64_t seed;
};

// PI/PO/DFF/gate counts follow the published ISCAS'89 statistics; depths
// are tuned so unit-delay critical paths land near the paper's Table 2
// SSTA means (s208 ~7-8, ..., s1196 ~14).
constexpr std::array<SuiteEntry, 9> kSuite{{
    {"s208", 10, 1, 8, 96, 8, 0x5208},
    {"s298", 3, 6, 14, 119, 6, 0x5298},
    {"s344", 9, 11, 15, 160, 9, 0x5344},
    {"s349", 9, 11, 15, 161, 9, 0x5349},
    {"s382", 3, 6, 21, 158, 7, 0x5382},
    {"s386", 7, 7, 6, 159, 9, 0x5386},
    {"s526", 3, 6, 21, 193, 6, 0x5526},
    {"s1196", 14, 14, 18, 529, 14, 0x51196},
    {"s1238", 14, 14, 18, 508, 13, 0x51238},
}};

constexpr std::array<std::string_view, 9> kNames{
    "s208", "s298", "s344", "s349", "s382", "s386", "s526", "s1196", "s1238"};

}  // namespace

std::span<const std::string_view> paper_circuit_names() noexcept { return kNames; }

GeneratorSpec paper_circuit_spec(std::string_view name) {
  for (const SuiteEntry& e : kSuite) {
    if (e.name == name) {
      GeneratorSpec spec;
      spec.name = std::string(name);
      spec.num_inputs = e.pis;
      spec.num_outputs = e.pos;
      spec.num_dffs = e.dffs;
      spec.num_gates = e.gates;
      spec.target_depth = e.depth;
      spec.seed = e.seed;
      // The published netlists are inverter/buffer-rich (roughly a third
      // of ISCAS'89 gates are NOT/BUFF), which lets transitions survive to
      // the deep endpoints; mirror that so critical-path transition
      // probabilities are in the paper's regime rather than ~0.
      spec.weight_and = 2.0;
      spec.weight_nand = 2.0;
      spec.weight_or = 1.5;
      spec.weight_nor = 1.5;
      spec.weight_not = 3.5;
      spec.weight_buf = 1.5;
      spec.max_fanin = 3;
      return spec;
    }
  }
  throw std::invalid_argument("paper_circuit_spec: unknown circuit '" +
                              std::string(name) + "'");
}

Netlist make_paper_circuit(std::string_view name) {
  if (name == "s27") return make_s27();
  return generate_circuit(paper_circuit_spec(name));
}

}  // namespace spsta::netlist
