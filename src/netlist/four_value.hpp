/// \file four_value.hpp
/// The paper's four-value logic (Sec. 3.3): each net in a clock cycle is
/// logic zero '0', logic one '1', a rising transition 'r', or a falling
/// transition 'f'.
///
/// A four-value is equivalently a pair (initial value, final value):
///   0 = (0,0), 1 = (1,1), r = (0,1), f = (1,0).
/// Gate evaluation applies the Boolean gate to the initial values and to
/// the final values; when both agree the output is a constant — which is
/// exactly the paper's glitch filtering ("a rising and a falling signal
/// transition for an AND gate give logic zero at the output") and
/// reproduces Table 1 for every gate type.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "netlist/gate_type.hpp"
#include "stats/gaussian.hpp"

namespace spsta::netlist {

/// The four logic values of a net over one clock cycle.
enum class FourValue : std::uint8_t { Zero, One, Rise, Fall };

/// "0", "1", "r", "f".
[[nodiscard]] std::string_view to_string(FourValue v) noexcept;

/// Initial Boolean value of the cycle (0/r -> 0, 1/f -> 1).
[[nodiscard]] bool initial_value(FourValue v) noexcept;
/// Final Boolean value of the cycle (0/f -> 0, 1/r -> 1).
[[nodiscard]] bool final_value(FourValue v) noexcept;
/// The four-value with the given initial/final Boolean pair.
[[nodiscard]] FourValue from_initial_final(bool initial, bool final_) noexcept;

/// Glitch-filtered four-value gate evaluation (reproduces paper Table 1).
[[nodiscard]] FourValue eval_four_value(GateType type, std::span<const FourValue> inputs) noexcept;

/// Per-cycle occurrence probabilities of the four values on one net
/// (paper Sec. 3.3). Always sums to 1 for a valid state.
struct FourValueProbs {
  double p0 = 0.25;
  double p1 = 0.25;
  double pr = 0.25;
  double pf = 0.25;

  /// Classical signal probability P(final value = 1) = p1 + pr. With
  /// cycle-stationary inputs this equals p1 + pf as well; for general
  /// inputs the *final* value is the convention used throughout.
  [[nodiscard]] double signal_probability() const noexcept { return p1 + pr; }
  /// Transition (toggling) probability per cycle = pr + pf.
  [[nodiscard]] double toggle_probability() const noexcept { return pr + pf; }
  /// Cycle-averaged probability of logic one, p1 + (pr + pf)/2 — the
  /// convention behind the paper's "0.2 signal probability" for its
  /// scenario II (15% one, 75% zero, 2% rise, 8% fall).
  [[nodiscard]] double average_one() const noexcept { return p1 + 0.5 * (pr + pf); }
  /// P(initial value = 1) = p1 + pf.
  [[nodiscard]] double initial_one() const noexcept { return p1 + pf; }
  /// P(final value = 1) = p1 + pr.
  [[nodiscard]] double final_one() const noexcept { return p1 + pr; }
  /// Probability of the given value.
  [[nodiscard]] double prob(FourValue v) const noexcept;

  /// True when all probabilities are within [-eps, 1+eps] and the sum is
  /// within eps of 1.
  [[nodiscard]] bool is_valid(double eps = 1e-9) const noexcept;
  /// Clamps negatives to 0 and rescales to unit sum.
  [[nodiscard]] FourValueProbs normalized() const noexcept;

  friend bool operator==(const FourValueProbs&, const FourValueProbs&) = default;
};

/// Input statistics for one timing source: value probabilities plus the
/// arrival-time distributions of its rising and falling transitions.
struct SourceStats {
  FourValueProbs probs;
  stats::Gaussian rise_arrival{0.0, 1.0};
  stats::Gaussian fall_arrival{0.0, 1.0};
};

/// The paper's experiment scenarios (Sec. 4): uniform statistics for every
/// primary input and flip-flop output, standard-normal transition arrivals.
///
/// Scenario I : p0=p1=pr=pf=0.25 (0.5 signal probability, 0.5 toggle rate).
/// Scenario II: p1=15%, p0=75%, pr=2%, pf=8% (0.2 signal probability,
///              0.1 toggle rate).
[[nodiscard]] SourceStats scenario_I() noexcept;
[[nodiscard]] SourceStats scenario_II() noexcept;

}  // namespace spsta::netlist
