#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace spsta::netlist {

NodeId Netlist::declare(GateType type, std::string_view name) {
  if (name.empty()) throw std::invalid_argument("Netlist::declare: empty node name");
  if (by_name_.contains(std::string(name))) {
    throw std::invalid_argument("Netlist::declare: duplicate node name '" +
                                std::string(name) + "'");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::string(name), type, {}, {}});
  by_name_.emplace(std::string(name), id);
  if (type == GateType::Input) inputs_.push_back(id);
  if (type == GateType::Dff) dffs_.push_back(id);
  return id;
}

void Netlist::connect(NodeId node, std::vector<NodeId> fanins) {
  if (node >= nodes_.size()) throw std::invalid_argument("Netlist::connect: bad node id");
  for (NodeId f : fanins) {
    if (f >= nodes_.size()) throw std::invalid_argument("Netlist::connect: bad fanin id");
  }
  Node& n = nodes_[node];
  const ArityRange ar = arity_range(n.type);
  if (fanins.size() < ar.min || fanins.size() > ar.max) {
    throw std::invalid_argument("Netlist::connect: illegal fanin count for " +
                                std::string(to_string(n.type)) + " node '" + n.name + "'");
  }
  // Detach previous fanouts, then attach the new ones.
  for (NodeId f : n.fanins) {
    auto& fo = nodes_[f].fanouts;
    fo.erase(std::remove(fo.begin(), fo.end(), node), fo.end());
  }
  n.fanins = std::move(fanins);
  for (NodeId f : n.fanins) nodes_[f].fanouts.push_back(node);
}

NodeId Netlist::add_gate(GateType type, std::string_view name, std::vector<NodeId> fanins) {
  // Pre-validate so a failed connect does not leave a dangling declaration.
  const ArityRange ar = arity_range(type);
  if (fanins.size() < ar.min || fanins.size() > ar.max) {
    throw std::invalid_argument("Netlist::add_gate: illegal fanin count for " +
                                std::string(to_string(type)) + " node '" +
                                std::string(name) + "'");
  }
  for (NodeId f : fanins) {
    if (f >= nodes_.size()) {
      throw std::invalid_argument("Netlist::add_gate: bad fanin id");
    }
  }
  const NodeId id = declare(type, name);
  connect(id, std::move(fanins));
  return id;
}

NodeId Netlist::add_input(std::string_view name) {
  return declare(GateType::Input, name);
}

void Netlist::mark_output(NodeId node) {
  if (node >= nodes_.size()) throw std::invalid_argument("Netlist::mark_output: bad id");
  if (std::find(outputs_.begin(), outputs_.end(), node) == outputs_.end()) {
    outputs_.push_back(node);
  }
}

NodeId Netlist::find(std::string_view name) const noexcept {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidNode : it->second;
}

std::vector<NodeId> Netlist::timing_sources() const {
  std::vector<NodeId> out = inputs_;
  out.insert(out.end(), dffs_.begin(), dffs_.end());
  return out;
}

std::vector<NodeId> Netlist::timing_endpoints() const {
  std::vector<NodeId> out = outputs_;
  for (NodeId d : dffs_) {
    const Node& n = nodes_[d];
    if (!n.fanins.empty()) out.push_back(n.fanins[0]);
  }
  // A node may be both a PO and a DFF input; deduplicate, preserving order.
  std::vector<NodeId> unique;
  for (NodeId id : out) {
    if (std::find(unique.begin(), unique.end(), id) == unique.end()) unique.push_back(id);
  }
  return unique;
}

bool Netlist::is_timing_source(NodeId id) const {
  const GateType t = node(id).type;
  return t == GateType::Input || t == GateType::Dff;
}

std::size_t Netlist::gate_count() const noexcept {
  std::size_t c = 0;
  for (const Node& n : nodes_) {
    if (is_combinational(n.type)) ++c;
  }
  return c;
}

std::vector<std::size_t> Netlist::type_histogram() const {
  std::vector<std::size_t> h(static_cast<std::size_t>(GateType::Dff) + 1, 0);
  for (const Node& n : nodes_) ++h[static_cast<std::size_t>(n.type)];
  return h;
}

void Netlist::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    const ArityRange ar = arity_range(n.type);
    if (n.fanins.size() < ar.min || n.fanins.size() > ar.max) {
      throw std::logic_error("Netlist::validate: node '" + n.name + "' (" +
                             std::string(to_string(n.type)) + ") has " +
                             std::to_string(n.fanins.size()) + " fanins");
    }
    for (NodeId f : n.fanins) {
      if (f >= nodes_.size()) {
        throw std::logic_error("Netlist::validate: node '" + n.name + "' has invalid fanin");
      }
    }
  }
  for (NodeId o : outputs_) {
    if (o >= nodes_.size()) throw std::logic_error("Netlist::validate: invalid output id");
  }
}

}  // namespace spsta::netlist
