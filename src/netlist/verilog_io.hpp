/// \file verilog_io.hpp
/// Reader and writer for gate-level structural Verilog, the subset
/// produced by academic synthesis flows for the ISCAS benchmarks:
///
///   module s27 (G0, G1, G17);
///     input G0, G1;
///     output G17;
///     wire G8, G9;
///     nand g0 (G9, G16, G15);   // output port first, then inputs
///     not  g1 (G17, G11);
///     dff  ff0 (G5, G10);       // (Q, D)
///   endmodule
///
/// Primitives: and, nand, or, nor, xor, xnor, not, buf, dff. Line (`//`)
/// and block (`/* */`) comments are handled; instance names are optional.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Error thrown by the Verilog parser; carries the 1-based line number.
class VerilogParseError : public std::runtime_error {
 public:
  VerilogParseError(std::size_t line, const std::string& message);
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses one structural module. The netlist name is the module name.
[[nodiscard]] Netlist parse_verilog(std::string_view text);

/// Parses from a stream.
[[nodiscard]] Netlist parse_verilog_stream(std::istream& in);

/// Serializes \p design as one structural module.
/// parse_verilog(write_verilog(n)) reproduces the design.
[[nodiscard]] std::string write_verilog(const Netlist& design);

}  // namespace spsta::netlist
