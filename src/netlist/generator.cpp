#include "netlist/generator.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace spsta::netlist {

namespace {

GateType pick_type(stats::Xoshiro256& rng, const GeneratorSpec& spec) {
  const std::array<double, 6> weights{spec.weight_and, spec.weight_nand, spec.weight_or,
                                      spec.weight_nor, spec.weight_not, spec.weight_buf};
  static constexpr std::array<GateType, 6> kinds{GateType::And,  GateType::Nand,
                                                 GateType::Or,   GateType::Nor,
                                                 GateType::Not,  GateType::Buf};
  return kinds[rng.categorical(weights)];
}

}  // namespace

Netlist generate_circuit(const GeneratorSpec& spec) {
  if (spec.num_inputs + spec.num_dffs == 0) {
    throw std::invalid_argument("generate_circuit: need at least one timing source");
  }
  if (spec.num_gates == 0 && (spec.num_outputs > 0 || spec.num_dffs > 0)) {
    throw std::invalid_argument("generate_circuit: outputs/DFFs require gates");
  }
  if (spec.max_fanin < 2) {
    throw std::invalid_argument("generate_circuit: max_fanin must be >= 2");
  }

  stats::Xoshiro256 rng(spec.seed);
  Netlist design(spec.name);

  // Timing sources: primary inputs and DFF outputs (D pins wired last).
  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    sources.push_back(design.add_input("pi" + std::to_string(i)));
  }
  std::vector<NodeId> dffs;
  for (std::size_t i = 0; i < spec.num_dffs; ++i) {
    const NodeId q = design.declare(GateType::Dff, "ff" + std::to_string(i));
    dffs.push_back(q);
    sources.push_back(q);
  }

  const std::size_t depth = std::max<std::size_t>(
      1, std::min(spec.target_depth, std::max<std::size_t>(spec.num_gates, 1)));

  // Distribute gates over levels 1..depth: one guaranteed per level, the
  // remainder spread uniformly at random.
  std::vector<std::size_t> gates_at_level(depth + 1, 0);
  for (std::size_t l = 1; l <= depth && l <= spec.num_gates; ++l) gates_at_level[l] = 1;
  std::size_t assigned = std::min(depth, spec.num_gates);
  while (assigned < spec.num_gates) {
    const std::size_t l = 1 + static_cast<std::size_t>(rng.uniform_index(depth));
    ++gates_at_level[l];
    ++assigned;
  }

  // by_level[l]: node ids whose level is exactly l (level 0 = sources).
  std::vector<std::vector<NodeId>> by_level(depth + 1);
  by_level[0] = sources;
  std::vector<std::size_t> fanout_load(design.node_count() + spec.num_gates, 0);

  // Picks a fanin from levels [0, below], biased toward the top level and
  // toward lightly loaded nodes so most gates end up observable.
  const auto pick_fanin = [&](std::size_t below) -> NodeId {
    std::size_t lvl = below;
    while (lvl > 0 && rng.uniform() < 0.45) --lvl;
    // Walk down until a non-empty level is found (level 0 is never empty).
    while (by_level[lvl].empty()) --lvl;
    const auto& pool = by_level[lvl];
    NodeId pick = pool[rng.uniform_index(pool.size())];
    // One retry preferring an unused node keeps dangling logic rare.
    if (fanout_load[pick] > 0) {
      const NodeId alt = pool[rng.uniform_index(pool.size())];
      if (fanout_load[alt] < fanout_load[pick]) pick = alt;
    }
    return pick;
  };

  std::size_t gate_index = 0;
  for (std::size_t l = 1; l <= depth; ++l) {
    for (std::size_t g = 0; g < gates_at_level[l]; ++g) {
      GateType type = pick_type(rng, spec);
      std::size_t fanin_count;
      if (type == GateType::Not || type == GateType::Buf) {
        fanin_count = 1;
      } else {
        fanin_count = 2;
        while (fanin_count < spec.max_fanin && rng.uniform() < 0.25) ++fanin_count;
      }
      std::vector<NodeId> fanins;
      // First fanin comes from level l-1 so the gate's level is exactly l.
      std::size_t prev = l - 1;
      while (by_level[prev].empty()) --prev;
      fanins.push_back(by_level[prev][rng.uniform_index(by_level[prev].size())]);
      while (fanins.size() < fanin_count) {
        const NodeId f = pick_fanin(l - 1);
        if (std::find(fanins.begin(), fanins.end(), f) == fanins.end()) {
          fanins.push_back(f);
        } else if (by_level[l - 1].size() + (l >= 2 ? by_level[l - 2].size() : 0) <= 1) {
          break;  // tiny circuits: give up on distinct fanins
        }
      }
      // (two-step concat avoids a GCC-12 -Wrestrict false positive)
      std::string gate_name = "g";
      gate_name += std::to_string(gate_index++);
      const NodeId id = design.add_gate(type, gate_name, fanins);
      for (NodeId f : fanins) ++fanout_load[f];
      if (id >= fanout_load.size()) fanout_load.resize(id + 1, 0);
      by_level[l].push_back(id);
    }
  }

  // Endpoint selection pool: gates, deepest levels first.
  std::vector<NodeId> deep_first;
  for (std::size_t l = depth; l >= 1; --l) {
    deep_first.insert(deep_first.end(), by_level[l].begin(), by_level[l].end());
    if (l == 1) break;
  }
  if (deep_first.empty()) deep_first = sources;

  // Primary outputs: the deepest gates, then random ones if more needed.
  for (std::size_t i = 0; i < spec.num_outputs; ++i) {
    const NodeId pick = i < deep_first.size()
                            ? deep_first[i]
                            : deep_first[rng.uniform_index(deep_first.size())];
    design.mark_output(pick);
    ++fanout_load[pick];
  }
  // DFF D pins: random gates biased toward unconsumed deep logic.
  for (NodeId q : dffs) {
    NodeId d = deep_first[rng.uniform_index(deep_first.size())];
    for (int attempt = 0; attempt < 4 && fanout_load[d] > 0; ++attempt) {
      d = deep_first[rng.uniform_index(deep_first.size())];
    }
    design.connect(q, {d});
    ++fanout_load[d];
  }

  design.validate();
  return design;
}

}  // namespace spsta::netlist
