#include "netlist/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace spsta::netlist {

namespace {

GateType pick_type(stats::Xoshiro256& rng, const GeneratorSpec& spec) {
  const std::array<double, 8> weights{spec.weight_and, spec.weight_nand,
                                      spec.weight_or,  spec.weight_nor,
                                      spec.weight_not, spec.weight_buf,
                                      spec.weight_xor, spec.weight_xnor};
  static constexpr std::array<GateType, 8> kinds{
      GateType::And, GateType::Nand, GateType::Or,  GateType::Nor,
      GateType::Not, GateType::Buf,  GateType::Xor, GateType::Xnor};
  return kinds[rng.categorical(weights)];
}

}  // namespace

Netlist generate_circuit(const GeneratorSpec& spec) {
  if (spec.num_inputs + spec.num_dffs == 0) {
    throw std::invalid_argument("generate_circuit: need at least one timing source");
  }
  if (spec.num_gates == 0 && (spec.num_outputs > 0 || spec.num_dffs > 0)) {
    throw std::invalid_argument("generate_circuit: outputs/DFFs require gates");
  }
  if (spec.max_fanin < 2) {
    throw std::invalid_argument("generate_circuit: max_fanin must be >= 2");
  }

  stats::Xoshiro256 rng(spec.seed);
  Netlist design(spec.name);

  // Timing sources: primary inputs and DFF outputs (D pins wired last).
  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    sources.push_back(design.add_input("pi" + std::to_string(i)));
  }
  std::vector<NodeId> dffs;
  for (std::size_t i = 0; i < spec.num_dffs; ++i) {
    const NodeId q = design.declare(GateType::Dff, "ff" + std::to_string(i));
    dffs.push_back(q);
    sources.push_back(q);
  }

  const std::size_t depth = std::max<std::size_t>(
      1, std::min(spec.target_depth, std::max<std::size_t>(spec.num_gates, 1)));

  // Distribute gates over levels 1..depth: one guaranteed per level, the
  // remainder spread uniformly at random.
  std::vector<std::size_t> gates_at_level(depth + 1, 0);
  for (std::size_t l = 1; l <= depth && l <= spec.num_gates; ++l) gates_at_level[l] = 1;
  std::size_t assigned = std::min(depth, spec.num_gates);
  while (assigned < spec.num_gates) {
    const std::size_t l = 1 + static_cast<std::size_t>(rng.uniform_index(depth));
    ++gates_at_level[l];
    ++assigned;
  }

  // by_level[l]: node ids whose level is exactly l (level 0 = sources).
  std::vector<std::vector<NodeId>> by_level(depth + 1);
  by_level[0] = sources;
  std::vector<std::size_t> fanout_load(design.node_count() + spec.num_gates, 0);

  // Picks a fanin from levels [0, below], biased toward the top level and
  // toward lightly loaded nodes so most gates end up observable.
  const auto pick_fanin = [&](std::size_t below) -> NodeId {
    std::size_t lvl = below;
    while (lvl > 0 && rng.uniform() < 0.45) --lvl;
    // Walk down until a non-empty level is found (level 0 is never empty).
    while (by_level[lvl].empty()) --lvl;
    const auto& pool = by_level[lvl];
    NodeId pick = pool[rng.uniform_index(pool.size())];
    // One retry preferring an unused node keeps dangling logic rare.
    if (fanout_load[pick] > 0) {
      const NodeId alt = pool[rng.uniform_index(pool.size())];
      if (fanout_load[alt] < fanout_load[pick]) pick = alt;
    }
    return pick;
  };

  std::size_t gate_index = 0;
  for (std::size_t l = 1; l <= depth; ++l) {
    for (std::size_t g = 0; g < gates_at_level[l]; ++g) {
      GateType type = pick_type(rng, spec);
      std::size_t fanin_count;
      if (type == GateType::Not || type == GateType::Buf) {
        fanin_count = 1;
      } else {
        fanin_count = 2;
        while (fanin_count < spec.max_fanin && rng.uniform() < 0.25) ++fanin_count;
      }
      std::vector<NodeId> fanins;
      // First fanin comes from level l-1 so the gate's level is exactly l.
      std::size_t prev = l - 1;
      while (by_level[prev].empty()) --prev;
      fanins.push_back(by_level[prev][rng.uniform_index(by_level[prev].size())]);
      while (fanins.size() < fanin_count) {
        const NodeId f = pick_fanin(l - 1);
        if (std::find(fanins.begin(), fanins.end(), f) == fanins.end()) {
          fanins.push_back(f);
        } else if (by_level[l - 1].size() + (l >= 2 ? by_level[l - 2].size() : 0) <= 1) {
          break;  // tiny circuits: give up on distinct fanins
        }
      }
      // (two-step concat avoids a GCC-12 -Wrestrict false positive)
      std::string gate_name = "g";
      gate_name += std::to_string(gate_index++);
      const NodeId id = design.add_gate(type, gate_name, fanins);
      for (NodeId f : fanins) ++fanout_load[f];
      if (id >= fanout_load.size()) fanout_load.resize(id + 1, 0);
      by_level[l].push_back(id);
    }
  }

  // Endpoint selection pool: gates, deepest levels first.
  std::vector<NodeId> deep_first;
  for (std::size_t l = depth; l >= 1; --l) {
    deep_first.insert(deep_first.end(), by_level[l].begin(), by_level[l].end());
    if (l == 1) break;
  }
  if (deep_first.empty()) deep_first = sources;

  // Primary outputs: the deepest gates, then random ones if more needed.
  for (std::size_t i = 0; i < spec.num_outputs; ++i) {
    const NodeId pick = i < deep_first.size()
                            ? deep_first[i]
                            : deep_first[rng.uniform_index(deep_first.size())];
    design.mark_output(pick);
    ++fanout_load[pick];
  }
  // DFF D pins: random gates biased toward unconsumed deep logic.
  for (NodeId q : dffs) {
    NodeId d = deep_first[rng.uniform_index(deep_first.size())];
    for (int attempt = 0; attempt < 4 && fanout_load[d] > 0; ++attempt) {
      d = deep_first[rng.uniform_index(deep_first.size())];
    }
    design.connect(q, {d});
    ++fanout_load[d];
  }

  design.validate();
  return design;
}

HierDesign generate_hier_circuit(const HierGeneratorSpec& spec) {
  if (spec.total_gates == 0 || spec.block_gates == 0) {
    throw std::invalid_argument("generate_hier_circuit: need gates");
  }
  if (spec.unique_blocks == 0) {
    throw std::invalid_argument("generate_hier_circuit: need at least one block");
  }
  if (spec.block_inputs == 0 || spec.block_outputs == 0) {
    throw std::invalid_argument("generate_hier_circuit: blocks need inputs and outputs");
  }

  HierDesign design(spec.name);

  // Unique block pool, each from an independently derived seed.
  std::vector<std::vector<std::string>> port_names(spec.unique_blocks);
  for (std::size_t b = 0; b < spec.unique_blocks; ++b) {
    GeneratorSpec block;
    block.name = spec.name + "_b" + std::to_string(b);
    block.num_inputs = spec.block_inputs;
    block.num_outputs = spec.block_outputs;
    block.num_dffs = spec.block_dffs;
    block.num_gates = spec.block_gates;
    block.target_depth = spec.block_depth;
    // Parity gates keep transition probability alive through the stacked
    // block levels; a pure AND/OR mix attenuates it to exactly zero well
    // before 10^5 gates, which would make the composed-vs-flat accuracy
    // columns of the size sweep vacuous.
    block.weight_xor = 2.0;
    block.weight_xnor = 1.0;
    block.seed = spec.seed + 0x9e3779b97f4a7c15ull * (b + 1);
    const std::size_t index = design.add_block(generate_circuit(block));
    const Netlist& built = design.blocks()[index];
    // mark_output is idempotent, so tiny blocks can end up with fewer
    // distinct ports than requested; wiring below indexes what exists.
    for (const NodeId out : built.primary_outputs()) {
      port_names[b].push_back(built.node(out).name);
    }
  }

  const std::size_t instances =
      (spec.total_gates + spec.block_gates - 1) / spec.block_gates;
  const std::size_t width =
      spec.width != 0
          ? spec.width
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::llround(std::sqrt(
                       static_cast<double>(instances)))));
  const std::size_t levels = (instances + width - 1) / width;

  for (std::size_t i = 0; i < spec.block_inputs; ++i) {
    design.add_top_input("x" + std::to_string(i));
  }

  stats::Xoshiro256 rng(spec.seed ^ 0x5851f42d4c957f2dull);
  std::vector<std::string> prev_names;  // instance names of the previous level
  std::size_t prev_block = 0;
  std::size_t placed = 0;
  for (std::size_t level = 1; level <= levels; ++level) {
    const std::size_t count = std::min(width, instances - placed);
    const std::size_t blk = (level - 1) % spec.unique_blocks;
    const std::size_t fanin_ports =
        level == 1 ? spec.block_inputs : port_names[prev_block].size();
    std::vector<std::string> names;
    names.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      HierInstance inst;
      inst.name = "u" + std::to_string(level) + "_" + std::to_string(k);
      inst.block = blk;
      inst.inputs.reserve(spec.block_inputs);
      for (std::size_t j = 0; j < spec.block_inputs; ++j) {
        if (level == 1) {
          const std::size_t pick = spec.uniform_wiring
                                       ? (k + j) % spec.block_inputs
                                       : rng.uniform_index(spec.block_inputs);
          inst.inputs.push_back(design.top_inputs()[pick]);
          continue;
        }
        if (j == 0) {
          // One feed-through per instance: port 0 always consumes a fresh
          // primary input, so switching activity reaches every level no
          // matter how deep the grid is. Top inputs share one source
          // scenario, so this keeps per-level wiring statistics uniform.
          const std::size_t pick = spec.uniform_wiring
                                       ? (k + level) % spec.block_inputs
                                       : rng.uniform_index(spec.block_inputs);
          inst.inputs.push_back(design.top_inputs()[pick]);
          continue;
        }
        std::size_t src_inst, src_port;
        if (spec.uniform_wiring) {
          // Rotated wiring: every instance of a level consumes the same
          // multiset of (driver level, port) statistics — the block-model
          // cache collapses the level to one extraction.
          src_inst = (k + j) % prev_names.size();
          src_port = j % fanin_ports;
        } else {
          src_inst = rng.uniform_index(prev_names.size());
          src_port = rng.uniform_index(fanin_ports);
        }
        inst.inputs.push_back(prev_names[src_inst] + "." +
                              port_names[prev_block][src_port]);
      }
      names.push_back(inst.name);
      design.add_instance(std::move(inst));
    }
    placed += count;
    prev_names = std::move(names);
    prev_block = blk;
  }

  // Every port of the final level is a primary output.
  for (const std::string& inst : prev_names) {
    for (const std::string& port : port_names[prev_block]) {
      design.add_top_output(inst + "." + port);
    }
  }

  design.validate();
  return design;
}

}  // namespace spsta::netlist
