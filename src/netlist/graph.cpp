#include "netlist/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "netlist/levelize.hpp"

namespace spsta::netlist {

namespace {

// Generic BFS over fanins or fanouts; DFF boundaries stop combinational
// fanin traversal (a DFF is a source) but are included themselves.
std::vector<NodeId> cone(const Netlist& design, NodeId root, bool toward_fanins) {
  std::vector<char> seen(design.node_count(), 0);
  std::vector<NodeId> stack{root};
  std::vector<NodeId> result;
  seen[root] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    result.push_back(id);
    const Node& n = design.node(id);
    if (toward_fanins) {
      if (!is_combinational(n.type)) continue;  // stop at sources
      for (NodeId f : n.fanins) {
        if (!seen[f]) {
          seen[f] = 1;
          stack.push_back(f);
        }
      }
    } else {
      for (NodeId f : n.fanouts) {
        if (!is_combinational(design.node(f).type)) continue;  // D pin boundary
        if (!seen[f]) {
          seen[f] = 1;
          stack.push_back(f);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::vector<NodeId> fanin_cone(const Netlist& design, NodeId node) {
  return cone(design, node, /*toward_fanins=*/true);
}

std::vector<NodeId> fanout_cone(const Netlist& design, NodeId node) {
  return cone(design, node, /*toward_fanins=*/false);
}

bool has_reconvergent_fanin(const Netlist& design, NodeId node) {
  // A node is reconvergent iff within its fanin cone some node is reached
  // through two or more of `node`'s direct fanin branches, or more
  // generally iff the cone contains a node with >= 2 fanouts inside the
  // cone that both lead to `node`. Counting in-cone fanout edges suffices:
  // in a tree (no reconvergence) every in-cone node except the root has
  // exactly one in-cone fanout on a path to the root.
  const std::vector<NodeId> nodes = fanin_cone(design, node);
  std::vector<char> in_cone(design.node_count(), 0);
  for (NodeId id : nodes) in_cone[id] = 1;
  for (NodeId id : nodes) {
    if (id == node) continue;
    std::size_t edges = 0;
    for (NodeId fo : design.node(id).fanouts) {
      // Count edges that stay inside the cone and enter a combinational
      // consumer (paths through a DFF are sequential, not reconvergent).
      if (in_cone[fo] && is_combinational(design.node(fo).type)) ++edges;
    }
    if (edges >= 2) return true;
  }
  return false;
}

std::vector<NodeId> reconvergent_nodes(const Netlist& design) {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < design.node_count(); ++id) {
    if (is_combinational(design.node(id).type) && has_reconvergent_fanin(design, id)) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<std::uint64_t> path_counts(const Netlist& design) {
  constexpr std::uint64_t kCap = 1000000000000000000ULL;
  const Levelization lv = levelize(design);
  std::vector<std::uint64_t> count(design.node_count(), 0);
  for (NodeId id : lv.order) {
    const Node& n = design.node(id);
    if (!is_combinational(n.type)) {
      count[id] = 1;
      continue;
    }
    std::uint64_t total = n.fanins.empty() ? 1 : 0;  // constants: one path
    for (NodeId f : n.fanins) {
      total = total > kCap - count[f] ? kCap : total + count[f];
    }
    count[id] = std::min(total, kCap);
  }
  return count;
}

Path critical_path_to(const Netlist& design, NodeId endpoint,
                      const std::vector<double>& delay) {
  if (delay.size() != design.node_count()) {
    throw std::invalid_argument("critical_path_to: delay vector size mismatch");
  }
  const Levelization lv = levelize(design);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> arrival(design.node_count(), kNegInf);
  std::vector<NodeId> pred(design.node_count(), kInvalidNode);
  for (NodeId id : lv.order) {
    const Node& n = design.node(id);
    if (!is_combinational(n.type)) {
      arrival[id] = 0.0;
      continue;
    }
    if (n.fanins.empty()) {  // constant
      arrival[id] = 0.0;
      continue;
    }
    double best = kNegInf;
    NodeId best_pred = kInvalidNode;
    for (NodeId f : n.fanins) {
      if (arrival[f] > best || (arrival[f] == best && f < best_pred)) {
        best = arrival[f];
        best_pred = f;
      }
    }
    arrival[id] = best + delay[id];
    pred[id] = best_pred;
  }

  Path path;
  path.delay = arrival[endpoint] == kNegInf ? 0.0 : arrival[endpoint];
  for (NodeId cur = endpoint; cur != kInvalidNode; cur = pred[cur]) {
    path.nodes.push_back(cur);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

std::vector<Path> critical_paths(const Netlist& design, const std::vector<double>& delay,
                                 std::size_t k) {
  std::vector<Path> paths;
  for (NodeId endpoint : design.timing_endpoints()) {
    paths.push_back(critical_path_to(design, endpoint, delay));
  }
  std::stable_sort(paths.begin(), paths.end(),
                   [](const Path& a, const Path& b) { return a.delay > b.delay; });
  if (paths.size() > k) paths.resize(k);
  return paths;
}

}  // namespace spsta::netlist
