/// \file hier.hpp
/// Hierarchical netlist representation: block definitions plus a top level
/// made of block instances — the structural model behind the block-timing
/// subsystem (src/hier/, DESIGN.md §14).
///
/// The top level is deliberately restricted to pure composition: INPUT /
/// OUTPUT declarations and INSTANCE statements only, no glue gates and no
/// top-level DFFs. Every top-level net is therefore either a top input or
/// an instance output port, named "<instance>.<port>". This restriction is
/// what lets hierarchical analysis compose extracted block models directly
/// instead of flattening: arbitrary glue logic would itself need a timing
/// model. Glue can always be expressed as one more (small) block.
///
/// flatten() expands the hierarchy into a plain Netlist (instance-local
/// nodes named "<instance>/<node>") — the reference the composed analysis
/// is tested against, and the bridge to every flat engine.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// One block instantiation at the top level.
struct HierInstance {
  std::string name;                 ///< instance name, unique at top level
  std::size_t block = 0;            ///< index into HierDesign::blocks()
  /// Driving signal per block primary input, positional: inputs[j] drives
  /// the block's j-th primary input. Each entry is a top-input name or
  /// "<instance>.<port>".
  std::vector<std::string> inputs;
};

/// A resolved top-level signal: either a top input or an instance output.
struct HierSignalRef {
  static constexpr std::size_t kTopInput = static_cast<std::size_t>(-1);
  std::size_t instance = kTopInput;  ///< kTopInput, or index into instances()
  std::size_t index = 0;  ///< top-input index, or block primary-output index
  [[nodiscard]] bool is_top_input() const noexcept { return instance == kTopInput; }
};

/// Block definitions + instances + top-level ports. Built by the
/// hierarchical .bench parser (hier_bench_io) or the generator; validate()
/// establishes the structural invariants every consumer relies on.
class HierDesign {
 public:
  HierDesign() = default;
  explicit HierDesign(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Registers a block definition under its netlist name. Throws
  /// std::invalid_argument on an empty or duplicate name.
  std::size_t add_block(Netlist block);
  [[nodiscard]] const std::vector<Netlist>& blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::optional<std::size_t> find_block(std::string_view name) const;

  void add_top_input(std::string name);
  /// Declares \p signal (top input or "<instance>.<port>") a top output.
  /// Resolution happens in validate(), so outputs may be declared before
  /// the instances that drive them.
  void add_top_output(std::string signal);
  std::size_t add_instance(HierInstance instance);

  [[nodiscard]] const std::vector<std::string>& top_inputs() const noexcept {
    return top_inputs_;
  }
  [[nodiscard]] const std::vector<std::string>& top_outputs() const noexcept {
    return top_outputs_;
  }
  [[nodiscard]] const std::vector<HierInstance>& instances() const noexcept {
    return instances_;
  }

  /// Resolves a top-level signal name. nullopt when the name is neither a
  /// top input nor "<existing instance>.<existing output port>".
  [[nodiscard]] std::optional<HierSignalRef> resolve(std::string_view signal) const;

  /// Instance indices in topological order (every instance after all
  /// instances driving it). Throws std::logic_error on a cycle or an
  /// unresolvable input signal.
  [[nodiscard]] std::vector<std::size_t> topo_instances() const;

  /// Checks every structural invariant: non-empty blocks/instances, block
  /// indices in range, instance arity == block PI count, unique
  /// instance/input names without '.', resolvable instance inputs and top
  /// outputs, acyclic instance graph. Throws std::logic_error.
  void validate() const;

  // Expanded (post-flatten) totals, computed without flattening — the size
  // a budget or report should attribute to this design.
  [[nodiscard]] std::size_t expanded_gate_count() const noexcept;
  [[nodiscard]] std::size_t expanded_node_count() const noexcept;
  [[nodiscard]] std::size_t expanded_dff_count() const noexcept;

  /// Expands the hierarchy into a flat Netlist: instance-local nodes are
  /// named "<instance>/<node>", block input ports collapse onto their
  /// driving nets, top outputs are marked as primary outputs. The result
  /// validates; node order follows instance topological order.
  [[nodiscard]] Netlist flatten() const;

 private:
  std::string name_;
  std::vector<Netlist> blocks_;
  std::unordered_map<std::string, std::size_t> block_index_;
  std::vector<std::string> top_inputs_;
  std::unordered_map<std::string, std::size_t> top_input_index_;
  std::vector<std::string> top_outputs_;
  std::vector<HierInstance> instances_;
  std::unordered_map<std::string, std::size_t> instance_index_;
};

}  // namespace spsta::netlist
