/// \file dot_export.hpp
/// Graphviz DOT export of netlists, with optional per-node annotations
/// (levels, probabilities, slack...) and critical-path highlighting —
/// the debugging view every netlist tool grows eventually.

#pragma once

#include <functional>
#include <span>
#include <string>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Options for DOT rendering.
struct DotOptions {
  /// Extra label text per node (appended under the name), may be empty.
  std::function<std::string(NodeId)> annotate;
  /// Nodes to highlight (e.g. a critical path); drawn bold red.
  std::span<const NodeId> highlight;
  /// Rank inputs on the left (rankdir=LR).
  bool left_to_right = true;
};

/// Renders \p design as a DOT digraph. Inputs are boxes, DFFs are
/// double-circles, gates are ellipses labeled with their type.
[[nodiscard]] std::string to_dot(const Netlist& design, const DotOptions& options = {});

}  // namespace spsta::netlist
