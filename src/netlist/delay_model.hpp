/// \file delay_model.hpp
/// Per-gate delay distributions shared by every timing engine. The paper's
/// experiment uses deterministic unit gate delays and zero net delays; the
/// model also carries Gaussian per-gate delays so process variation can be
/// layered on (library feature + ablation benches).

#pragma once

#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "stats/gaussian.hpp"

namespace spsta::netlist {

/// One delay distribution per node. Sources (inputs, DFF outputs) and
/// constants have zero delay; combinational gates have the assigned
/// distribution (var == 0 means deterministic).
///
/// Real cells have different rise and fall delays; per-direction overrides
/// are optional and fall back to the common delay. Direction refers to the
/// *output* transition the gate produces.
class DelayModel {
 public:
  /// Zero delay everywhere.
  explicit DelayModel(const Netlist& design)
      : delay_(design.node_count(), stats::Gaussian{0.0, 0.0}),
        rise_(design.node_count()),
        fall_(design.node_count()) {}

  /// The paper's model: unit deterministic delay per combinational gate.
  [[nodiscard]] static DelayModel unit(const Netlist& design);

  /// Uniform Gaussian delay for every combinational gate.
  [[nodiscard]] static DelayModel gaussian(const Netlist& design, double mean,
                                           double stddev);

  /// Common (direction-independent) delay.
  [[nodiscard]] const stats::Gaussian& delay(NodeId id) const { return delay_.at(id); }
  /// Delay for the given output transition direction: the per-direction
  /// override when set, else the common delay.
  [[nodiscard]] const stats::Gaussian& delay(NodeId id, bool rising) const {
    const auto& dir = rising ? rise_.at(id) : fall_.at(id);
    return dir ? *dir : delay_.at(id);
  }
  /// True when the node carries distinct rise/fall delays.
  [[nodiscard]] bool is_directional(NodeId id) const {
    return rise_.at(id).has_value() || fall_.at(id).has_value();
  }

  /// Sets the common delay (and clears any per-direction overrides).
  void set_delay(NodeId id, stats::Gaussian d) {
    delay_.at(id) = d;
    rise_.at(id).reset();
    fall_.at(id).reset();
  }
  void set_rise_delay(NodeId id, stats::Gaussian d) { rise_.at(id) = d; }
  void set_fall_delay(NodeId id, stats::Gaussian d) { fall_.at(id) = d; }

  [[nodiscard]] std::size_t size() const noexcept { return delay_.size(); }

  /// Mean delays as a plain vector (for structural critical-path search);
  /// directional nodes report the worse (larger) direction.
  [[nodiscard]] std::vector<double> means() const;

 private:
  std::vector<stats::Gaussian> delay_;
  std::vector<std::optional<stats::Gaussian>> rise_;
  std::vector<std::optional<stats::Gaussian>> fall_;
};

}  // namespace spsta::netlist
