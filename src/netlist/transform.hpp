/// \file transform.hpp
/// Function-preserving netlist transformations:
///   * decompose_wide_gates — split k-input AND/NAND/OR/NOR/XOR/XNOR into
///     balanced trees of <= max_fanin gates (the enumeration-based SPSTA
///     engines are O(4^k) per gate, so fanin reduction is their scaling
///     lever);
///   * sweep_buffers — bypass BUF gates (and collapse NOT-NOT pairs);
///   * propagate_constants — fold constant inputs through gate logic.
/// All transformations are validated by BDD equivalence checking in the
/// test suite.

#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Statistics of one transformation run.
struct TransformStats {
  std::size_t gates_added = 0;
  std::size_t gates_bypassed = 0;
  std::size_t constants_folded = 0;
};

/// Returns a copy of \p design where every decomposable gate has at most
/// \p max_fanin inputs (>= 2). Inverting gates become a non-inverting
/// tree with an inverting root, preserving functions. Node names of new
/// internal gates are derived from the original ("g.d0", "g.d1", ...).
[[nodiscard]] Netlist decompose_wide_gates(const Netlist& design, std::size_t max_fanin,
                                           TransformStats* stats = nullptr);

/// Returns a copy of \p design with BUF gates bypassed (their consumers
/// rewired to the buffer's fanin). Buffers that are primary outputs are
/// kept (the net name is the interface). NOT gates fed by NOT gates
/// collapse to the grandparent signal.
[[nodiscard]] Netlist sweep_buffers(const Netlist& design,
                                    TransformStats* stats = nullptr);

/// Returns a copy of \p design with Const0/Const1 values folded through
/// gate logic (AND with 0 becomes 0, AND with 1 drops the input, ...).
/// Gates that become constant are replaced by constant nodes.
[[nodiscard]] Netlist propagate_constants(const Netlist& design,
                                          TransformStats* stats = nullptr);

}  // namespace spsta::netlist
