/// \file iscas89.hpp
/// The benchmark suite the paper evaluates on (ISCAS'89 s208..s1238).
///
/// The genuine s27 netlist (public and tiny) is embedded verbatim as a
/// parser fixture and smoke-test circuit. The nine circuits of the paper's
/// Tables 2-3 are produced by the deterministic generator with the
/// published PI/PO/DFF/gate counts and depths chosen so unit-delay
/// critical-path lengths land near the paper's SSTA means (DESIGN.md §5).

#pragma once

#include <span>
#include <string>
#include <string_view>

#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// The published s27 netlist in .bench format.
[[nodiscard]] std::string_view s27_bench_text() noexcept;

/// Parses and returns s27.
[[nodiscard]] Netlist make_s27();

/// Circuit names of the paper's evaluation, in Table 2 order:
/// s208 s298 s344 s349 s382 s386 s526 s1196 s1238.
[[nodiscard]] std::span<const std::string_view> paper_circuit_names() noexcept;

/// The generator spec used for a paper circuit. Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] GeneratorSpec paper_circuit_spec(std::string_view name);

/// Builds a paper circuit ("s208".."s1238") or s27.
[[nodiscard]] Netlist make_paper_circuit(std::string_view name);

}  // namespace spsta::netlist
