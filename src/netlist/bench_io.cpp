#include "netlist/bench_io.hpp"

#include <cctype>
#include <istream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "netlist/levelize.hpp"

namespace spsta::netlist {

BenchParseError::BenchParseError(std::size_t line, const std::string& message)
    : std::runtime_error("bench:" + std::to_string(line) + ": " + message), line_(line) {}

namespace detail {

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

// Editors on some platforms prepend a UTF-8 byte-order mark; it is not part
// of the netlist and would otherwise glue onto the first token.
std::string_view strip_utf8_bom(std::string_view s) noexcept {
  if (s.size() >= 3 && s[0] == '\xEF' && s[1] == '\xBB' && s[2] == '\xBF') {
    s.remove_prefix(3);
  }
  return s;
}

namespace {

std::vector<std::string> split_args(std::string_view inside, std::size_t line) {
  std::vector<std::string> args;
  std::size_t start = 0;
  while (start <= inside.size()) {
    const std::size_t comma = inside.find(',', start);
    const std::string_view piece =
        trim(inside.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                                  : comma - start));
    if (piece.empty()) {
      if (!(comma == std::string_view::npos && args.empty() && trim(inside).empty())) {
        throw BenchParseError(line, "empty signal name in argument list");
      }
      break;
    }
    args.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return args;
}

}  // namespace

std::pair<std::string, std::vector<std::string>> parse_call(std::string_view s,
                                                            std::size_t line) {
  const std::size_t open = s.find('(');
  const std::size_t close = s.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
    throw BenchParseError(line, "expected '<name>(<args>)'");
  }
  if (!trim(s.substr(close + 1)).empty()) {
    throw BenchParseError(line, "trailing characters after ')'");
  }
  const std::string head(trim(s.substr(0, open)));
  if (head.empty()) throw BenchParseError(line, "missing gate/keyword name");
  return {head, split_args(s.substr(open + 1, close - open - 1), line)};
}

}  // namespace detail

namespace {

using detail::parse_call;
using detail::trim;

// One parsed statement before netlist construction. The parser is
// line-streaming but netlist construction stays two-pass (declare all, then
// connect) because the format allows forward references; the statement list
// is O(netlist), the same order as the result itself.
struct Statement {
  std::size_t line = 0;
  enum class Kind { Input, Output, Gate } kind = Kind::Gate;
  std::string target;
  GateType type = GateType::Input;
  std::vector<std::string> args;
};

// Lexes one raw source line (comment stripping included) into `statements`.
// Blank/comment-only lines produce nothing.
void lex_line(std::string_view raw, std::size_t line_no, std::vector<Statement>& statements) {
  const std::size_t hash = raw.find('#');
  if (hash != std::string_view::npos) raw = raw.substr(0, hash);
  const std::string_view line = trim(raw);
  if (line.empty()) return;

  const std::size_t eq = line.find('=');
  Statement st;
  st.line = line_no;
  if (eq == std::string_view::npos) {
    auto [head, args] = parse_call(line, line_no);
    if (args.size() != 1) {
      throw BenchParseError(line_no, head + " takes exactly one signal");
    }
    if (head == "INPUT" || head == "input") {
      st.kind = Statement::Kind::Input;
    } else if (head == "OUTPUT" || head == "output") {
      st.kind = Statement::Kind::Output;
    } else {
      throw BenchParseError(line_no, "unknown declaration '" + head + "'");
    }
    st.target = args[0];
  } else {
    st.kind = Statement::Kind::Gate;
    st.target = std::string(trim(line.substr(0, eq)));
    if (st.target.empty()) throw BenchParseError(line_no, "missing gate output name");
    auto [head, args] = parse_call(line.substr(eq + 1), line_no);
    const auto type = parse_gate_type(head);
    if (!type || *type == GateType::Input) {
      throw BenchParseError(line_no, "unknown gate type '" + head + "'");
    }
    st.type = *type;
    st.args = std::move(args);
  }
  statements.push_back(std::move(st));
}

// Builds the netlist from the lexed statement list (pass 1 declares, pass 2
// connects — forward references resolve here).
Netlist build_netlist(const std::vector<Statement>& statements, std::string name,
                      std::size_t last_line) {
  if (statements.empty()) {
    throw BenchParseError(last_line == 0 ? 1 : last_line,
                          "empty input: no INPUT/OUTPUT/gate statements");
  }
  Netlist design(std::move(name));
  for (const Statement& st : statements) {
    if (st.kind == Statement::Kind::Output) continue;
    const GateType type = st.kind == Statement::Kind::Input ? GateType::Input : st.type;
    if (design.find(st.target) != kInvalidNode) {
      throw BenchParseError(st.line, "signal '" + st.target + "' defined twice");
    }
    design.declare(type, st.target);
  }
  for (const Statement& st : statements) {
    if (st.kind == Statement::Kind::Input) continue;
    const NodeId target = design.find(st.target);
    if (target == kInvalidNode) {
      throw BenchParseError(st.line, "output '" + st.target + "' references undefined signal");
    }
    if (st.kind == Statement::Kind::Output) {
      design.mark_output(target);
      continue;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(st.args.size());
    for (const std::string& arg : st.args) {
      const NodeId f = design.find(arg);
      if (f == kInvalidNode) {
        throw BenchParseError(st.line, "undefined signal '" + arg + "'");
      }
      fanins.push_back(f);
    }
    try {
      design.connect(target, std::move(fanins));
    } catch (const std::invalid_argument& e) {
      throw BenchParseError(st.line, e.what());
    }
  }
  design.validate();
  return design;
}

}  // namespace

Netlist parse_bench(std::string_view text, std::string name) {
  text = detail::strip_utf8_bom(text);
  std::vector<Statement> statements;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (raw.size() > kMaxBenchLineBytes) {
      throw BenchParseError(line_no, "line exceeds " + std::to_string(kMaxBenchLineBytes) +
                                         " byte limit");
    }
    lex_line(raw, line_no, statements);
  }
  return build_netlist(statements, std::move(name), line_no);
}

bool read_bench_line(std::istream& in, std::string& line, std::size_t line_no) {
  line.clear();
  char buf[1 << 16];
  bool read_any = false;
  for (;;) {
    in.getline(buf, sizeof buf);
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    // istream::getline semantics: failbit without eofbit and a full buffer
    // means the line continues; eofbit without failbit means a final
    // unterminated line; otherwise a newline was consumed (counted by
    // gcount but not stored).
    const bool buffer_full = in.fail() && !in.eof() && got + 1 == sizeof buf;
    if (in.fail() && !buffer_full && got == 0 && !read_any) {
      return false;  // end of stream before any character
    }
    std::size_t stored;
    bool line_done;
    if (buffer_full) {
      stored = got;
      line_done = false;
      in.clear(in.rdstate() & ~std::ios::failbit);
    } else if (in.eof()) {
      stored = got;
      line_done = true;
    } else {
      stored = got > 0 ? got - 1 : 0;
      line_done = true;
    }
    read_any = true;
    if (line.size() + stored > kMaxBenchLineBytes) {
      throw BenchParseError(line_no, "line exceeds " + std::to_string(kMaxBenchLineBytes) +
                                         " byte limit");
    }
    line.append(buf, stored);
    if (line_done) return true;
  }
}

Netlist parse_bench_stream(std::istream& in, std::string name) {
  std::vector<Statement> statements;
  std::string line;
  std::size_t line_no = 0;
  while (read_bench_line(in, line, line_no + 1)) {
    ++line_no;
    std::string_view raw = line;
    if (line_no == 1) raw = detail::strip_utf8_bom(raw);
    lex_line(raw, line_no, statements);
  }
  return build_netlist(statements, std::move(name), line_no);
}

void write_bench(const Netlist& design, std::ostream& out) {
  out << "# " << design.name() << " — written by spsta\n";
  for (NodeId id : design.primary_inputs()) {
    out << "INPUT(" << design.node(id).name << ")\n";
  }
  for (NodeId id : design.primary_outputs()) {
    out << "OUTPUT(" << design.node(id).name << ")\n";
  }
  const Levelization lv = levelize(design);
  for (NodeId id : lv.order) {
    const Node& n = design.node(id);
    if (n.type == GateType::Input) continue;
    out << n.name << " = " << to_string(n.type) << "(";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) out << ", ";
      out << design.node(n.fanins[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench(const Netlist& design) {
  std::ostringstream out;
  write_bench(design, out);
  return out.str();
}

}  // namespace spsta::netlist
