/// \file generator.hpp
/// Deterministic random-logic circuit generator.
///
/// The paper evaluates on the ISCAS'89 benchmarks, whose netlist files are
/// not redistributable here; this generator builds structurally comparable
/// circuits (same PI/PO/DFF/gate counts, targeted logic depth, mixed
/// AND/NAND/OR/NOR/NOT/BUFF gates, reconvergent fanout) from a fixed seed,
/// so every experiment is reproducible bit-for-bit. See DESIGN.md §5.

#pragma once

#include <cstdint>
#include <string>

#include "netlist/hier.hpp"
#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Parameters of a generated circuit.
struct GeneratorSpec {
  std::string name = "random";
  std::size_t num_inputs = 4;
  std::size_t num_outputs = 1;
  std::size_t num_dffs = 0;
  /// Combinational gates to create (including inverters/buffers).
  std::size_t num_gates = 16;
  /// Desired combinational depth in gate levels (>= 1). The generator
  /// guarantees this exact depth when num_gates >= target_depth.
  std::size_t target_depth = 4;
  std::uint64_t seed = 1;
  /// Maximum gate fanin (>= 2); fanin counts are biased toward 2.
  std::size_t max_fanin = 4;
  /// Relative gate-type weights.
  double weight_and = 3.0;
  double weight_nand = 3.0;
  double weight_or = 2.0;
  double weight_nor = 2.0;
  double weight_not = 1.5;
  double weight_buf = 0.5;
  /// XOR/XNOR keep switching activity alive through deep logic (an AND/OR
  /// mix attenuates transition probability geometrically with depth). Off
  /// by default so existing specs generate byte-identical netlists.
  double weight_xor = 0.0;
  double weight_xnor = 0.0;
};

/// Generates a valid, acyclic netlist per \p spec. The result always
/// passes Netlist::validate() and levelize(); its depth equals
/// min(target_depth, num_gates) and its node counts match the spec.
/// Throws std::invalid_argument on inconsistent specs (no sources, zero
/// gates with nonzero outputs, etc.).
[[nodiscard]] Netlist generate_circuit(const GeneratorSpec& spec);

/// Parameters of a generated hierarchical circuit: a grid of levels ×
/// width block instances drawn from a small pool of unique blocks, sized
/// to reach `total_gates` flattened gates. With `uniform_wiring` every
/// instance of a level receives the same multiset of upstream statistics,
/// which is the block-model cache's best case (one extraction per level);
/// without it wiring is seeded-random, the cache's stress case.
struct HierGeneratorSpec {
  std::string name = "hier";
  /// Approximate flattened combinational gate count; the instance count is
  /// ceil(total_gates / block_gates).
  std::size_t total_gates = 100000;
  std::size_t unique_blocks = 4;    ///< distinct block definitions (>= 1)
  std::size_t block_gates = 400;    ///< gates per block
  std::size_t block_inputs = 8;     ///< primary inputs per block
  std::size_t block_outputs = 8;    ///< primary outputs per block
  std::size_t block_depth = 12;     ///< target logic depth per block
  std::size_t block_dffs = 0;       ///< DFFs per block
  /// Instances per grid level; 0 = ~sqrt(instance count).
  std::size_t width = 0;
  std::uint64_t seed = 1;
  bool uniform_wiring = true;
};

/// Generates a valid hierarchical design per \p spec: deterministic for a
/// fixed spec (byte-identical write_hier_bench output at any thread count —
/// generation is single-threaded by construction). The result passes
/// HierDesign::validate() and flatten(). Throws std::invalid_argument on
/// inconsistent specs.
[[nodiscard]] HierDesign generate_hier_circuit(const HierGeneratorSpec& spec);

}  // namespace spsta::netlist
