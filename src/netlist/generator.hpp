/// \file generator.hpp
/// Deterministic random-logic circuit generator.
///
/// The paper evaluates on the ISCAS'89 benchmarks, whose netlist files are
/// not redistributable here; this generator builds structurally comparable
/// circuits (same PI/PO/DFF/gate counts, targeted logic depth, mixed
/// AND/NAND/OR/NOR/NOT/BUFF gates, reconvergent fanout) from a fixed seed,
/// so every experiment is reproducible bit-for-bit. See DESIGN.md §5.

#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Parameters of a generated circuit.
struct GeneratorSpec {
  std::string name = "random";
  std::size_t num_inputs = 4;
  std::size_t num_outputs = 1;
  std::size_t num_dffs = 0;
  /// Combinational gates to create (including inverters/buffers).
  std::size_t num_gates = 16;
  /// Desired combinational depth in gate levels (>= 1). The generator
  /// guarantees this exact depth when num_gates >= target_depth.
  std::size_t target_depth = 4;
  std::uint64_t seed = 1;
  /// Maximum gate fanin (>= 2); fanin counts are biased toward 2.
  std::size_t max_fanin = 4;
  /// Relative gate-type weights.
  double weight_and = 3.0;
  double weight_nand = 3.0;
  double weight_or = 2.0;
  double weight_nor = 2.0;
  double weight_not = 1.5;
  double weight_buf = 0.5;
};

/// Generates a valid, acyclic netlist per \p spec. The result always
/// passes Netlist::validate() and levelize(); its depth equals
/// min(target_depth, num_gates) and its node counts match the spec.
/// Throws std::invalid_argument on inconsistent specs (no sources, zero
/// gates with nonzero outputs, etc.).
[[nodiscard]] Netlist generate_circuit(const GeneratorSpec& spec);

}  // namespace spsta::netlist
