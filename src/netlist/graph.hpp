/// \file graph.hpp
/// Structural graph queries on netlists: fanin/fanout cones, reconvergent
/// fanout detection, path counting, and deterministic critical-path
/// extraction under a per-gate delay assignment.
///
/// Reconvergence is what separates the paper's independent signal
/// probability propagation (Sec. 2.2.1) from its exact BDD/correlation
/// methods (Sec. 3.5); these queries let clients and tests locate it.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::netlist {

/// Set of nodes in the transitive fanin of \p node (inclusive).
[[nodiscard]] std::vector<NodeId> fanin_cone(const Netlist& design, NodeId node);

/// Set of nodes in the transitive fanout of \p node (inclusive).
[[nodiscard]] std::vector<NodeId> fanout_cone(const Netlist& design, NodeId node);

/// True if some node with >= 2 fanouts has two distinct combinational
/// paths into \p node — i.e. the fanin cone of \p node is reconvergent,
/// so input independence assumptions are violated at \p node.
[[nodiscard]] bool has_reconvergent_fanin(const Netlist& design, NodeId node);

/// Ids of all nodes whose fanin cone is reconvergent.
[[nodiscard]] std::vector<NodeId> reconvergent_nodes(const Netlist& design);

/// Number of distinct source-to-node combinational paths per node
/// (saturating at ~1e18). Sources count one path (themselves).
[[nodiscard]] std::vector<std::uint64_t> path_counts(const Netlist& design);

/// One structural path and its total delay.
struct Path {
  std::vector<NodeId> nodes;  ///< source first, endpoint last
  double delay = 0.0;
};

/// The longest-delay path ending at \p endpoint when each combinational
/// gate contributes delay[gate] (sources contribute 0). Ties break toward
/// the lowest node id, keeping extraction deterministic.
[[nodiscard]] Path critical_path_to(const Netlist& design, NodeId endpoint,
                                    const std::vector<double>& delay);

/// The K largest-delay endpoint paths (one per endpoint, sorted by
/// decreasing delay; at most one path per endpoint).
[[nodiscard]] std::vector<Path> critical_paths(const Netlist& design,
                                               const std::vector<double>& delay,
                                               std::size_t k);

}  // namespace spsta::netlist
