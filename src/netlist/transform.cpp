#include "netlist/transform.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/levelize.hpp"

namespace spsta::netlist {

namespace {

bool is_primary_output(const Netlist& n, NodeId id) {
  const auto& outs = n.primary_outputs();
  return std::find(outs.begin(), outs.end(), id) != outs.end();
}

/// Copies a node's declaration into `out` (without fanins).
NodeId clone_declare(Netlist& out, const Node& node) {
  return out.declare(node.type, node.name);
}

/// The non-inverting base operation of a decomposable gate.
GateType base_type(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand: return GateType::And;
    case GateType::Or:
    case GateType::Nor: return GateType::Or;
    case GateType::Xor:
    case GateType::Xnor: return GateType::Xor;
    default: return t;
  }
}

bool is_decomposable(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor: return true;
    default: return false;
  }
}

}  // namespace

Netlist decompose_wide_gates(const Netlist& design, std::size_t max_fanin,
                             TransformStats* stats) {
  if (max_fanin < 2) {
    throw std::invalid_argument("decompose_wide_gates: max_fanin must be >= 2");
  }
  Netlist out(design.name());
  std::vector<NodeId> map(design.node_count(), kInvalidNode);

  // Declare everything first (two-phase, preserving names), connect after.
  for (NodeId id = 0; id < design.node_count(); ++id) {
    map[id] = clone_declare(out, design.node(id));
  }
  std::size_t fresh = 0;
  for (NodeId id = 0; id < design.node_count(); ++id) {
    const Node& node = design.node(id);
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanins.push_back(map[f]);

    if (!is_decomposable(node.type) || fanins.size() <= max_fanin) {
      out.connect(map[id], std::move(fanins));
      continue;
    }

    // Reduce operands level by level with base-op gates of <= max_fanin
    // inputs until at most max_fanin remain; the original node becomes
    // the root (keeping its type, hence any inversion).
    const GateType base = base_type(node.type);
    std::vector<NodeId> level = std::move(fanins);
    while (level.size() > max_fanin) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i < level.size(); i += max_fanin) {
        const std::size_t end = std::min(i + max_fanin, level.size());
        if (end - i == 1) {
          next.push_back(level[i]);
          continue;
        }
        std::vector<NodeId> group(level.begin() + static_cast<std::ptrdiff_t>(i),
                                  level.begin() + static_cast<std::ptrdiff_t>(end));
        const NodeId g = out.add_gate(
            base, node.name + ".d" + std::to_string(fresh++), std::move(group));
        if (stats) ++stats->gates_added;
        next.push_back(g);
      }
      level = std::move(next);
    }
    out.connect(map[id], std::move(level));
  }

  for (NodeId po : design.primary_outputs()) out.mark_output(map[po]);
  out.validate();
  return out;
}

Netlist sweep_buffers(const Netlist& design, TransformStats* stats) {
  const Levelization lv = levelize(design);
  Netlist out(design.name());
  // rep[old] = node id in `out` carrying the same function.
  std::vector<NodeId> rep(design.node_count(), kInvalidNode);

  // DFF declarations must exist before their fanouts connect, and their
  // D fanins may resolve later; declare non-bypassed nodes in topological
  // order, then wire DFF D pins at the end.
  for (NodeId id : lv.order) {
    const Node& node = design.node(id);
    const bool po = is_primary_output(design, id);

    if (node.type == GateType::Buf && !po) {
      rep[id] = rep[node.fanins[0]];
      if (stats) ++stats->gates_bypassed;
      continue;
    }
    if (node.type == GateType::Not && !po) {
      const Node& in = design.node(node.fanins[0]);
      if (in.type == GateType::Not) {
        rep[id] = rep[in.fanins[0]];
        if (stats) ++stats->gates_bypassed;
        continue;
      }
    }
    const NodeId fresh = out.declare(node.type, node.name);
    rep[id] = fresh;
    if (node.type != GateType::Dff) {
      std::vector<NodeId> fanins;
      for (NodeId f : node.fanins) fanins.push_back(rep[f]);
      out.connect(fresh, std::move(fanins));
    }
  }
  for (NodeId q : design.dffs()) {
    const Node& node = design.node(q);
    if (!node.fanins.empty()) out.connect(rep[q], {rep[node.fanins[0]]});
  }
  for (NodeId po : design.primary_outputs()) out.mark_output(rep[po]);
  out.validate();
  return out;
}

Netlist propagate_constants(const Netlist& design, TransformStats* stats) {
  const Levelization lv = levelize(design);
  Netlist out(design.name());

  struct Mapped {
    NodeId node = kInvalidNode;             ///< valid when not constant
    std::optional<bool> constant;
  };
  std::vector<Mapped> map(design.node_count());

  const auto materialize = [&](const Mapped& m, const std::string& name) -> NodeId {
    if (!m.constant) return m.node;
    // A constant needed as a real node (PO, DFF pin): create it once per
    // use site with a derived name.
    return out.add_gate(*m.constant ? GateType::Const1 : GateType::Const0, name, {});
  };

  for (NodeId id : lv.order) {
    const Node& node = design.node(id);
    const bool po = is_primary_output(design, id);

    if (node.type == GateType::Input) {
      map[id].node = out.declare(GateType::Input, node.name);
      continue;
    }
    if (node.type == GateType::Dff) {
      map[id].node = out.declare(GateType::Dff, node.name);
      continue;
    }
    if (node.type == GateType::Const0 || node.type == GateType::Const1) {
      if (po) {
        map[id].node = out.add_gate(node.type, node.name, {});
      } else {
        map[id].constant = node.type == GateType::Const1;
        if (stats) ++stats->constants_folded;
      }
      continue;
    }

    // Gather fanins, folding constants per gate semantics.
    bool forced = false;
    bool forced_value = false;
    bool parity_flip = false;
    std::vector<NodeId> live;
    for (NodeId f : node.fanins) {
      const Mapped& m = map[f];
      if (!m.constant) {
        live.push_back(m.node);
        continue;
      }
      const bool v = *m.constant;
      switch (node.type) {
        case GateType::And:
        case GateType::Nand:
          if (!v) {
            forced = true;
            forced_value = false;  // AND output before inversion
          }
          break;
        case GateType::Or:
        case GateType::Nor:
          if (v) {
            forced = true;
            forced_value = true;
          }
          break;
        case GateType::Xor:
        case GateType::Xnor:
          if (v) parity_flip = !parity_flip;
          break;
        case GateType::Buf:
        case GateType::Not:
          forced = true;
          forced_value = v;
          break;
        default: break;
      }
    }

    const bool inverting = is_inverting(node.type);
    std::optional<bool> const_result;
    if (forced) {
      const_result = inverting ? !forced_value : forced_value;
      if (node.type == GateType::Not) const_result = !forced_value;
      if (node.type == GateType::Buf) const_result = forced_value;
    } else if (live.empty()) {
      // All inputs were non-forcing constants.
      switch (node.type) {
        case GateType::And: const_result = true; break;   // empty AND
        case GateType::Nand: const_result = false; break;
        case GateType::Or: const_result = false; break;
        case GateType::Nor: const_result = true; break;
        case GateType::Xor: const_result = parity_flip; break;
        case GateType::Xnor: const_result = !parity_flip; break;
        default: const_result = false; break;
      }
    }

    if (const_result) {
      if (po) {
        map[id].node = out.add_gate(
            *const_result ? GateType::Const1 : GateType::Const0, node.name, {});
      } else {
        map[id].constant = *const_result;
      }
      if (stats) ++stats->constants_folded;
      continue;
    }

    // Some live inputs remain: rebuild, possibly simplified.
    GateType type = node.type;
    if (live.size() == 1) {
      // Single-operand reduction per family: AND(x)=OR(x)=x,
      // NAND(x)=NOR(x)=!x, XOR folds its constant parity.
      bool needs_not = false;
      switch (type) {
        case GateType::And:
        case GateType::Or:
        case GateType::Buf: needs_not = false; break;
        case GateType::Nand:
        case GateType::Nor:
        case GateType::Not: needs_not = true; break;
        case GateType::Xor: needs_not = parity_flip; break;
        case GateType::Xnor: needs_not = !parity_flip; break;
        default: break;
      }
      map[id].node =
          out.add_gate(needs_not ? GateType::Not : GateType::Buf, node.name, {live[0]});
      continue;
    }
    // Multiple live inputs: XOR parity flips toggle the gate's inversion.
    if ((type == GateType::Xor && parity_flip)) type = GateType::Xnor;
    else if ((type == GateType::Xnor && parity_flip)) type = GateType::Xor;
    map[id].node = out.add_gate(type, node.name, std::move(live));
  }

  for (NodeId q : design.dffs()) {
    const Node& node = design.node(q);
    if (node.fanins.empty()) continue;
    const Mapped& m = map[node.fanins[0]];
    const NodeId d = materialize(m, node.name + ".const");
    out.connect(map[q].node, {d});
  }
  for (NodeId po : design.primary_outputs()) {
    out.mark_output(map[po].node);  // POs were always materialized above
  }
  out.validate();
  return out;
}

}  // namespace spsta::netlist
