#include "netlist/cell_library.hpp"

#include <cctype>
#include <sstream>

namespace spsta::netlist {

CellLibraryParseError::CellLibraryParseError(std::size_t line, const std::string& message)
    : std::runtime_error("celllib:" + std::to_string(line) + ": " + message),
      line_(line) {}

CellLibrary CellLibrary::parse(std::string_view text) {
  CellLibrary lib;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);

    std::istringstream in{std::string(raw)};
    std::string name;
    if (!(in >> name)) continue;  // blank line

    CellTiming t;
    if (!(in >> t.mean >> t.sigma >> t.load_coeff)) {
      throw CellLibraryParseError(line_no,
                                  "expected '<type> <mean> <sigma> <load_coeff>'");
    }
    std::string extra;
    if (in >> extra) {
      throw CellLibraryParseError(line_no, "trailing token '" + extra + "'");
    }
    if (t.mean < 0.0 || t.sigma < 0.0) {
      throw CellLibraryParseError(line_no, "negative delay parameters");
    }

    if (name == "default" || name == "DEFAULT") {
      lib.default_ = t;
      continue;
    }
    const auto type = parse_gate_type(name);
    if (!type || *type == GateType::Input) {
      throw CellLibraryParseError(line_no, "unknown cell type '" + name + "'");
    }
    lib.entries_[static_cast<std::size_t>(*type)] = t;
  }
  return lib;
}

std::optional<CellTiming> CellLibrary::timing(GateType type) const {
  return entries_[static_cast<std::size_t>(type)];
}

void CellLibrary::set_timing(GateType type, CellTiming t) {
  entries_[static_cast<std::size_t>(type)] = t;
}

stats::Gaussian CellLibrary::delay_of(const Netlist& design, NodeId id) const {
  const Node& node = design.node(id);
  if (!is_combinational(node.type) || node.type == GateType::Const0 ||
      node.type == GateType::Const1) {
    return {0.0, 0.0};
  }
  const CellTiming t = entries_[static_cast<std::size_t>(node.type)].value_or(default_);
  const double load = static_cast<double>(node.fanouts.size());
  return {t.mean + t.load_coeff * load, t.sigma * t.sigma};
}

DelayModel CellLibrary::apply(const Netlist& design) const {
  DelayModel model(design);
  for (NodeId id = 0; id < design.node_count(); ++id) {
    model.set_delay(id, delay_of(design, id));
  }
  return model;
}

std::string CellLibrary::to_text() const {
  std::ostringstream out;
  out << "# type mean sigma load_coeff\n";
  for (std::size_t i = 0; i < kTypes; ++i) {
    if (!entries_[i]) continue;
    const CellTiming& t = *entries_[i];
    out << to_string(static_cast<GateType>(i)) << ' ' << t.mean << ' ' << t.sigma << ' '
        << t.load_coeff << '\n';
  }
  out << "default " << default_.mean << ' ' << default_.sigma << ' '
      << default_.load_coeff << '\n';
  return out.str();
}

}  // namespace spsta::netlist
