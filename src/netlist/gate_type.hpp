/// \file gate_type.hpp
/// Gate/node kinds of the ISCAS'89 netlist model and their logical traits
/// (controlling values, inversion, Boolean evaluation).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace spsta::netlist {

/// Node kinds. `Input` is a primary input; `Dff` represents a flip-flop
/// whose output acts as a combinational timing source and whose single
/// fanin (the D pin) is a timing endpoint.
enum class GateType : std::uint8_t {
  Input,
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Const0,
  Const1,
  Dff,
};

/// Canonical upper-case mnemonic (matches .bench spelling, e.g. "NAND").
[[nodiscard]] std::string_view to_string(GateType t) noexcept;

/// Parses a .bench gate mnemonic (case-insensitive; accepts "BUF"/"BUFF").
/// Returns nullopt for unknown mnemonics.
[[nodiscard]] std::optional<GateType> parse_gate_type(std::string_view s) noexcept;

/// True for AND/NAND/OR/NOR: gates with a controlling input value.
[[nodiscard]] bool has_controlling_value(GateType t) noexcept;

/// The controlling input value of AND/NAND (false) or OR/NOR (true).
/// Precondition: has_controlling_value(t).
[[nodiscard]] bool controlling_value(GateType t) noexcept;

/// True for NOT/NAND/NOR/XNOR: the gate inverts (its non-controlled output
/// value is the inversion of the non-controlling input value).
[[nodiscard]] bool is_inverting(GateType t) noexcept;

/// True if the node kind evaluates a Boolean function of its fanins
/// (everything except Input/Dff, which are sequential/primary sources).
[[nodiscard]] bool is_combinational(GateType t) noexcept;

/// Evaluates the gate on Boolean inputs. Const0/Const1 ignore inputs;
/// Buf/Not/Dff use exactly one input. Precondition: is_combinational(t) or
/// t == Dff (a Dff forwards its input, used by sequential sweeps), and
/// `inputs` is non-empty for non-constant gates.
[[nodiscard]] bool eval_gate(GateType t, std::span<const bool> inputs) noexcept;

/// Valid fanin-count range for the node kind, e.g. {1,1} for NOT,
/// {2, unbounded} for AND. Inputs/constants are {0,0}.
struct ArityRange {
  std::size_t min = 0;
  std::size_t max = 0;  ///< 0 together with min==0 means "exactly zero"; SIZE_MAX = unbounded.
};
[[nodiscard]] ArityRange arity_range(GateType t) noexcept;

}  // namespace spsta::netlist
