#include "ssta/path_ssta.hpp"

#include <algorithm>

#include "core/compiled_design.hpp"

namespace spsta::ssta {

using netlist::NodeId;
using stats::Gaussian;

PathSstaResult run_path_ssta(const netlist::Netlist& design,
                             const netlist::DelayModel& delays,
                             const Gaussian& source_arrival, std::size_t k) {
  const std::vector<double> means = delays.means();
  const std::vector<netlist::Path> structural = netlist::critical_paths(design, means, k);

  PathSstaResult result;
  result.paths.reserve(structural.size());
  for (const netlist::Path& p : structural) {
    Gaussian d = source_arrival;
    for (NodeId id : p.nodes) d = stats::sum(d, delays.delay(id));
    result.paths.push_back({p, d, 0.0});
  }
  std::stable_sort(result.paths.begin(), result.paths.end(),
                   [](const PathTiming& a, const PathTiming& b) {
                     return a.delay.mean > b.delay.mean;
                   });

  if (result.paths.empty()) return result;

  // Pairwise covariance from shared gates (each gate's delay variance is
  // common to every path through it). The running max folds paths in with
  // Clark, using the covariance against the accumulated max approximated
  // by the covariance against the heaviest path folded so far.
  const auto shared_cov = [&](const PathTiming& a, const PathTiming& b) {
    double cov = source_arrival.var;  // all endpoint paths share the source arrival
    std::size_t i = 0;
    // Paths are node id sequences; shared gates found via sorted copies.
    std::vector<NodeId> sa = a.path.nodes, sb = b.path.nodes;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    std::size_t j = 0;
    while (i < sa.size() && j < sb.size()) {
      if (sa[i] == sb[j]) {
        cov += delays.delay(sa[i]).var;
        ++i;
        ++j;
      } else if (sa[i] < sb[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return cov;
  };

  Gaussian running = result.paths[0].delay;
  std::vector<double> tightness(result.paths.size(), 0.0);
  tightness[0] = 1.0;
  for (std::size_t i = 1; i < result.paths.size(); ++i) {
    const double cov = shared_cov(result.paths[i - 1], result.paths[i]);
    const stats::ClarkResult cr = stats::clark_max(running, result.paths[i].delay, cov);
    // The new path is critical when it beats the running max.
    const double p_new = 1.0 - cr.tightness;
    for (std::size_t j = 0; j < i; ++j) tightness[j] *= cr.tightness;
    tightness[i] = p_new;
    running = cr.moments;
  }
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    result.paths[i].criticality = tightness[i];
  }
  result.max_delay = running;
  return result;
}

PathSstaResult run_path_ssta(const core::CompiledDesign& plan,
                             const Gaussian& source_arrival, std::size_t k) {
  return run_path_ssta(plan.design(), plan.delays(), source_arrival, k);
}

}  // namespace spsta::ssta
