#include "ssta/slew.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/levelize.hpp"

namespace spsta::ssta {

using netlist::GateType;
using netlist::NodeId;

void SlewModel::set_cell(GateType type, const SlewCell& cell) {
  entries_[static_cast<std::size_t>(type)] = cell;
}

const SlewCell& SlewModel::cell(GateType type) const {
  const auto& entry = entries_[static_cast<std::size_t>(type)];
  return entry ? *entry : default_;
}

netlist::DelayModel SlewResult::to_delay_model(const netlist::Netlist& design) const {
  netlist::DelayModel model(design);
  for (NodeId id = 0; id < design.node_count(); ++id) {
    model.set_delay(id, {delay.at(id), 0.0});
  }
  return model;
}

SlewResult propagate_slews(const netlist::Netlist& design, const SlewModel& model,
                           std::span<const double> source_slews) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_slews.size() != sources.size() && source_slews.size() != 1) {
    throw std::invalid_argument("propagate_slews: source slew count mismatch");
  }

  SlewResult out;
  out.slew.assign(design.node_count(), 0.0);
  out.delay.assign(design.node_count(), 0.0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.slew[sources[i]] =
        source_slews.size() == 1 ? source_slews[0] : source_slews[i];
  }

  const netlist::Levelization lv = netlist::levelize(design);
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    if (node.type == GateType::Const0 || node.type == GateType::Const1) {
      continue;  // constants: zero slew, zero delay
    }
    double slew_in = 0.0;
    for (NodeId f : node.fanins) slew_in = std::max(slew_in, out.slew[f]);
    const SlewCell& cell = model.cell(node.type);
    const double load = static_cast<double>(node.fanouts.size());
    out.delay[id] = cell.d0 + cell.d_slew * slew_in + cell.d_load * load;
    out.slew[id] = cell.s0 + cell.s_slew * slew_in + cell.s_load * load;
  }
  return out;
}

}  // namespace spsta::ssta
