/// \file path_ssta.hpp
/// Path-based SSTA over extracted near-critical paths (paper Sec. 1
/// background, refs [18,19]): per-path delay distributions with shared-
/// segment correlation, plus path criticality probabilities from cascaded
/// Clark tightness.

#pragma once

#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/graph.hpp"
#include "netlist/netlist.hpp"
#include "stats/gaussian.hpp"

namespace spsta::core {
class CompiledDesign;
}

namespace spsta::ssta {

/// One analyzed path.
struct PathTiming {
  netlist::Path path;
  /// Delay distribution of the whole path (sum of its gates' delays; the
  /// source arrival is taken as the rise arrival of the path's source).
  stats::Gaussian delay;
  /// Approximate probability this path is the circuit-critical one
  /// (cascaded Clark tightness over the path set).
  double criticality = 0.0;
};

/// Result of path-based analysis.
struct PathSstaResult {
  std::vector<PathTiming> paths;  ///< sorted by decreasing mean delay
  /// Moment-matched distribution of the max over all analyzed paths,
  /// including pairwise correlation from shared path segments.
  stats::Gaussian max_delay;
};

/// Analyzes the \p k structurally most critical endpoint paths. Pairwise
/// path covariances equal the summed delay variances of shared gates.
/// (Implementation-level; application code goes through the Analyzer
/// facade in spsta_api.hpp.)
[[nodiscard]] PathSstaResult run_path_ssta(const netlist::Netlist& design,
                                           const netlist::DelayModel& delays,
                                           const stats::Gaussian& source_arrival,
                                           std::size_t k);

/// Same over a precompiled plan (path extraction is per-k and stays
/// uncached; the plan supplies the netlist and frozen delay model).
[[nodiscard]] PathSstaResult run_path_ssta(const core::CompiledDesign& plan,
                                           const stats::Gaussian& source_arrival,
                                           std::size_t k);

}  // namespace spsta::ssta
