#include "ssta/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spsta::ssta {

using netlist::NodeId;

namespace {
bool nearly_equal(const stats::Gaussian& a, const stats::Gaussian& b) {
  constexpr double kEps = 1e-12;
  return std::abs(a.mean - b.mean) <= kEps && std::abs(a.var - b.var) <= kEps;
}

std::vector<std::uint32_t> narrow_levels(const std::vector<std::size_t>& level) {
  std::vector<std::uint32_t> out(level.size());
  for (std::size_t i = 0; i < level.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(level[i]);
  }
  return out;
}
}  // namespace

IncrementalSsta::IncrementalSsta(const netlist::Netlist& design,
                                 netlist::DelayModel delays,
                                 std::span<const netlist::SourceStats> source_stats)
    : design_(design), delays_(std::move(delays)) {
  const std::vector<NodeId> sources = design_.timing_sources();
  if (source_stats.size() != sources.size() && source_stats.size() != 1) {
    throw std::invalid_argument("IncrementalSsta: source stats count mismatch");
  }
  source_stats_.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    source_stats_.push_back(source_stats.size() == 1 ? source_stats[0]
                                                     : source_stats[i]);
  }

  const netlist::Levelization levels = netlist::levelize(design);
  frontier_.reset(narrow_levels(levels.level));

  // Initial full propagation.
  arrival_.assign(design_.node_count(), NodeArrival{});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    arrival_[sources[i]] = {source_stats_[i].rise_arrival, source_stats_[i].fall_arrival};
  }
  for (NodeId id : levels.order) {
    if (!netlist::is_combinational(design_.node(id).type)) continue;
    arrival_[id] = propagate_gate_arrival(design_, id, arrival_, delays_);
  }
}

void IncrementalSsta::mark_dirty(NodeId id) { (void)frontier_.mark(id); }

bool IncrementalSsta::recompute(NodeId id) {
  const NodeArrival updated = propagate_gate_arrival(design_, id, arrival_, delays_);
  ++nodes_reevaluated_;
  if (nearly_equal(updated.rise, arrival_[id].rise) &&
      nearly_equal(updated.fall, arrival_[id].fall)) {
    return false;
  }
  arrival_[id] = updated;
  return true;
}

void IncrementalSsta::propagate_dirty() {
  while (frontier_.any()) {
    frontier_.take_level(frontier_.first_level(), wave_ids_);
    for (const NodeId id : wave_ids_) {
      if (!recompute(id)) continue;
      for (NodeId fo : design_.node(id).fanouts) {
        if (!netlist::is_combinational(design_.node(fo).type)) continue;  // D pin
        mark_dirty(fo);
      }
    }
  }
}

const NodeArrival& IncrementalSsta::arrival(NodeId id) {
  propagate_dirty();
  return arrival_.at(id);
}

const std::vector<NodeArrival>& IncrementalSsta::flush() {
  propagate_dirty();
  return arrival_;
}

void IncrementalSsta::set_delay(NodeId id, const stats::Gaussian& delay) {
  if (id >= design_.node_count()) {
    throw std::invalid_argument("IncrementalSsta::set_delay: bad node id");
  }
  if (nearly_equal(delays_.delay(id), delay)) return;
  delays_.set_delay(id, delay);
  if (netlist::is_combinational(design_.node(id).type)) {
    mark_dirty(id);
  }
}

void IncrementalSsta::set_source_arrival(std::size_t source_index,
                                         const stats::Gaussian& rise,
                                         const stats::Gaussian& fall) {
  const std::vector<NodeId> sources = design_.timing_sources();
  if (source_index >= sources.size()) {
    throw std::invalid_argument("IncrementalSsta::set_source_arrival: bad index");
  }
  source_stats_[source_index].rise_arrival = rise;
  source_stats_[source_index].fall_arrival = fall;
  const NodeId src = sources[source_index];
  arrival_[src] = {rise, fall};
  for (NodeId fo : design_.node(src).fanouts) {
    if (!netlist::is_combinational(design_.node(fo).type)) continue;
    mark_dirty(fo);
  }
}

}  // namespace spsta::ssta
