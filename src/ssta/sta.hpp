/// \file sta.hpp
/// Deterministic static timing analysis — the paper's introduction
/// categories (1) and (2): traditional min/max analysis (separate earliest
/// and latest arrivals) and corner-based analysis (min and max propagated
/// simultaneously so both bounds are available per node), plus the
/// required-time/slack machinery (WNS/TNS) downstream tools expect.

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"

namespace spsta::core {
class CompiledDesign;
}

namespace spsta::ssta {

/// Earliest/latest arrival bounds of one net (a "corner pair").
struct ArrivalBounds {
  double earliest = 0.0;
  double latest = 0.0;
};

/// STA corner configuration: gate delays evaluated at mean + k*sigma for
/// the late corner and mean - k*sigma for the early corner (k = 0 gives
/// the classical single-corner analysis).
struct StaConfig {
  double k_sigma = 0.0;
  /// Source arrival window applied to every timing source.
  ArrivalBounds source_arrival{0.0, 0.0};
  /// Hold requirement at endpoints: the earliest arrival must be at least
  /// this (captures the classical min-delay check).
  double hold_time = 0.0;
};

/// Full STA state.
struct StaResult {
  std::vector<ArrivalBounds> arrival;     ///< per node
  std::vector<ArrivalBounds> required;    ///< per node (latest-required, earliest-required)
  std::vector<double> slack;              ///< per node: required.latest - arrival.latest
  double wns = 0.0;                       ///< worst negative setup slack over endpoints
  double tns = 0.0;                       ///< total negative setup slack over endpoints
  double hold_wns = 0.0;                  ///< worst negative hold slack over endpoints
  double critical_delay = 0.0;            ///< max latest arrival over endpoints
  double shortest_delay = 0.0;            ///< min earliest arrival over endpoints

  [[nodiscard]] bool meets_timing() const noexcept {
    return wns >= 0.0 && hold_wns >= 0.0;
  }
};

/// Corner STA on a precompiled plan (implementation-level; application
/// code goes through the Analyzer facade in spsta_api.hpp). Reuses the
/// plan's levelization and endpoint list.
[[nodiscard]] StaResult run_sta(const core::CompiledDesign& plan, double period,
                                const StaConfig& config = {});

/// Runs corner STA against a clock period: arrivals forward, required
/// times backward from `period` at every timing endpoint, slack per node.
/// Thin compile-then-run wrapper.
[[nodiscard]] StaResult run_sta(const netlist::Netlist& design,
                                const netlist::DelayModel& delays, double period,
                                const StaConfig& config = {});

/// Nodes on some critical (zero-worst-slack) path, in topological order —
/// the classical critical-path report.
[[nodiscard]] std::vector<netlist::NodeId> critical_nodes(const netlist::Netlist& design,
                                                          const StaResult& sta,
                                                          double tolerance = 1e-9);

}  // namespace spsta::ssta
