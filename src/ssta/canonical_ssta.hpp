/// \file canonical_ssta.hpp
/// Parameterized block-based SSTA over canonical first-order forms (the
/// paper's Sec. 1 background refs [14, 25]): gate delays decompose into a
/// die-to-die global component, per-type regional components, and an
/// independent random residual, so arrival times carry their correlation
/// structure through Clark MAX/MIN. This is what "corner cannot be
/// enumerated" engines deploy; it contrasts with plain moment SSTA (which
/// forgets correlation at every merge) in the ablation benches.

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "variational/canonical.hpp"

namespace spsta::ssta {

/// How each gate's delay variance splits across parameters.
struct VariationModel {
  /// Fraction of each gate's delay *variance* assigned to the single
  /// die-to-die parameter (perfectly correlated across all gates).
  double global_fraction = 0.5;
  /// Fraction assigned to a per-gate-type parameter (correlated among
  /// same-type gates; models systematic per-cell variation).
  double per_type_fraction = 0.0;
  /// The remainder is an independent per-gate residual.
};

/// Canonical rise/fall arrivals per node.
struct CanonicalArrival {
  variational::CanonicalForm rise;
  variational::CanonicalForm fall;
};

/// Result: arrivals plus the parameter layout.
struct CanonicalSstaResult {
  std::vector<CanonicalArrival> arrival;
  /// Parameter 0: die-to-die. Parameters 1..: one per gate type (when
  /// per_type_fraction > 0), then 2 per source (rise/fall arrivals).
  std::size_t num_params = 0;
  std::size_t first_source_param = 0;

  /// Correlation of two nodes' rise arrivals through shared parameters.
  [[nodiscard]] double rise_correlation(netlist::NodeId a, netlist::NodeId b) const;
};

/// Runs canonical SSTA. Source arrival distributions come from
/// \p source_stats (value probabilities ignored, as in plain SSTA).
[[nodiscard]] CanonicalSstaResult run_canonical_ssta(
    const netlist::Netlist& design, const netlist::DelayModel& delays,
    std::span<const netlist::SourceStats> source_stats,
    const VariationModel& variation = {});

}  // namespace spsta::ssta
