#include "ssta/node_criticality.hpp"

#include <array>
#include <stdexcept>

#include "netlist/levelize.hpp"

namespace spsta::ssta {

using netlist::GateType;
using netlist::NodeId;
using stats::Gaussian;

namespace {

/// One contribution to a gate-lane merge: which fanin, through which of
/// the fanin's lanes, and the probability that contribution won the merge.
struct MergeShare {
  NodeId fanin = netlist::kInvalidNode;
  bool fanin_rising = true;
  double win = 0.0;
};

}  // namespace

NodeCriticality compute_node_criticality(const netlist::Netlist& design,
                                         const netlist::DelayModel& delays,
                                         std::span<const netlist::SourceStats> source_stats) {
  NodeCriticality out;
  out.ssta = run_ssta(design, delays, source_stats);
  const std::size_t n = design.node_count();

  // Forward: per gate and lane, the per-contribution win probabilities.
  // merge[node][lane]: lane 0 = rise, 1 = fall.
  std::vector<std::array<std::vector<MergeShare>, 2>> merge(n);
  const netlist::Levelization lv = netlist::levelize(design);
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type) || node.fanins.empty()) continue;
    const bool inverted = inputs_inverted(node.type);
    for (const bool output_rising : {true, false}) {
      const ArrivalOp op = arrival_op(node.type, output_rising);
      std::vector<MergeShare>& shares = merge[id][output_rising ? 0 : 1];
      Gaussian acc;
      bool first = true;
      for (NodeId f : node.fanins) {
        const NodeArrival& in = out.ssta.arrival[f];
        Gaussian contrib;
        MergeShare share;
        share.fanin = f;
        if (node.type == GateType::Xor || node.type == GateType::Xnor) {
          // The input contributes through whichever lane wins its local max.
          const stats::ClarkResult lanes = stats::clark_max(in.rise, in.fall);
          contrib = lanes.moments;
          share.fanin_rising = lanes.tightness >= 0.5;
          // Split precisely below once the merge share is known; store the
          // rise share in `win`'s complement via a second entry.
          // Handled after the fold; keep the lane split probability here.
          share.win = lanes.tightness;  // temporarily: P(rise lane wins locally)
        } else {
          const bool take_rise = output_rising != inverted;
          contrib = take_rise ? in.rise : in.fall;
          share.fanin_rising = take_rise;
          share.win = 1.0;  // placeholder until fold assigns probabilities
        }
        if (first) {
          acc = contrib;
          first = false;
          shares.push_back(share);
          shares.back().win = 1.0;  // sole contributor so far
          if (node.type == GateType::Xor || node.type == GateType::Xnor) {
            // Re-split between the input's lanes.
            const stats::ClarkResult lanes = stats::clark_max(in.rise, in.fall);
            shares.back().fanin_rising = true;
            shares.back().win = lanes.tightness;
            MergeShare fall_share = share;
            fall_share.fanin_rising = false;
            fall_share.win = 1.0 - lanes.tightness;
            shares.push_back(fall_share);
          }
        } else {
          const stats::ClarkResult cr = (op == ArrivalOp::Max)
                                            ? stats::clark_max(acc, contrib)
                                            : stats::clark_min(acc, contrib);
          // Existing shares scale by P(acc side wins); the new contribution
          // takes the complement.
          for (MergeShare& s : shares) s.win *= cr.tightness;
          const double new_win = 1.0 - cr.tightness;
          if (node.type == GateType::Xor || node.type == GateType::Xnor) {
            const stats::ClarkResult lanes = stats::clark_max(in.rise, in.fall);
            MergeShare rise_share{f, true, new_win * lanes.tightness};
            MergeShare fall_share{f, false, new_win * (1.0 - lanes.tightness)};
            shares.push_back(rise_share);
            shares.push_back(fall_share);
          } else {
            MergeShare s = share;
            s.win = new_win;
            shares.push_back(s);
          }
          acc = cr.moments;
        }
      }
    }
  }

  // Endpoint seeding: probability each endpoint's rise arrival is the
  // circuit-latest (Clark cascade over endpoints).
  out.endpoint_criticality.assign(n, 0.0);
  const std::vector<NodeId> endpoints = design.timing_endpoints();
  if (!endpoints.empty()) {
    std::vector<double> win(endpoints.size(), 0.0);
    Gaussian running = out.ssta.arrival[endpoints[0]].rise;
    win[0] = 1.0;
    for (std::size_t i = 1; i < endpoints.size(); ++i) {
      const stats::ClarkResult cr =
          stats::clark_max(running, out.ssta.arrival[endpoints[i]].rise);
      for (std::size_t j = 0; j < i; ++j) win[j] *= cr.tightness;
      win[i] = 1.0 - cr.tightness;
      running = cr.moments;
    }
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      out.endpoint_criticality[endpoints[i]] += win[i];
    }
  }

  // Backward sweep over (node, lane) criticalities.
  std::vector<std::array<double, 2>> crit(n, {0.0, 0.0});
  for (NodeId ep : endpoints) crit[ep][0] += out.endpoint_criticality[ep];
  for (auto it = lv.order.rbegin(); it != lv.order.rend(); ++it) {
    const NodeId id = *it;
    for (int lane = 0; lane < 2; ++lane) {
      const double c = crit[id][lane];
      if (c <= 0.0) continue;
      for (const MergeShare& s : merge[id][lane]) {
        crit[s.fanin][s.fanin_rising ? 0 : 1] += c * s.win;
      }
    }
  }

  out.criticality.assign(n, 0.0);
  for (NodeId id = 0; id < n; ++id) {
    out.criticality[id] = std::min(1.0, crit[id][0] + crit[id][1]);
  }
  return out;
}

}  // namespace spsta::ssta
