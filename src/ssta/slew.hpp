/// \file slew.hpp
/// Transition-time (slew) propagation: the signal-integrity dimension of
/// static timing. Gate delay and output slew both depend on the input
/// slew and the output load, so slews must be propagated before delays
/// are credible; this module computes both in one pass and can emit a
/// slew-aware DelayModel for every statistical engine in the library.
///
/// Linear cell model per gate type:
///   delay      = d0 + d_slew * slew_in + d_load * fanout
///   slew_out   = s0 + s_slew * slew_in + s_load * fanout
/// with slew_in the worst (largest) fanin slew — the standard pessimistic
/// convention. s_slew must stay below 1 for slews to settle along long
/// paths.

#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"

namespace spsta::ssta {

/// Linear slew/delay coefficients of one cell type.
struct SlewCell {
  double d0 = 1.0;       ///< intrinsic delay
  double d_slew = 0.1;   ///< delay per unit input slew
  double d_load = 0.05;  ///< delay per fanout
  double s0 = 0.2;       ///< intrinsic output slew
  double s_slew = 0.3;   ///< output slew per unit input slew
  double s_load = 0.1;   ///< output slew per fanout
};

/// Per-type coefficient table with a default row.
class SlewModel {
 public:
  void set_cell(netlist::GateType type, const SlewCell& cell);
  void set_default(const SlewCell& cell) { default_ = cell; }
  /// The effective cell for a type (its entry or the default).
  [[nodiscard]] const SlewCell& cell(netlist::GateType type) const;

 private:
  static constexpr std::size_t kTypes =
      static_cast<std::size_t>(netlist::GateType::Dff) + 1;
  std::array<std::optional<SlewCell>, kTypes> entries_{};
  SlewCell default_;
};

/// Result of slew propagation.
struct SlewResult {
  /// Worst slew per node (sources get the configured input slew).
  std::vector<double> slew;
  /// Slew-aware deterministic delay per node.
  std::vector<double> delay;

  /// Packs the delays into a DelayModel (zero variance) for the
  /// statistical engines.
  [[nodiscard]] netlist::DelayModel to_delay_model(const netlist::Netlist& design) const;
};

/// Propagates slews and slew-aware delays through \p design.
/// \p source_slews follows design.timing_sources() order (single element
/// broadcasts).
[[nodiscard]] SlewResult propagate_slews(const netlist::Netlist& design,
                                         const SlewModel& model,
                                         std::span<const double> source_slews);

}  // namespace spsta::ssta
