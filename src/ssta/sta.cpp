#include "ssta/sta.hpp"

#include <algorithm>
#include <limits>

#include "core/compiled_design.hpp"
#include "netlist/levelize.hpp"

namespace spsta::ssta {

using netlist::NodeId;

StaResult run_sta(const core::CompiledDesign& plan, double period,
                  const StaConfig& config) {
  const netlist::DelayModel& delays = plan.delays();
  const std::size_t n = plan.node_count();
  StaResult out;
  out.arrival.assign(n, config.source_arrival);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  out.required.assign(n, ArrivalBounds{-kInf, kInf});  // {earliest-req, latest-req}
  out.slack.assign(n, kInf);

  const netlist::Levelization& lv = plan.levelization();

  // Per-node corner delays; directional models take the worse direction
  // for the late corner and the better one for the early corner.
  const auto late_delay = [&](NodeId id) {
    const stats::Gaussian& r = delays.delay(id, true);
    const stats::Gaussian& f = delays.delay(id, false);
    return std::max(r.mean + config.k_sigma * r.stddev(),
                    f.mean + config.k_sigma * f.stddev());
  };
  const auto early_delay = [&](NodeId id) {
    const stats::Gaussian& r = delays.delay(id, true);
    const stats::Gaussian& f = delays.delay(id, false);
    return std::max(0.0, std::min(r.mean - config.k_sigma * r.stddev(),
                                  f.mean - config.k_sigma * f.stddev()));
  };

  // Forward: earliest/latest arrivals with early/late corner delays.
  for (NodeId id : lv.order) {
    if (!plan.combinational(id)) continue;
    const std::span<const NodeId> fanins = plan.fanins(id);
    if (fanins.empty()) {
      out.arrival[id] = {0.0, 0.0};
      continue;
    }
    double earliest = kInf, latest = -kInf;
    for (NodeId f : fanins) {
      earliest = std::min(earliest, out.arrival[f].earliest);
      latest = std::max(latest, out.arrival[f].latest);
    }
    out.arrival[id] = {earliest + early_delay(id), latest + late_delay(id)};
  }

  // Required times: `period` at every endpoint, propagated backward
  // through late-corner delays (single-required-time convention; the
  // `required` field keeps {earliest-req, latest-req} symmetry for hold-
  // style extensions but setup slack uses the latest lane).
  std::vector<double> required_late(n, kInf);
  for (NodeId ep : plan.timing_endpoints()) {
    required_late[ep] = std::min(required_late[ep], period);
  }
  for (auto it = lv.order.rbegin(); it != lv.order.rend(); ++it) {
    const NodeId id = *it;
    if (!plan.combinational(id)) continue;
    if (required_late[id] == kInf) continue;
    const double through = required_late[id] - late_delay(id);
    for (NodeId f : plan.fanins(id)) {
      required_late[f] = std::min(required_late[f], through);
    }
  }

  double critical = -kInf;
  for (NodeId id = 0; id < n; ++id) {
    out.required[id] = {-kInf, required_late[id]};
    out.slack[id] = required_late[id] == kInf
                        ? kInf
                        : required_late[id] - out.arrival[id].latest;
  }
  out.wns = kInf;
  out.tns = 0.0;
  out.hold_wns = kInf;
  double shortest = kInf;
  bool any_endpoint = false;
  for (NodeId ep : plan.timing_endpoints()) {
    any_endpoint = true;
    critical = std::max(critical, out.arrival[ep].latest);
    shortest = std::min(shortest, out.arrival[ep].earliest);
    const double s = period - out.arrival[ep].latest;
    out.wns = std::min(out.wns, s);
    if (s < 0.0) out.tns += s;
    out.hold_wns = std::min(out.hold_wns, out.arrival[ep].earliest - config.hold_time);
  }
  out.critical_delay = any_endpoint ? critical : 0.0;
  out.shortest_delay = any_endpoint ? shortest : 0.0;
  if (!any_endpoint) {
    out.wns = 0.0;
    out.hold_wns = 0.0;
  }
  return out;
}

StaResult run_sta(const netlist::Netlist& design, const netlist::DelayModel& delays,
                  double period, const StaConfig& config) {
  return run_sta(core::CompiledDesign(design, delays), period, config);
}

std::vector<NodeId> critical_nodes(const netlist::Netlist& design, const StaResult& sta,
                                   double tolerance) {
  double worst = std::numeric_limits<double>::infinity();
  for (NodeId id = 0; id < design.node_count(); ++id) {
    worst = std::min(worst, sta.slack[id]);
  }
  std::vector<NodeId> nodes;
  const netlist::Levelization lv = netlist::levelize(design);
  for (NodeId id : lv.order) {
    if (sta.slack[id] <= worst + tolerance) nodes.push_back(id);
  }
  return nodes;
}

}  // namespace spsta::ssta
