/// \file incremental.hpp
/// Incremental block-based SSTA. The paper's background (Sec. 1) credits
/// block-based SSTA with being "efficient, incremental, and suitable for
/// optimization": after a local change (a gate delay update, new source
/// statistics), only the transitive fanout of the change needs
/// re-propagation. This engine keeps the full arrival state and applies
/// exactly that cone update, tracking how many nodes each update visited.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/levelize.hpp"
#include "ssta/ssta.hpp"
#include "util/dirty_frontier.hpp"

namespace spsta::ssta {

/// Incremental SSTA session over a fixed netlist topology.
///
/// Usage:
///   IncrementalSsta inc(design, delays, stats);   // full analysis
///   inc.set_delay(gate, {1.2, 0.01});             // marks the cone dirty
///   inc.arrival(endpoint);                        // lazy cone update
class IncrementalSsta {
 public:
  /// Runs the initial full analysis.
  IncrementalSsta(const netlist::Netlist& design, netlist::DelayModel delays,
                  std::span<const netlist::SourceStats> source_stats);

  /// Current arrival at \p id, updating any dirty portion of its fanin
  /// cone first (lazy evaluation in level order).
  [[nodiscard]] const NodeArrival& arrival(netlist::NodeId id);

  /// Updates all dirty nodes and returns the full state.
  [[nodiscard]] const std::vector<NodeArrival>& flush();

  /// Changes one gate's delay distribution; dirties its fanout cone.
  void set_delay(netlist::NodeId id, const stats::Gaussian& delay);

  /// Changes one timing source's rise/fall arrival statistics; dirties
  /// its fanout cone. \p source_index follows design.timing_sources().
  void set_source_arrival(std::size_t source_index, const stats::Gaussian& rise,
                          const stats::Gaussian& fall);

  /// Nodes re-evaluated by update work since construction (the initial
  /// full pass is not counted). The efficiency meter tests and benches
  /// assert on.
  [[nodiscard]] std::uint64_t nodes_reevaluated() const noexcept {
    return nodes_reevaluated_;
  }

  [[nodiscard]] const netlist::Netlist& design() const noexcept { return design_; }

 private:
  void mark_dirty(netlist::NodeId id);
  void propagate_dirty();
  /// Recomputes one node from its fanins; returns true if it changed.
  bool recompute(netlist::NodeId id);

  const netlist::Netlist& design_;
  netlist::DelayModel delays_;
  std::vector<netlist::SourceStats> source_stats_;
  /// Shared level-bucketed dirty set (util::DirtyFrontier): the same
  /// mark/dedup/level-window bookkeeping the core incremental engine uses.
  util::DirtyFrontier frontier_;
  std::vector<NodeArrival> arrival_;
  /// Scratch for draining one frontier level at a time.
  std::vector<std::uint32_t> wave_ids_;
  std::uint64_t nodes_reevaluated_ = 0;
};

}  // namespace spsta::ssta
