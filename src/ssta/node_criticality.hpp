/// \file node_criticality.hpp
/// Per-node statistical criticality for block-based SSTA: the probability
/// that a node lies on the circuit's critical path, computed from the
/// tightness probabilities of every Clark MAX/MIN merge (the standard
/// block-based criticality cascade; paper Sec. 1 background credits
/// path-based SSTA with "timing criticality probabilities ... for signoff
/// analysis" — this is the block-based equivalent).
///
/// Two passes: forward SSTA recording each merge's per-input win
/// probabilities, then a backward sweep seeding endpoints with their
/// probability of being the circuit-latest arrival and distributing each
/// node's criticality to the fanin that won its merge.

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "ssta/ssta.hpp"

namespace spsta::ssta {

/// Criticality result for one transition direction (rising by default —
/// the paper's Table 2 headline direction).
struct NodeCriticality {
  /// criticality[node]: P(node is on the critical path), in [0, 1].
  std::vector<double> criticality;
  /// P(endpoint e is the circuit-latest), per node id (0 elsewhere).
  std::vector<double> endpoint_criticality;
  /// The underlying SSTA state.
  SstaResult ssta;
};

/// Computes rising-arrival criticalities for \p design under \p delays and
/// \p source_stats (same conventions as run_ssta).
[[nodiscard]] NodeCriticality compute_node_criticality(
    const netlist::Netlist& design, const netlist::DelayModel& delays,
    std::span<const netlist::SourceStats> source_stats);

}  // namespace spsta::ssta
