/// \file ssta.hpp
/// Block-based statistical static timing analysis — the baseline the paper
/// compares against (Sec. 2.1 and the comparator implemented in Sec. 4):
/// rise and fall arrival-time distributions are kept separate and
/// propagated per gate with either Clark's MAX or MIN moment matching,
/// chosen from the gate's logic and the input transition direction
/// (e.g. AND: output rise = MAX of input rises, output fall = MIN of
/// input falls; inverting gates swap the input direction).
///
/// This analysis is input-statistics-oblivious: it assumes a transition
/// always occurs on every net — the very pessimism SPSTA removes.

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "stats/gaussian.hpp"

namespace spsta::core {
class CompiledDesign;
}

namespace spsta::ssta {

/// Rise/fall arrival distributions of one net.
struct NodeArrival {
  stats::Gaussian rise;
  stats::Gaussian fall;
};

/// Which order statistic a gate applies to the contributing input arrivals
/// for a given output transition direction.
enum class ArrivalOp { Max, Min };

/// The input transition direction that causes the given output direction
/// (true = the gate inverts, so an output rise is caused by input falls).
[[nodiscard]] bool inputs_inverted(netlist::GateType type) noexcept;

/// MAX or MIN for the given gate and output transition direction
/// (output_rising = true for the rising output arrival).
[[nodiscard]] ArrivalOp arrival_op(netlist::GateType type, bool output_rising) noexcept;

/// Full SSTA result: arrival distributions per node id.
struct SstaResult {
  std::vector<NodeArrival> arrival;
};

/// Recomputes one combinational gate's arrival from the current state
/// (the single-gate kernel shared by the batch and incremental engines).
/// Uses per-direction delays when the model carries them.
/// Precondition: is_combinational(node type).
[[nodiscard]] NodeArrival propagate_gate_arrival(const netlist::Netlist& design,
                                                 netlist::NodeId id,
                                                 std::span<const NodeArrival> state,
                                                 const netlist::DelayModel& delays);

/// Runs block-based SSTA on a precompiled plan (implementation-level;
/// application code goes through the Analyzer facade in spsta_api.hpp).
/// Reuses the plan's levelization and cached source list; results are
/// bit-identical to the legacy overload.
[[nodiscard]] SstaResult run_ssta(const core::CompiledDesign& plan,
                                  std::span<const netlist::SourceStats> source_stats);

/// Runs block-based SSTA over \p design. Source arrivals come from
/// \p source_stats (rise_arrival / fall_arrival; the four-value
/// probabilities are deliberately ignored — SSTA is input-oblivious).
/// A single-element span broadcasts. Thin compile-then-run wrapper.
[[nodiscard]] SstaResult run_ssta(const netlist::Netlist& design,
                                  const netlist::DelayModel& delays,
                                  std::span<const netlist::SourceStats> source_stats);

}  // namespace spsta::ssta
