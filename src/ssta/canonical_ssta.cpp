#include "ssta/canonical_ssta.hpp"

#include <cmath>
#include <stdexcept>

#include "netlist/levelize.hpp"
#include "ssta/ssta.hpp"

namespace spsta::ssta {

using netlist::GateType;
using netlist::NodeId;
using variational::CanonicalForm;

double CanonicalSstaResult::rise_correlation(NodeId a, NodeId b) const {
  return variational::correlation(arrival.at(a).rise, arrival.at(b).rise);
}

CanonicalSstaResult run_canonical_ssta(const netlist::Netlist& design,
                                       const netlist::DelayModel& delays,
                                       std::span<const netlist::SourceStats> source_stats,
                                       const VariationModel& variation) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_stats.size() != sources.size() && source_stats.size() != 1) {
    throw std::invalid_argument("run_canonical_ssta: source stats count mismatch");
  }
  if (variation.global_fraction < 0.0 || variation.per_type_fraction < 0.0 ||
      variation.global_fraction + variation.per_type_fraction > 1.0 + 1e-12) {
    throw std::invalid_argument("run_canonical_ssta: variance fractions out of range");
  }

  constexpr std::size_t kNumTypes = static_cast<std::size_t>(GateType::Dff) + 1;
  const bool with_type_params = variation.per_type_fraction > 0.0;
  const std::size_t type_params = with_type_params ? kNumTypes : 0;

  CanonicalSstaResult result;
  result.first_source_param = 1 + type_params;
  result.num_params = result.first_source_param + 2 * sources.size();

  // Gate delay as a canonical form (per output direction).
  const auto delay_form = [&](NodeId id, bool rising) {
    const stats::Gaussian& d = delays.delay(id, rising);
    CanonicalForm form(d.mean, result.num_params);
    const double var = d.var;
    if (var > 0.0) {
      const double g = var * variation.global_fraction;
      const double t = var * variation.per_type_fraction;
      const double r = std::max(0.0, var - g - t);
      form.set_sensitivity(0, std::sqrt(g));
      if (with_type_params) {
        const std::size_t tp = 1 + static_cast<std::size_t>(design.node(id).type);
        form.set_sensitivity(tp, std::sqrt(t));
      }
      form.set_residual(std::sqrt(r));
    }
    return form;
  };

  result.arrival.assign(
      design.node_count(),
      CanonicalArrival{CanonicalForm(0.0, result.num_params),
                       CanonicalForm(0.0, result.num_params)});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    CanonicalForm rise(st.rise_arrival.mean, result.num_params);
    rise.set_sensitivity(result.first_source_param + 2 * i, st.rise_arrival.stddev());
    CanonicalForm fall(st.fall_arrival.mean, result.num_params);
    fall.set_sensitivity(result.first_source_param + 2 * i + 1,
                         st.fall_arrival.stddev());
    result.arrival[sources[i]] = {std::move(rise), std::move(fall)};
  }

  const netlist::Levelization lv = netlist::levelize(design);
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    if (node.fanins.empty()) {
      result.arrival[id] = {CanonicalForm(0.0, result.num_params),
                            CanonicalForm(0.0, result.num_params)};
      continue;
    }
    const bool inverted = inputs_inverted(node.type);
    CanonicalArrival out{CanonicalForm(0.0, result.num_params),
                         CanonicalForm(0.0, result.num_params)};
    for (const bool output_rising : {true, false}) {
      const ArrivalOp op = arrival_op(node.type, output_rising);
      CanonicalForm acc(0.0, result.num_params);
      bool first = true;
      for (NodeId f : node.fanins) {
        const CanonicalArrival& in = result.arrival[f];
        CanonicalForm contrib(0.0, result.num_params);
        if (node.type == GateType::Xor || node.type == GateType::Xnor) {
          contrib = variational::max(in.rise, in.fall);
        } else {
          const bool take_rise = output_rising != inverted;
          contrib = take_rise ? in.rise : in.fall;
        }
        if (first) {
          acc = std::move(contrib);
          first = false;
        } else {
          acc = (op == ArrivalOp::Max) ? variational::max(acc, contrib)
                                       : variational::min(acc, contrib);
        }
      }
      (output_rising ? out.rise : out.fall) =
          variational::sum(acc, delay_form(id, output_rising));
    }
    result.arrival[id] = std::move(out);
  }
  return result;
}

}  // namespace spsta::ssta
