#include "ssta/ssta.hpp"

#include "core/compiled_design.hpp"

namespace spsta::ssta {

using netlist::GateType;
using netlist::NodeId;
using stats::Gaussian;

bool inputs_inverted(GateType type) noexcept { return netlist::is_inverting(type); }

ArrivalOp arrival_op(GateType type, bool output_rising) noexcept {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      // Output 1 is AND's non-controlled value: the last input to reach the
      // non-controlling value sets it -> MAX. Output 0 is controlled: the
      // first input to reach the controlling value sets it -> MIN. For
      // NAND the output inverts but the input-side semantics are AND's.
      {
        const bool output_non_controlled =
            (type == GateType::And) ? output_rising : !output_rising;
        return output_non_controlled ? ArrivalOp::Max : ArrivalOp::Min;
      }
    case GateType::Or:
    case GateType::Nor: {
      const bool output_controlled =
          (type == GateType::Or) ? output_rising : !output_rising;
      return output_controlled ? ArrivalOp::Min : ArrivalOp::Max;
    }
    default:
      // Single-input gates and parity gates: worst case (MAX), the STA
      // convention for gates without a controlling value.
      return ArrivalOp::Max;
  }
}

SstaResult run_ssta(const core::CompiledDesign& plan,
                    std::span<const netlist::SourceStats> source_stats) {
  plan.check_source_stats(source_stats, "run_ssta");
  const std::span<const NodeId> sources = plan.timing_sources();

  SstaResult result;
  result.arrival.assign(plan.node_count(), NodeArrival{});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    result.arrival[sources[i]] = {st.rise_arrival, st.fall_arrival};
  }

  for (NodeId id : plan.levelization().order) {
    if (!plan.combinational(id)) continue;
    result.arrival[id] =
        propagate_gate_arrival(plan.design(), id, result.arrival, plan.delays());
  }
  return result;
}

SstaResult run_ssta(const netlist::Netlist& design, const netlist::DelayModel& delays,
                    std::span<const netlist::SourceStats> source_stats) {
  return run_ssta(core::CompiledDesign(design, delays), source_stats);
}

NodeArrival propagate_gate_arrival(const netlist::Netlist& design, NodeId id,
                                   std::span<const NodeArrival> state,
                                   const netlist::DelayModel& delays) {
  const netlist::Node& node = design.node(id);
  if (node.fanins.empty()) {  // constants never transition
    return {{0.0, 0.0}, {0.0, 0.0}};
  }
  const bool inverted = inputs_inverted(node.type);
  NodeArrival out;
  for (const bool output_rising : {true, false}) {
    const ArrivalOp op = arrival_op(node.type, output_rising);
    // Contributing input arrivals: rises cause output rises for
    // non-inverting gates, falls for inverting ones. Parity gates use
    // the worse of both input directions per input.
    Gaussian acc;
    bool first = true;
    for (NodeId f : node.fanins) {
      const NodeArrival& in = state[f];
      Gaussian contrib;
      if (node.type == GateType::Xor || node.type == GateType::Xnor) {
        contrib = stats::clark_max(in.rise, in.fall).moments;
      } else {
        const bool take_rise = output_rising != inverted;
        contrib = take_rise ? in.rise : in.fall;
      }
      if (first) {
        acc = contrib;
        first = false;
      } else {
        acc = (op == ArrivalOp::Max) ? stats::clark_max(acc, contrib).moments
                                     : stats::clark_min(acc, contrib).moments;
      }
    }
    (output_rising ? out.rise : out.fall) =
        stats::sum(acc, delays.delay(id, output_rising));
  }
  return out;
}

}  // namespace spsta::ssta
