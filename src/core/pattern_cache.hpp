/// \file pattern_cache.hpp
/// Memoization of switch-pattern enumerations, shared by the moment and
/// numeric SPSTA engines.
///
/// Real netlists repeat gate "situations": every 2-input NAND fed by
/// scenario-I primary inputs sees the same fanin four-value probabilities,
/// so its Eq. 8/11 scenario enumeration is identical. The cache keys on
/// (gate type, *quantized* fanin probabilities) and — crucially for the
/// deterministic parallel layer — computes the patterns FROM the quantized
/// probabilities, so a hit and a recomputation yield bit-identical values
/// no matter which thread populated the entry first.
///
/// A quantum of 0 (the default) keys on the exact probability bit
/// patterns: results are then bitwise identical to uncached enumeration,
/// and hits still occur wherever structural repetition reproduces the
/// same probabilities exactly (the common case — identical gates fed by
/// identical scenarios). A positive quantum trades bounded accuracy
/// (error <= quantum/2 per probability) for additional near-miss hits; a
/// zero probability always quantizes to zero, so support pruning is
/// preserved either way.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/patterns.hpp"
#include "netlist/four_value.hpp"

namespace spsta::core {

/// Thread-safe memoizing wrapper around enumerate_switch_patterns.
class PatternCache {
 public:
  /// Default quantum: exact bit-pattern keys, zero numerical perturbation.
  static constexpr double kExactKeys = 0.0;
  /// A reasonable coarse quantum (2^-40 ~ 9.1e-13) for near-miss sharing.
  static constexpr double kCoarseQuantum = 0x1p-40;

  using Patterns = std::shared_ptr<const std::vector<SwitchPattern>>;

  explicit PatternCache(double quantum = kExactKeys) : quantum_(quantum) {}

  /// Patterns for (type, inputs), computed from the quantized inputs on a
  /// miss. Safe to call concurrently; deterministic in its arguments.
  [[nodiscard]] Patterns get(netlist::GateType type,
                             std::span<const netlist::FourValueProbs> inputs);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    /// words[0] is the gate type; then 4 quantized probabilities per input.
    std::vector<std::uint64_t> words;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  double quantum_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Patterns, KeyHash> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace spsta::core
