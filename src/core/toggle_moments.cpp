#include "core/toggle_moments.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netlist/levelize.hpp"
#include "power/transition_density.hpp"
#include "sigprob/signal_prob.hpp"

namespace spsta::core {

using netlist::NodeId;

std::size_t ToggleMoments::index(std::size_t a, std::size_t b) const noexcept {
  if (a < b) std::swap(a, b);
  return a * (a + 1) / 2 + b;
}

double ToggleMoments::covariance(NodeId a, NodeId b) const {
  return cov_.at(index(a, b));
}

double ToggleMoments::correlation(NodeId a, NodeId b) const {
  const double va = variance(a);
  const double vb = variance(b);
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return covariance(a, b) / std::sqrt(va * vb);
}

void ToggleMoments::set_covariance(NodeId a, NodeId b, double c) {
  cov_.at(index(a, b)) = c;
}

ToggleMoments propagate_toggle_moments(const netlist::Netlist& design,
                                       std::span<const double> source_probs,
                                       std::span<const SourceToggle> source_toggle) {
  const std::vector<NodeId> sources = design.timing_sources();
  if ((source_toggle.size() != sources.size() && source_toggle.size() != 1)) {
    throw std::invalid_argument("propagate_toggle_moments: source toggle count mismatch");
  }
  const std::size_t n = design.node_count();
  ToggleMoments out(n);

  const std::vector<double> prob =
      sigprob::propagate_signal_probabilities(design, source_probs);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SourceToggle& st = source_toggle.size() == 1 ? source_toggle[0] : source_toggle[i];
    out.set_mean(sources[i], st.mean);
    out.set_covariance(sources[i], sources[i], st.var);
  }

  const netlist::Levelization lv = netlist::levelize(design);
  std::vector<double> fanin_probs;
  std::vector<double> row(n);
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;

    fanin_probs.clear();
    for (NodeId f : node.fanins) fanin_probs.push_back(prob[f]);
    const std::vector<double> w =
        power::boolean_difference_probabilities(node.type, fanin_probs);

    // Mean (Eq. 13 line 1).
    double mean = 0.0;
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      mean += w[i] * out.mean(node.fanins[i]);
    }
    out.set_mean(id, mean);

    // Covariance row against every net (Eq. 13 line 3); the self entry
    // var(y) = sum w_i w_j cov(x_i, x_j) falls out of the same fold.
    std::fill(row.begin(), row.end(), 0.0);
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      const NodeId f = node.fanins[i];
      for (std::size_t z = 0; z < n; ++z) {
        row[z] += w[i] * out.covariance(f, static_cast<NodeId>(z));
      }
    }
    double var = 0.0;
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      var += w[i] * row[node.fanins[i]];
    }
    for (std::size_t z = 0; z < n; ++z) {
      if (z != id) out.set_covariance(id, static_cast<NodeId>(z), row[z]);
    }
    out.set_covariance(id, id, std::max(var, 0.0));
  }
  return out;
}

}  // namespace spsta::core
