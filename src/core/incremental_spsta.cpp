#include "core/incremental_spsta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/compiled_design.hpp"
#include "obs/metrics.hpp"

namespace spsta::core {

using netlist::NodeId;

namespace {

// With eps == 0 these demand exact (bitwise) equality, so skipped
// propagation can never diverge from a fresh full run.
bool nearly_equal(const stats::Gaussian& a, const stats::Gaussian& b, double eps) {
  return std::abs(a.mean - b.mean) <= eps && std::abs(a.var - b.var) <= eps;
}

bool nearly_equal(const TransitionTop& a, const TransitionTop& b, double eps) {
  // third_central matters: a wave can shift only the skew term (mean/var
  // bitwise unchanged), and voting it "settled" would strand a stale third
  // moment downstream.
  return std::abs(a.mass - b.mass) <= eps &&
         std::abs(a.third_central - b.third_central) <= eps &&
         nearly_equal(a.arrival, b.arrival, eps);
}

bool nearly_equal(const netlist::FourValueProbs& a, const netlist::FourValueProbs& b,
                  double eps) {
  return std::abs(a.p0 - b.p0) <= eps && std::abs(a.p1 - b.p1) <= eps &&
         std::abs(a.pr - b.pr) <= eps && std::abs(a.pf - b.pf) <= eps;
}

bool nearly_equal(const NodeTop& a, const NodeTop& b, double eps) {
  return nearly_equal(a.probs, b.probs, eps) && nearly_equal(a.rise, b.rise, eps) &&
         nearly_equal(a.fall, b.fall, eps);
}

NodeTop source_top(const netlist::SourceStats& st) {
  NodeTop top;
  top.probs = st.probs.normalized();
  top.rise = {top.probs.pr, st.rise_arrival};
  top.fall = {top.probs.pf, st.fall_arrival};
  return top;
}

/// Levels narrowed to the frontier's key type.
std::vector<std::uint32_t> narrow_levels(const std::vector<std::size_t>& level) {
  std::vector<std::uint32_t> out(level.size());
  for (std::size_t i = 0; i < level.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(level[i]);
  }
  return out;
}

/// Waves smaller than this stay sequential even with a pool: a dirty level
/// of a few nodes costs less to evaluate inline than to wake workers for.
constexpr std::size_t kParallelGrain = 8;

}  // namespace

IncrementalSpsta::IncrementalSpsta(const netlist::Netlist& design,
                                   netlist::DelayModel delays,
                                   std::span<const netlist::SourceStats> source_stats,
                                   double settle_eps)
    : IncrementalSpsta(design, std::move(delays), netlist::levelize(design),
                       source_stats, settle_eps) {}

IncrementalSpsta::IncrementalSpsta(const CompiledDesign& plan,
                                   std::span<const netlist::SourceStats> source_stats,
                                   double settle_eps)
    : IncrementalSpsta(plan.design(), plan.delays(), plan.levelization(),
                       source_stats, settle_eps) {}

IncrementalSpsta::IncrementalSpsta(const netlist::Netlist& design,
                                   netlist::DelayModel delays,
                                   const netlist::Levelization& levels,
                                   std::span<const netlist::SourceStats> source_stats,
                                   double settle_eps)
    : design_(design), delays_(std::move(delays)),
      sources_(design_.timing_sources()), settle_eps_(settle_eps) {
  if (source_stats.size() != sources_.size() && source_stats.size() != 1) {
    throw std::invalid_argument("IncrementalSpsta: source stats count mismatch");
  }
  if (!(settle_eps_ >= 0.0)) {
    throw std::invalid_argument("IncrementalSpsta: settle_eps must be >= 0");
  }
  frontier_.reset(narrow_levels(levels.level));
  state_.assign(design_.node_count(), NodeTop{});
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    state_[sources_[i]] =
        source_top(source_stats.size() == 1 ? source_stats[0] : source_stats[i]);
  }
  for (NodeId id : levels.order) {
    if (!netlist::is_combinational(design_.node(id).type)) continue;
    state_[id] = propagate_node_top(design_, id, state_, delays_, &pattern_cache_);
  }
}

void IncrementalSpsta::require_no_txn(const char* what) const {
  if (in_txn_) {
    throw std::logic_error(std::string("IncrementalSpsta::") + what +
                           ": transaction open (commit first)");
  }
}

void IncrementalSpsta::mark_dirty(NodeId id) { (void)frontier_.mark(id); }

void IncrementalSpsta::mark_fanouts(NodeId id, const std::vector<char>* mask) {
  for (NodeId fo : design_.node(id).fanouts) {
    if (!netlist::is_combinational(design_.node(fo).type)) continue;
    if (mask != nullptr && (*mask)[fo] == 0) continue;
    mark_dirty(fo);
  }
}

void IncrementalSpsta::apply_source(NodeId src, const netlist::SourceStats& stats) {
  state_[src] = source_top(stats);
}

IncrementalSpsta::CommitStats IncrementalSpsta::propagate_wave(
    const std::vector<char>* mask,
    std::vector<std::pair<NodeId, NodeTop>>* undo_tops) {
  static obs::Counter& cone_counter = obs::registry().counter("incremental.cone_size");
  static obs::Counter& settled_counter =
      obs::registry().counter("incremental.settled_early");
  // Cone-*size* histogram riding the latency-histogram machinery: a cone of
  // N nodes is recorded as N µs (N * 1000 ns), so the log2-µs buckets read
  // as log2-node-count buckets (DESIGN.md §17).
  static obs::LatencyHistogram& cone_hist =
      obs::registry().histogram("incremental.cone_nodes");

  CommitStats stats;
  if (threads_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
  while (frontier_.any()) {
    const std::size_t level = frontier_.first_level();
    frontier_.take_level(level, wave_ids_);
    if (wave_ids_.empty()) continue;
    ++stats.levels_touched;
    const std::size_t n = wave_ids_.size();
    wave_tops_.resize(n);
    wave_changed_.assign(n, 0);

    // Settle votes: evaluate the whole dirty level against the *pre-level*
    // state. Every fanin lives at a strictly lower level, so concurrent
    // evaluations read only settled data and each index writes only its own
    // scratch slot — the result is schedule-independent.
    const auto eval = [&](std::size_t k) {
      const NodeId id = wave_ids_[k];
      wave_tops_[k] = propagate_node_top(design_, id, state_, delays_, &pattern_cache_);
      wave_changed_[k] = nearly_equal(wave_tops_[k], state_[id], settle_eps_) ? 0 : 1;
    };
    if (pool_ != nullptr && threads_ > 1 && n >= kParallelGrain) {
      pool_->for_each_index(n, eval);
    } else {
      for (std::size_t k = 0; k < n; ++k) eval(k);
    }
    stats.cone_size += n;

    // Deterministic merge in mark order: write changed states, extend the
    // frontier, snapshot overwritten tops for the probe's undo log.
    for (std::size_t k = 0; k < n; ++k) {
      if (wave_changed_[k] == 0) {
        ++stats.settled_early;
        continue;
      }
      const NodeId id = wave_ids_[k];
      if (undo_tops != nullptr) undo_tops->emplace_back(id, state_[id]);
      state_[id] = wave_tops_[k];
      mark_fanouts(id, mask);
    }
  }
  nodes_reevaluated_ += stats.cone_size;
  settled_early_ += stats.settled_early;
  cone_counter.add(stats.cone_size);
  settled_counter.add(stats.settled_early);
  cone_hist.record_ns(stats.cone_size * 1000);
  return stats;
}

void IncrementalSpsta::propagate_dirty() {
  if (!frontier_.any()) return;
  (void)propagate_wave(nullptr, nullptr);
}

const NodeTop& IncrementalSpsta::node(NodeId id) {
  require_no_txn("node");
  propagate_dirty();
  return state_.at(id);
}

const std::vector<NodeTop>& IncrementalSpsta::flush() {
  require_no_txn("flush");
  propagate_dirty();
  return state_;
}

void IncrementalSpsta::set_delay(NodeId id, const stats::Gaussian& delay) {
  if (id >= design_.node_count()) {
    throw std::invalid_argument("IncrementalSpsta::set_delay: bad node id");
  }
  if (nearly_equal(delays_.delay(id), delay, settle_eps_)) return;
  delays_.set_delay(id, delay);
  ++epoch_;
  if (netlist::is_combinational(design_.node(id).type)) mark_dirty(id);
}

void IncrementalSpsta::set_source_stats(std::size_t source_index,
                                        const netlist::SourceStats& stats) {
  if (source_index >= sources_.size()) {
    throw std::invalid_argument("IncrementalSpsta::set_source_stats: bad index");
  }
  const NodeId src = sources_[source_index];
  apply_source(src, stats);
  ++epoch_;
  mark_fanouts(src, nullptr);
}

void IncrementalSpsta::begin_eco() {
  require_no_txn("begin_eco");
  in_txn_ = true;
}

IncrementalSpsta::CommitStats IncrementalSpsta::commit() {
  if (!in_txn_) {
    throw std::logic_error("IncrementalSpsta::commit: no open transaction");
  }
  in_txn_ = false;
  static obs::Counter& commits = obs::registry().counter("incremental.commits");
  commits.add();
  return propagate_wave(nullptr, nullptr);
}

const std::vector<char>& IncrementalSpsta::target_mask(
    std::span<const NodeId> targets) {
  for (const NodeId t : targets) {
    if (t >= design_.node_count()) {
      throw std::invalid_argument("IncrementalSpsta::probe: bad target node id");
    }
  }
  for (const MaskEntry& entry : mask_cache_) {
    if (entry.targets.size() == targets.size() &&
        std::equal(entry.targets.begin(), entry.targets.end(), targets.begin())) {
      return entry.mask;
    }
  }
  // Backward closure over fanins: every node whose state a target's
  // recomputation can (transitively) read. Edits outside this mask cannot
  // change any target, so the probe wave skips them entirely.
  MaskEntry entry;
  entry.targets.assign(targets.begin(), targets.end());
  entry.mask.assign(design_.node_count(), 0);
  std::vector<NodeId> stack(targets.begin(), targets.end());
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (entry.mask[id] != 0) continue;
    entry.mask[id] = 1;
    for (const NodeId fi : design_.node(id).fanins) stack.push_back(fi);
  }
  if (mask_cache_.size() >= kMaxMaskEntries) mask_cache_.erase(mask_cache_.begin());
  mask_cache_.push_back(std::move(entry));
  return mask_cache_.back().mask;
}

IncrementalSpsta::ProbeResult IncrementalSpsta::probe(
    std::span<const EcoEdit> edits, std::span<const NodeId> targets) {
  require_no_txn("probe");
  // The probe baseline is the settled committed state: flush pending lazy
  // edits first so the undo log only ever carries probe-local changes.
  propagate_dirty();
  const std::vector<char>& mask = target_mask(targets);

  static obs::Counter& probes = obs::registry().counter("incremental.probes");
  probes.add();

  // Apply the edit batch, journaling everything the revert needs. Delay
  // records keep all three DelayModel slots because set_delay clears
  // per-direction overrides.
  std::vector<UndoDelay> undo_delays;
  std::vector<std::pair<NodeId, NodeTop>> undo_tops;
  for (const EcoEdit& edit : edits) {
    if (edit.kind == EcoEdit::Kind::kDelay) {
      const NodeId id = edit.node;
      if (id >= design_.node_count()) {
        throw std::invalid_argument("IncrementalSpsta::probe: bad node id");
      }
      // Same no-op rule as set_delay, so probe(edits) answers exactly what
      // commit(edits)-then-query would.
      if (nearly_equal(delays_.delay(id), edit.delay, settle_eps_)) continue;
      UndoDelay undo;
      undo.node = id;
      undo.common = delays_.delay(id);
      undo.directional = delays_.is_directional(id);
      if (undo.directional) {
        undo.rise = delays_.delay(id, /*rising=*/true);
        undo.fall = delays_.delay(id, /*rising=*/false);
      }
      undo_delays.push_back(undo);
      delays_.set_delay(id, edit.delay);
      if (netlist::is_combinational(design_.node(id).type) && mask[id] != 0) {
        mark_dirty(id);
      }
    } else {
      if (edit.source_index >= sources_.size()) {
        throw std::invalid_argument("IncrementalSpsta::probe: bad source index");
      }
      const NodeId src = sources_[edit.source_index];
      undo_tops.emplace_back(src, state_[src]);
      apply_source(src, edit.source);
      mark_fanouts(src, &mask);
    }
  }

  ProbeResult result;
  result.stats = propagate_wave(&mask, &undo_tops);
  result.tops.reserve(targets.size());
  for (const NodeId t : targets) result.tops.push_back(state_[t]);

  // Revert: restore overwritten tops newest-first (a node edited twice
  // lands on its oldest snapshot), then the delay slots. The frontier
  // drained inside the wave, so no marks survive the probe.
  for (auto it = undo_tops.rbegin(); it != undo_tops.rend(); ++it) {
    state_[it->first] = it->second;
  }
  for (auto it = undo_delays.rbegin(); it != undo_delays.rend(); ++it) {
    delays_.set_delay(it->node, it->common);
    if (it->directional) {
      delays_.set_rise_delay(it->node, it->rise);
      delays_.set_fall_delay(it->node, it->fall);
    }
  }
  return result;
}

void IncrementalSpsta::set_threads(unsigned threads) {
  const unsigned resolved = util::resolve_threads(threads);
  if (resolved == threads_) return;
  threads_ = resolved;
  pool_.reset();  // respawned lazily at the next wave
}

}  // namespace spsta::core
