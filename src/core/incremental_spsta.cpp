#include "core/incremental_spsta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/compiled_design.hpp"

namespace spsta::core {

using netlist::NodeId;

namespace {

// With eps == 0 these demand exact (bitwise) equality, so skipped
// propagation can never diverge from a fresh full run.
bool nearly_equal(const stats::Gaussian& a, const stats::Gaussian& b, double eps) {
  return std::abs(a.mean - b.mean) <= eps && std::abs(a.var - b.var) <= eps;
}

bool nearly_equal(const TransitionTop& a, const TransitionTop& b, double eps) {
  return std::abs(a.mass - b.mass) <= eps && nearly_equal(a.arrival, b.arrival, eps);
}

bool nearly_equal(const netlist::FourValueProbs& a, const netlist::FourValueProbs& b,
                  double eps) {
  return std::abs(a.p0 - b.p0) <= eps && std::abs(a.p1 - b.p1) <= eps &&
         std::abs(a.pr - b.pr) <= eps && std::abs(a.pf - b.pf) <= eps;
}

bool nearly_equal(const NodeTop& a, const NodeTop& b, double eps) {
  return nearly_equal(a.probs, b.probs, eps) && nearly_equal(a.rise, b.rise, eps) &&
         nearly_equal(a.fall, b.fall, eps);
}

NodeTop source_top(const netlist::SourceStats& st) {
  NodeTop top;
  top.probs = st.probs.normalized();
  top.rise = {top.probs.pr, st.rise_arrival};
  top.fall = {top.probs.pf, st.fall_arrival};
  return top;
}

}  // namespace

IncrementalSpsta::IncrementalSpsta(const netlist::Netlist& design,
                                   netlist::DelayModel delays,
                                   std::span<const netlist::SourceStats> source_stats,
                                   double settle_eps)
    : IncrementalSpsta(design, std::move(delays), netlist::levelize(design),
                       source_stats, settle_eps) {}

IncrementalSpsta::IncrementalSpsta(const CompiledDesign& plan,
                                   std::span<const netlist::SourceStats> source_stats,
                                   double settle_eps)
    : IncrementalSpsta(plan.design(), plan.delays(), plan.levelization(),
                       source_stats, settle_eps) {}

IncrementalSpsta::IncrementalSpsta(const netlist::Netlist& design,
                                   netlist::DelayModel delays,
                                   netlist::Levelization levels,
                                   std::span<const netlist::SourceStats> source_stats,
                                   double settle_eps)
    : design_(design), delays_(std::move(delays)), levels_(std::move(levels)),
      settle_eps_(settle_eps) {
  const std::vector<NodeId> sources = design_.timing_sources();
  if (source_stats.size() != sources.size() && source_stats.size() != 1) {
    throw std::invalid_argument("IncrementalSpsta: source stats count mismatch");
  }
  if (!(settle_eps_ >= 0.0)) {
    throw std::invalid_argument("IncrementalSpsta: settle_eps must be >= 0");
  }
  order_pos_.assign(design_.node_count(), 0);
  for (std::size_t i = 0; i < levels_.order.size(); ++i) {
    order_pos_[levels_.order[i]] = i;
  }
  state_.assign(design_.node_count(), NodeTop{});
  dirty_.assign(design_.node_count(), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    state_[sources[i]] =
        source_top(source_stats.size() == 1 ? source_stats[0] : source_stats[i]);
  }
  for (NodeId id : levels_.order) {
    if (!netlist::is_combinational(design_.node(id).type)) continue;
    state_[id] = propagate_node_top(design_, id, state_, delays_, &pattern_cache_);
  }
}

void IncrementalSpsta::mark_dirty(NodeId id) {
  if (dirty_[id]) return;
  dirty_[id] = 1;
  const std::size_t pos = order_pos_[id];
  if (!any_dirty_) {
    dirty_lo_ = dirty_hi_ = pos;
    any_dirty_ = true;
  } else {
    dirty_lo_ = std::min(dirty_lo_, pos);
    dirty_hi_ = std::max(dirty_hi_, pos);
  }
}

bool IncrementalSpsta::recompute(NodeId id) {
  const NodeTop updated = propagate_node_top(design_, id, state_, delays_, &pattern_cache_);
  ++nodes_reevaluated_;
  if (nearly_equal(updated, state_[id], settle_eps_)) return false;
  state_[id] = updated;
  return true;
}

void IncrementalSpsta::propagate_dirty() {
  if (!any_dirty_) return;
  for (std::size_t pos = dirty_lo_;
       pos <= dirty_hi_ && pos < levels_.order.size(); ++pos) {
    const NodeId id = levels_.order[pos];
    if (!dirty_[id]) continue;
    dirty_[id] = 0;
    if (!netlist::is_combinational(design_.node(id).type)) continue;
    if (recompute(id)) {
      for (NodeId fo : design_.node(id).fanouts) {
        if (!netlist::is_combinational(design_.node(fo).type)) continue;
        mark_dirty(fo);
      }
    }
  }
  any_dirty_ = false;
}

const NodeTop& IncrementalSpsta::node(NodeId id) {
  propagate_dirty();
  return state_.at(id);
}

const std::vector<NodeTop>& IncrementalSpsta::flush() {
  propagate_dirty();
  return state_;
}

void IncrementalSpsta::set_delay(NodeId id, const stats::Gaussian& delay) {
  if (id >= design_.node_count()) {
    throw std::invalid_argument("IncrementalSpsta::set_delay: bad node id");
  }
  if (nearly_equal(delays_.delay(id), delay, settle_eps_)) return;
  delays_.set_delay(id, delay);
  if (netlist::is_combinational(design_.node(id).type)) mark_dirty(id);
}

void IncrementalSpsta::set_source_stats(std::size_t source_index,
                                        const netlist::SourceStats& stats) {
  const std::vector<NodeId> sources = design_.timing_sources();
  if (source_index >= sources.size()) {
    throw std::invalid_argument("IncrementalSpsta::set_source_stats: bad index");
  }
  const NodeId src = sources[source_index];
  state_[src] = source_top(stats);
  for (NodeId fo : design_.node(src).fanouts) {
    if (!netlist::is_combinational(design_.node(fo).type)) continue;
    mark_dirty(fo);
  }
}

}  // namespace spsta::core
