#include "core/compiled_design.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/spsta.hpp"
#include "stats/workspace.hpp"

namespace spsta::core {

using netlist::NodeId;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void mix_bytes(std::uint64_t& h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
}

void mix_double(std::uint64_t& h, double v) {
  // Bit pattern, not value: the hash must move whenever the observable
  // delay assignment moves, including -0.0 vs 0.0 style edits.
  mix(h, std::bit_cast<std::uint64_t>(v));
}

void mix_gaussian(std::uint64_t& h, const stats::Gaussian& g) {
  mix_double(h, g.mean);
  mix_double(h, g.var);
}

}  // namespace

CompiledDesign::CompiledDesign(const netlist::Netlist& design,
                               const netlist::DelayModel& delays)
    : design_(&design), delays_(delays), levels_(netlist::levelize(design)) {
  if (delays.size() != design.node_count()) {
    throw std::invalid_argument(
        "CompiledDesign: delay model sized for a different netlist (" +
        std::to_string(delays.size()) + " delays, " +
        std::to_string(design.node_count()) + " nodes)");
  }
  const std::size_t n = design.node_count();

  // Flat levelization: bucket lv.order stably by level so level_nodes(L)
  // enumerates exactly the same nodes in the same order as the legacy
  // level_groups(lv)[L] — a prerequisite for bit-identical parallel runs.
  level_offsets_.assign(n == 0 ? 1 : levels_.depth + 2, 0);
  for (NodeId id = 0; id < n; ++id) ++level_offsets_[levels_.level[id] + 1];
  for (std::size_t l = 1; l < level_offsets_.size(); ++l) {
    level_offsets_[l] += level_offsets_[l - 1];
  }
  level_order_.resize(n);
  {
    std::vector<std::size_t> cursor(level_offsets_.begin(), level_offsets_.end() - 1);
    for (NodeId id : levels_.order) level_order_[cursor[levels_.level[id]]++] = id;
  }

  // Structure-of-arrays adjacency + per-node flags.
  fanin_offsets_.assign(n + 1, 0);
  fanout_offsets_.assign(n + 1, 0);
  combinational_.assign(n, 0);
  type_.resize(n);
  for (NodeId id = 0; id < n; ++id) {
    const netlist::Node& node = design.node(id);
    fanin_offsets_[id + 1] = fanin_offsets_[id] + node.fanins.size();
    fanout_offsets_[id + 1] = fanout_offsets_[id] + node.fanouts.size();
    combinational_[id] = netlist::is_combinational(node.type) ? 1 : 0;
    type_[id] = node.type;
  }
  fanin_arena_.reserve(fanin_offsets_.back());
  fanout_arena_.reserve(fanout_offsets_.back());
  for (NodeId id = 0; id < n; ++id) {
    const netlist::Node& node = design.node(id);
    fanin_arena_.insert(fanin_arena_.end(), node.fanins.begin(), node.fanins.end());
    fanout_arena_.insert(fanout_arena_.end(), node.fanouts.begin(), node.fanouts.end());
  }

  timing_sources_ = design.timing_sources();
  timing_endpoints_ = design.timing_endpoints();

  // Structural delay-span products the numeric engine's grid choice needs.
  // One forward longest-path DP replaces the per-endpoint critical_paths
  // scan the legacy engine ran; the recurrence (arrival = max fanin
  // arrival + mean delay) is the same one critical_path_to evaluates, so
  // the resulting maximum is bit-identical to the legacy value.
  {
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    const std::vector<double> means = delays_.means();
    std::vector<double> arrival(n, kNegInf);
    for (NodeId id : levels_.order) {
      if (combinational_[id] == 0 || fanins(id).empty()) {
        arrival[id] = 0.0;  // sources and constants
        continue;
      }
      double best = kNegInf;
      for (NodeId f : fanins(id)) best = std::max(best, arrival[f]);
      arrival[id] = best + means[id];
    }
    for (NodeId id : timing_endpoints_) {
      const double d = arrival[id] == kNegInf ? 0.0 : arrival[id];
      structural_delay_ = std::max(structural_delay_, d);
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    max_delay_stddev_ = std::max(max_delay_stddev_, delays_.delay(id).stddev());
  }

  // Content hash: netlist structure (names, types, wiring, output/DFF
  // markings) plus the observable delay assignment. Field tags keep
  // adjacent variable-length sections from aliasing.
  std::uint64_t h = kFnvOffset;
  mix(h, n);
  for (NodeId id = 0; id < n; ++id) {
    const netlist::Node& node = design.node(id);
    mix(h, static_cast<std::uint64_t>(node.type));
    mix(h, node.name.size());
    mix_bytes(h, node.name);
    mix(h, node.fanins.size());
    for (NodeId f : node.fanins) mix(h, f);
  }
  mix(h, 0x6f757470u);  // outputs section
  mix(h, design.primary_outputs().size());
  for (NodeId id : design.primary_outputs()) mix(h, id);
  mix(h, 0x64656c61u);  // delay section
  for (NodeId id = 0; id < n; ++id) {
    mix_gaussian(h, delays_.delay(id));
    mix(h, delays_.is_directional(id) ? 1 : 0);
    mix_gaussian(h, delays_.delay(id, true));
    mix_gaussian(h, delays_.delay(id, false));
  }
  content_hash_ = h;
}

stats::GridSpec CompiledDesign::grid_for(
    std::span<const netlist::SourceStats> source_stats,
    const SpstaOptions& options) const {
  // Mirrors the legacy numeric engine's choose_grid exactly (expression
  // for expression) with the structural scan replaced by the precomputed
  // structural_delay_ / max_delay_stddev_ / depth products.
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const netlist::SourceStats& st : source_stats) {
    for (const stats::Gaussian& g : {st.rise_arrival, st.fall_arrival}) {
      const double sd = g.stddev();
      const double a = g.mean - options.grid_pad_sigma * sd;
      const double b = g.mean + options.grid_pad_sigma * sd;
      if (first) {
        lo = a;
        hi = b;
        first = false;
      } else {
        lo = std::min(lo, a);
        hi = std::max(hi, b);
      }
    }
  }
  hi += structural_delay_ + options.grid_pad_sigma * max_delay_stddev_ *
                                std::sqrt(double(levels_.depth) + 1.0);

  double dt = options.grid_dt > 0.0 ? options.grid_dt : 0.05;
  // Degenerate span (a single deterministic arrival and zero structural
  // delay): widen by one step so dt never collapses to 0.
  if (!(hi > lo)) hi = lo + dt;
  std::size_t n = static_cast<std::size_t>(std::ceil((hi - lo) / dt)) + 1;
  // Clamp the cap to >= 2 so the dt recomputation never divides by n-1==0.
  const std::size_t cap = std::max<std::size_t>(options.max_grid_points, 2);
  if (n > cap) {
    n = cap;
    dt = (hi - lo) / static_cast<double>(n - 1);
  }
  // Floor of 8 points for a usable density, unless the cap is tighter.
  return {lo, dt, std::max(n, std::min<std::size_t>(cap, 8))};
}

std::shared_ptr<const DelayKernelSet> CompiledDesign::delay_kernels(
    double dt, std::size_t grid_n) const {
  const std::pair<std::uint64_t, std::uint64_t> key{std::bit_cast<std::uint64_t>(dt),
                                                    grid_n};
  {
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    if (const auto it = kernel_cache_.find(key); it != kernel_cache_.end()) {
      return it->second;
    }
  }
  // Build outside the lock: kernels are pure functions of (delay, dt), so
  // a racing duplicate build produces bit-identical kernels and the loser
  // simply adopts the winner's set below.
  auto set = std::make_shared<DelayKernelSet>();
  set->dt = dt;
  const std::size_t n = node_count();
  set->rise_index.assign(n, 0);
  set->fall_index.assign(n, 0);
  // Dedup kernels on the exact bit patterns of (mean, var): a uniform
  // delay model yields one unique kernel per direction instead of one
  // per node, which is what makes per-kernel spectra affordable.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> unique;
  const auto intern = [&](const stats::Gaussian& g) -> std::uint32_t {
    const std::pair<std::uint64_t, std::uint64_t> gk{
        std::bit_cast<std::uint64_t>(g.mean), std::bit_cast<std::uint64_t>(g.var)};
    if (const auto it = unique.find(gk); it != unique.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(set->kernels.size());
    set->kernels.push_back(stats::make_delay_kernel(g, dt));
    unique.emplace(gk, idx);
    return idx;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!combinational_[i]) continue;
    const auto id = static_cast<netlist::NodeId>(i);
    set->rise_index[i] = intern(delays_.delay(id, /*rising=*/true));
    set->fall_index[i] = intern(delays_.delay(id, /*rising=*/false));
  }
  if (grid_n > 0) {
    // Precompute each FFT-path kernel's half-spectrum at the size the
    // engine will use, in deterministic (intern) order, until the byte
    // budget runs out. Skipped kernels take the on-the-fly path with
    // bit-identical results.
    stats::Workspace& ws = stats::Workspace::local();
    std::size_t bytes = 0;
    for (stats::DelayKernel& k : set->kernels) {
      const std::size_t fft_n = stats::delay_fft_size(grid_n, k);
      if (fft_n == 0) continue;
      const std::size_t cost = 2 * (fft_n / 2 + 1) * sizeof(double);
      if (bytes + cost > kMaxSpectraBytes) continue;
      stats::precompute_kernel_spectrum(k, fft_n, ws);
      bytes += cost;
    }
    set->spec_grid_n = grid_n;
  }
  std::lock_guard<std::mutex> lock(kernel_mutex_);
  const auto [it, inserted] = kernel_cache_.emplace(key, std::move(set));
  if (inserted && kernel_cache_.size() > kMaxKernelSets) {
    // Evict the smallest other key — bounded memory; outstanding
    // shared_ptrs keep evicted sets alive for their users.
    auto victim = kernel_cache_.begin();
    if (victim == it) ++victim;
    kernel_cache_.erase(victim);
  }
  return it->second;
}

void CompiledDesign::check_source_stats(
    std::span<const netlist::SourceStats> source_stats, const char* who) const {
  if (source_stats.size() != timing_sources_.size() && source_stats.size() != 1) {
    throw std::invalid_argument(std::string(who) + ": source stats count mismatch");
  }
}

}  // namespace spsta::core
