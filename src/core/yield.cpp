#include "core/yield.hpp"

#include <algorithm>
#include <cmath>

namespace spsta::core {

double endpoint_yield(const SpstaNumericResult& result, netlist::NodeId endpoint,
                      double period) {
  const NodeTopDensity& node = result.node.at(endpoint);
  const double late_rise =
      std::max(0.0, node.rise.mass() - node.rise.cdf_at(period));
  const double late_fall =
      std::max(0.0, node.fall.mass() - node.fall.cdf_at(period));
  // Late rise and late fall are mutually exclusive per cycle (a net takes
  // one four-value), so the late probability adds.
  return std::clamp(1.0 - late_rise - late_fall, 0.0, 1.0);
}

double timing_yield(const netlist::Netlist& design, const SpstaNumericResult& result,
                    double period) {
  double yield = 1.0;
  for (netlist::NodeId ep : design.timing_endpoints()) {
    yield *= endpoint_yield(result, ep, period);
  }
  return yield;
}

std::vector<YieldPoint> yield_curve(const netlist::Netlist& design,
                                    const SpstaNumericResult& result, double t_lo,
                                    double t_hi, std::size_t points) {
  std::vector<YieldPoint> curve;
  if (points == 0) return curve;
  curve.reserve(points);
  const double step = points > 1 ? (t_hi - t_lo) / static_cast<double>(points - 1) : 0.0;
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t_lo + step * static_cast<double>(i);
    curve.push_back({t, timing_yield(design, result, t)});
  }
  return curve;
}

double period_for_yield(const netlist::Netlist& design, const SpstaNumericResult& result,
                        double target, double t_lo, double t_hi) {
  if (timing_yield(design, result, t_hi) < target) return t_hi;
  double lo = t_lo, hi = t_hi;
  for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (timing_yield(design, result, mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace spsta::core
