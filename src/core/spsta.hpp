/// \file spsta.hpp
/// The paper's contribution: Signal Probability based Statistical Timing
/// Analysis. Two interchangeable back-ends over the same WEIGHTED SUM
/// recursion (Eq. 8/11):
///
///  * run_spsta_moment  — each transition t.o.p. is (mass, mean, var);
///    in-scenario MAX/MIN uses Clark moment matching and the weighted sum
///    collapses a Gaussian mixture to matched moments (paper Sec. 3.4).
///  * run_spsta_numeric — each t.o.p. is a piecewise-linear density;
///    MAX/MIN are CDF products and the weighted sum is linear, recovering
///    full non-Gaussian t.o.p. shapes (paper Fig. 4).
///
/// Both produce, per net: four-value probabilities (P0, P1, Pr, Pf) and
/// rise/fall transition temporal-occurrence-probability functions whose
/// masses are the transition probabilities — i.e. timing *and* toggling
/// information at once (paper Sec. 3.1).

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "stats/gaussian.hpp"
#include "stats/piecewise.hpp"

namespace spsta::util {
class ThreadPool;
}

namespace spsta::core {

class CompiledDesign;
class PatternCache;

/// Moment-form t.o.p. of one transition direction: occurrence probability
/// plus the conditional arrival-time moments.
struct TransitionTop {
  double mass = 0.0;
  stats::Gaussian arrival;
  /// Third central moment of the conditional arrival. In-scenario MAX/MIN
  /// results are treated as Gaussian (zero third moment); the mixture
  /// across scenarios contributes the dominant skew term exactly, so this
  /// tracks the shape asymmetry moment matching usually discards.
  double third_central = 0.0;

  /// Standardized skewness (0 when degenerate).
  [[nodiscard]] double skewness() const noexcept;
};

/// Moment-engine result for one net.
struct NodeTop {
  netlist::FourValueProbs probs;
  TransitionTop rise;
  TransitionTop fall;
};

/// Moment-engine result.
struct SpstaResult {
  std::vector<NodeTop> node;
};

/// Numeric-engine result for one net: densities integrate to Pr / Pf.
struct NodeTopDensity {
  netlist::FourValueProbs probs;
  stats::PiecewiseDensity rise;
  stats::PiecewiseDensity fall;
};

/// Numeric-engine result.
struct SpstaNumericResult {
  std::vector<NodeTopDensity> node;
  stats::GridSpec grid;
};

/// Engine options.
struct SpstaOptions {
  /// Numeric engine: grid step (time units; the paper's unit is one gate
  /// delay).
  double grid_dt = 0.05;
  /// Numeric engine: grid padding beyond the structural delay span, in
  /// source-arrival standard deviations.
  double grid_pad_sigma = 8.0;
  /// Hard cap on numeric grid points (clamped to >= 2; a degenerate
  /// [lo, lo] span is widened so the grid step stays positive).
  std::size_t max_grid_points = 4096;
  /// Worker threads for level-parallel gate evaluation (0 = all hardware
  /// threads). Nodes within one levelization level are independent, so
  /// results are bit-identical at any thread count.
  unsigned threads = 1;
  /// Memoize switch-pattern enumeration keyed on (gate type, quantized
  /// fanin probs). Cached patterns are computed from the quantized probs,
  /// so results are reproducible at any thread count regardless of which
  /// thread populates an entry first.
  bool use_pattern_cache = true;
  /// Quantization step for pattern-cache keys. 0 (default) keys on exact
  /// bit patterns — bitwise identical to uncached enumeration; a positive
  /// quantum (e.g. PatternCache::kCoarseQuantum) trades error bounded by
  /// quantum/2 per probability for additional near-miss hits.
  double pattern_quantum = 0.0;
  /// Optional cache shared across runs/engines; when null and
  /// use_pattern_cache is set, each run builds its own.
  PatternCache* shared_pattern_cache = nullptr;
  /// Optional long-lived pool (e.g. the Analyzer's); when set it overrides
  /// `threads` for dispatch and the run spawns no threads of its own. The
  /// pool must be idle (ThreadPool runs one job at a time).
  util::ThreadPool* shared_pool = nullptr;
};

// NOTE: the run_* functions below are implementation-level entry points.
// Application code should go through the Analyzer facade (spsta_api.hpp),
// which owns a CompiledDesign, validates requests against the selected
// engine, and amortizes structural work across runs.

/// Runs the moment engine on a precompiled plan — the warm path that skips
/// all structural work. \p source_stats follows plan.timing_sources()
/// order (single element broadcasts). With the default exact-key settings
/// the run shares the plan's switch-pattern cache, so repeated runs skip
/// pattern enumeration too; results are bit-identical either way.
[[nodiscard]] SpstaResult run_spsta_moment(
    const CompiledDesign& plan, std::span<const netlist::SourceStats> source_stats,
    const SpstaOptions& options = {});

/// Runs the moment-based engine. \p source_stats follows
/// design.timing_sources() order (single element broadcasts). Thin
/// compile-then-run wrapper over the CompiledDesign overload.
[[nodiscard]] SpstaResult run_spsta_moment(
    const netlist::Netlist& design, const netlist::DelayModel& delays,
    std::span<const netlist::SourceStats> source_stats);

/// Moment engine with explicit options (threads / pattern cache; the grid
/// fields are ignored — the Analyzer facade rejects requests that set
/// them for this engine). The no-options overload uses defaults.
[[nodiscard]] SpstaResult run_spsta_moment(
    const netlist::Netlist& design, const netlist::DelayModel& delays,
    std::span<const netlist::SourceStats> source_stats, const SpstaOptions& options);

/// Recomputes one combinational gate's four-value probabilities and
/// rise/fall tops from the current state — the single-node kernel shared
/// by the batch and incremental moment engines.
[[nodiscard]] NodeTop propagate_node_top(const netlist::Netlist& design,
                                         netlist::NodeId id,
                                         std::span<const NodeTop> state,
                                         const netlist::DelayModel& delays);

/// Same single-node kernel with an explicit pattern cache (nullable):
/// repeated recomputations of a node whose fanin probabilities are
/// unchanged — the hot case in incremental/ECO re-queries — skip pattern
/// enumeration. Exact keys keep hits bit-identical to recomputation.
[[nodiscard]] NodeTop propagate_node_top(const netlist::Netlist& design,
                                         netlist::NodeId id,
                                         std::span<const NodeTop> state,
                                         const netlist::DelayModel& delays,
                                         PatternCache* cache);

/// Runs the numeric engine on a precompiled plan: the grid comes from the
/// plan's precomputed structural delay span (bit-identical to the legacy
/// per-run scan) and no structural code executes.
[[nodiscard]] SpstaNumericResult run_spsta_numeric(
    const CompiledDesign& plan, std::span<const netlist::SourceStats> source_stats,
    const SpstaOptions& options = {});

/// Runs the numeric (piecewise-density) engine. Thin compile-then-run
/// wrapper over the CompiledDesign overload.
[[nodiscard]] SpstaNumericResult run_spsta_numeric(
    const netlist::Netlist& design, const netlist::DelayModel& delays,
    std::span<const netlist::SourceStats> source_stats,
    const SpstaOptions& options = {});

}  // namespace spsta::core
