/// \file spsta_canonical.hpp
/// Correlation-aware SPSTA: the paper's Sec. 3.4 moment-and-correlation
/// programme realized with first-order canonical forms.
///
/// The paper's experimental engine ignores signal correlations (its
/// observation 5 names them as the residual error source). Here every
/// conditional arrival time is a canonical form over one N(0,1) parameter
/// per (timing source, transition direction):
///
///   arrival = nominal + sum_i s_i * dX_i + resid * dR
///
/// so two reconvergent fanins that both depend on the same source arrival
/// carry that dependence explicitly, and the in-scenario MAX/MIN (Clark
/// with the *known* covariance) no longer double-counts their variance.
/// The WEIGHTED SUM blends scenario forms by probability weight and pushes
/// the cross-scenario spread into the residual (law of total variance).

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "variational/canonical.hpp"

namespace spsta::core {

class CompiledDesign;

/// t.o.p. in canonical form: occurrence probability plus the conditional
/// arrival as a canonical form over the source-arrival parameters.
struct CanonicalTop {
  double mass = 0.0;
  variational::CanonicalForm arrival;
};

/// Per-net result.
struct NodeCanonicalTop {
  netlist::FourValueProbs probs;
  CanonicalTop rise;
  CanonicalTop fall;
};

/// Full result. Parameter 2*i is source i's rise arrival, 2*i+1 its fall
/// arrival (unit-variance normalized).
struct SpstaCanonicalResult {
  std::vector<NodeCanonicalTop> node;
  std::size_t num_params = 0;

  /// Correlation of two nets' conditional arrivals in the given
  /// directions, from shared source-arrival sensitivities.
  [[nodiscard]] double arrival_correlation(netlist::NodeId a, bool a_rising,
                                           netlist::NodeId b, bool b_rising) const;
};

/// Runs the canonical-form engine on a precompiled plan (implementation-
/// level; application code goes through the Analyzer facade in
/// spsta_api.hpp). Warm runs reuse the plan's levelization and
/// switch-pattern cache; results are bit-identical to the legacy overload.
[[nodiscard]] SpstaCanonicalResult run_spsta_canonical(
    const CompiledDesign& plan, std::span<const netlist::SourceStats> source_stats);

/// Runs the canonical-form SPSTA engine (source stats as elsewhere;
/// single-element spans broadcast). Gate-delay variance is local and goes
/// to the residual term. Thin compile-then-run wrapper.
[[nodiscard]] SpstaCanonicalResult run_spsta_canonical(
    const netlist::Netlist& design, const netlist::DelayModel& delays,
    std::span<const netlist::SourceStats> source_stats);

}  // namespace spsta::core
