/// \file sequential.hpp
/// Steady-state sequential analysis. The paper (like the power-estimation
/// literature it builds on) assigns *given* statistics to flip-flop
/// outputs. This extension computes those statistics self-consistently:
/// iterate the four-value propagation, feeding each DFF's D-pin
/// probabilities back into its output (time-shifted by one cycle, so a D
/// value of r/f becomes a *next-cycle* initial value), until the
/// flip-flop statistics reach a fixpoint.
///
/// The cycle-to-cycle abstraction: if the D pin ends a cycle at value v
/// (final value), the FF output holds v for the whole next cycle... except
/// that consecutive cycles with different sampled values produce an output
/// transition at the clock edge. Under the cycle-independence
/// approximation, the FF output four-value probabilities follow from the
/// D pin's final-value distribution of two consecutive cycles:
///   P(out = 1)    = P(D final 1)^2         (one both cycles)
///   P(out = 0)    = P(D final 0)^2
///   P(out = rise) = P(D final 0) * P(D final 1)
///   P(out = fall) = P(D final 1) * P(D final 0)
/// with output transitions at the (deterministic) clock edge, jittered by
/// the configured clock arrival distribution.

#pragma once

#include <cstddef>
#include <vector>

#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"

namespace spsta::core {

/// Configuration of the fixpoint iteration.
struct SequentialConfig {
  /// Statistics of the primary inputs (held fixed across iterations).
  netlist::SourceStats input_stats = netlist::scenario_I();
  /// Initial guess for the flip-flop outputs.
  netlist::SourceStats ff_initial = netlist::scenario_I();
  /// Clock-edge arrival distribution applied to FF output transitions.
  stats::Gaussian clock_arrival{0.0, 0.01};
  std::size_t max_iterations = 64;
  /// L-inf convergence tolerance on FF output probabilities.
  double tolerance = 1e-9;
  /// Damping factor in (0, 1]: new = damping*computed + (1-damping)*old.
  double damping = 1.0;
};

/// Result of the fixpoint computation.
struct SequentialResult {
  /// Converged per-source statistics (PIs keep input_stats; DFFs get
  /// their steady-state values), in design.timing_sources() order.
  std::vector<netlist::SourceStats> source_stats;
  /// Final per-node four-value probabilities under those statistics.
  std::vector<netlist::FourValueProbs> node_probs;
  std::size_t iterations = 0;
  bool converged = false;
  /// Final L-inf change on FF probabilities.
  double residual = 0.0;
};

/// Runs the steady-state iteration on \p design.
[[nodiscard]] SequentialResult solve_sequential_fixpoint(const netlist::Netlist& design,
                                                         const SequentialConfig& config = {});

}  // namespace spsta::core
