#include "core/pattern_cache.hpp"

#include <bit>
#include <cmath>

#include "obs/metrics.hpp"

namespace spsta::core {

using netlist::FourValueProbs;

std::size_t PatternCache::KeyHash::operator()(const Key& k) const noexcept {
  // FNV-1a over the key words.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint64_t w : k.words) {
    h ^= w;
    h *= 0x100000001B3ULL;
  }
  return static_cast<std::size_t>(h);
}

std::size_t PatternCache::size() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return map_.size();
}

PatternCache::Patterns PatternCache::get(
    netlist::GateType type, std::span<const FourValueProbs> inputs) {
  Key key;
  key.words.reserve(1 + 4 * inputs.size());
  key.words.push_back(static_cast<std::uint64_t>(type));
  std::vector<FourValueProbs> quantized(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double q[4] = {inputs[i].p0, inputs[i].p1, inputs[i].pr, inputs[i].pf};
    double r[4];
    for (int j = 0; j < 4; ++j) {
      if (quantum_ > 0.0) {
        const double steps = std::max(0.0, std::round(q[j] / quantum_));
        key.words.push_back(static_cast<std::uint64_t>(steps));
        r[j] = steps * quantum_;
      } else {
        key.words.push_back(std::bit_cast<std::uint64_t>(q[j]));
        r[j] = q[j];
      }
    }
    quantized[i] = {r[0], r[1], r[2], r[3]};
  }

  static obs::Counter& hit_counter = obs::registry().counter("pattern_cache.hits");
  static obs::Counter& miss_counter = obs::registry().counter("pattern_cache.misses");
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter.add();
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter.add();
  // Compute outside the lock (concurrent misses for the same key produce
  // identical values, so whichever insert wins is immaterial).
  Patterns computed = std::make_shared<const std::vector<SwitchPattern>>(
      enumerate_switch_patterns(type, quantized));
  std::lock_guard<std::mutex> lk(mutex_);
  return map_.emplace(std::move(key), std::move(computed)).first->second;
}

}  // namespace spsta::core
