#include <cmath>
#include <stdexcept>

#include "core/pattern_cache.hpp"
#include "core/patterns.hpp"
#include "core/spsta.hpp"
#include "netlist/levelize.hpp"
#include "obs/metrics.hpp"
#include "sigprob/four_value_prop.hpp"
#include "stats/mixture.hpp"
#include "util/thread_pool.hpp"

namespace spsta::core {

using netlist::FourValueProbs;
using netlist::NodeId;
using stats::Gaussian;

double TransitionTop::skewness() const noexcept {
  if (arrival.var <= 0.0) return 0.0;
  return third_central / std::pow(arrival.var, 1.5);
}

namespace {

/// Third central moment of a Gaussian mixture whose components carry zero
/// third moment themselves:
///   m3 = sum_i q_i * (3 d_i var_i + d_i^3),  d_i = mu_i - mu.
double mixture_third_central(const stats::GaussianMixture& mix) {
  const double mass = mix.mass();
  if (mass <= 0.0) return 0.0;
  const double mu = mix.mean();
  double m3 = 0.0;
  for (const auto& c : mix.components()) {
    const double q = c.weight / mass;
    const double d = c.component.mean - mu;
    m3 += q * (3.0 * d * c.component.var + d * d * d);
  }
  return m3;
}

}  // namespace

namespace {

/// Folds the conditional arrival Gaussians of a scenario's switching
/// inputs with Clark MAX/MIN (inputs treated as independent, as in the
/// paper's implementation — see Sec. 4 observation 5).
Gaussian fold_arrivals(const SwitchPattern& p, std::span<const NodeTop> node,
                       const std::vector<NodeId>& fanins) {
  Gaussian acc;
  bool first = true;
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    if (!(p.switching_mask & (1u << i))) continue;
    const NodeTop& in = node[fanins[i]];
    const Gaussian contrib =
        (p.rising_mask & (1u << i)) ? in.rise.arrival : in.fall.arrival;
    if (first) {
      acc = contrib;
      first = false;
    } else {
      acc = (p.op == SettleOp::Max) ? stats::clark_max(acc, contrib).moments
                                    : stats::clark_min(acc, contrib).moments;
    }
  }
  return acc;
}

}  // namespace

namespace {

/// Single-node kernel; \p cache (nullable) memoizes pattern enumeration.
NodeTop propagate_node_top_impl(const netlist::Netlist& design, NodeId id,
                                std::span<const NodeTop> state,
                                const netlist::DelayModel& delays,
                                PatternCache* cache) {
  const netlist::Node& node = design.node(id);
  NodeTop top;
  std::vector<FourValueProbs> fanin_probs;
  fanin_probs.reserve(node.fanins.size());
  for (NodeId f : node.fanins) fanin_probs.push_back(state[f].probs);
  top.probs = sigprob::gate_four_value(node.type, fanin_probs);

  if (node.fanins.empty()) return top;  // constants: no transitions

  PatternCache::Patterns cached;
  std::vector<SwitchPattern> owned;
  if (cache != nullptr) {
    cached = cache->get(node.type, fanin_probs);
  } else {
    owned = enumerate_switch_patterns(node.type, fanin_probs);
  }
  const std::span<const SwitchPattern> patterns =
      cache != nullptr ? std::span<const SwitchPattern>(*cached)
                       : std::span<const SwitchPattern>(owned);
  stats::GaussianMixture rise_mix, fall_mix;
  for (const SwitchPattern& p : patterns) {
    const Gaussian arrival = fold_arrivals(p, state, node.fanins);
    (p.output_rising ? rise_mix : fall_mix).add(p.weight, arrival);
  }
  // Adding the (symmetric) gate delay leaves the third central moment of
  // the mixture unchanged.
  top.rise = {rise_mix.mass(), stats::sum(rise_mix.moments(), delays.delay(id, true)),
              mixture_third_central(rise_mix)};
  top.fall = {fall_mix.mass(), stats::sum(fall_mix.moments(), delays.delay(id, false)),
              mixture_third_central(fall_mix)};
  if (top.rise.mass <= 0.0) top.rise = {};
  if (top.fall.mass <= 0.0) top.fall = {};
  return top;
}

}  // namespace

NodeTop propagate_node_top(const netlist::Netlist& design, NodeId id,
                           std::span<const NodeTop> state,
                           const netlist::DelayModel& delays) {
  return propagate_node_top_impl(design, id, state, delays, nullptr);
}

SpstaResult run_spsta_moment(const netlist::Netlist& design,
                             const netlist::DelayModel& delays,
                             std::span<const netlist::SourceStats> source_stats) {
  return run_spsta_moment(design, delays, source_stats, SpstaOptions{});
}

SpstaResult run_spsta_moment(const netlist::Netlist& design,
                             const netlist::DelayModel& delays,
                             std::span<const netlist::SourceStats> source_stats,
                             const SpstaOptions& options) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_stats.size() != sources.size() && source_stats.size() != 1) {
    throw std::invalid_argument("run_spsta_moment: source stats count mismatch");
  }

  SpstaResult result;
  result.node.assign(design.node_count(), NodeTop{});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    NodeTop& top = result.node[sources[i]];
    top.probs = st.probs.normalized();
    top.rise = {top.probs.pr, st.rise_arrival};
    top.fall = {top.probs.pf, st.fall_arrival};
  }

  PatternCache local_cache(options.pattern_quantum);
  PatternCache* const cache =
      options.shared_pattern_cache != nullptr
          ? options.shared_pattern_cache
          : (options.use_pattern_cache ? &local_cache : nullptr);

  // Level-parallel propagation: nodes of one level depend only on strictly
  // lower levels, so they evaluate concurrently and each writes its own
  // slot — bit-identical results at any thread count.
  const netlist::Levelization lv = netlist::levelize(design);
  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.moment.propagate");
  const obs::StageTimer timer(stage_hist);
  util::ThreadPool pool(options.threads);
  for (const std::vector<NodeId>& group : netlist::level_groups(lv)) {
    pool.for_each_index(group.size(), [&](std::size_t k) {
      const NodeId id = group[k];
      if (!netlist::is_combinational(design.node(id).type)) return;
      result.node[id] =
          propagate_node_top_impl(design, id, result.node, delays, cache);
    });
  }
  return result;
}

}  // namespace spsta::core
