#include <cmath>

#include "core/compiled_design.hpp"
#include "core/pattern_cache.hpp"
#include "core/patterns.hpp"
#include "core/spsta.hpp"
#include "obs/metrics.hpp"
#include "sigprob/four_value_prop.hpp"
#include "stats/mixture.hpp"
#include "util/thread_pool.hpp"

namespace spsta::core {

using netlist::FourValueProbs;
using netlist::NodeId;
using stats::Gaussian;

double TransitionTop::skewness() const noexcept {
  if (arrival.var <= 0.0) return 0.0;
  return third_central / std::pow(arrival.var, 1.5);
}

namespace {

/// Third central moment of a Gaussian mixture whose components carry zero
/// third moment themselves:
///   m3 = sum_i q_i * (3 d_i var_i + d_i^3),  d_i = mu_i - mu.
double mixture_third_central(const stats::GaussianMixture& mix) {
  const double mass = mix.mass();
  if (mass <= 0.0) return 0.0;
  const double mu = mix.mean();
  double m3 = 0.0;
  for (const auto& c : mix.components()) {
    const double q = c.weight / mass;
    const double d = c.component.mean - mu;
    m3 += q * (3.0 * d * c.component.var + d * d * d);
  }
  return m3;
}

/// Folds the conditional arrival Gaussians of a scenario's switching
/// inputs with Clark MAX/MIN (inputs treated as independent, as in the
/// paper's implementation — see Sec. 4 observation 5).
Gaussian fold_arrivals(const SwitchPattern& p, std::span<const NodeTop> node,
                       std::span<const NodeId> fanins) {
  Gaussian acc;
  bool first = true;
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    if (!(p.switching_mask & (1u << i))) continue;
    const NodeTop& in = node[fanins[i]];
    const Gaussian contrib =
        (p.rising_mask & (1u << i)) ? in.rise.arrival : in.fall.arrival;
    if (first) {
      acc = contrib;
      first = false;
    } else {
      acc = (p.op == SettleOp::Max) ? stats::clark_max(acc, contrib).moments
                                    : stats::clark_min(acc, contrib).moments;
    }
  }
  return acc;
}

/// Single-node kernel; \p cache (nullable) memoizes pattern enumeration.
NodeTop propagate_node_top_impl(netlist::GateType type,
                                std::span<const NodeId> fanins, NodeId id,
                                std::span<const NodeTop> state,
                                const netlist::DelayModel& delays,
                                PatternCache* cache) {
  NodeTop top;
  std::vector<FourValueProbs> fanin_probs;
  fanin_probs.reserve(fanins.size());
  for (NodeId f : fanins) fanin_probs.push_back(state[f].probs);
  top.probs = sigprob::gate_four_value(type, fanin_probs);

  if (fanins.empty()) return top;  // constants: no transitions

  PatternCache::Patterns cached;
  std::vector<SwitchPattern> owned;
  if (cache != nullptr) {
    cached = cache->get(type, fanin_probs);
  } else {
    owned = enumerate_switch_patterns(type, fanin_probs);
  }
  const std::span<const SwitchPattern> patterns =
      cache != nullptr ? std::span<const SwitchPattern>(*cached)
                       : std::span<const SwitchPattern>(owned);
  stats::GaussianMixture rise_mix, fall_mix;
  for (const SwitchPattern& p : patterns) {
    const Gaussian arrival = fold_arrivals(p, state, fanins);
    (p.output_rising ? rise_mix : fall_mix).add(p.weight, arrival);
  }
  // Adding the (symmetric) gate delay leaves the third central moment of
  // the mixture unchanged.
  top.rise = {rise_mix.mass(), stats::sum(rise_mix.moments(), delays.delay(id, true)),
              mixture_third_central(rise_mix)};
  top.fall = {fall_mix.mass(), stats::sum(fall_mix.moments(), delays.delay(id, false)),
              mixture_third_central(fall_mix)};
  if (top.rise.mass <= 0.0) top.rise = {};
  if (top.fall.mass <= 0.0) top.fall = {};
  return top;
}

/// Cache selection shared by both engines' compiled runs: an explicit
/// shared cache wins; the default exact-key configuration reuses the
/// plan's persistent cache (hits are bit-identical to recomputation); a
/// custom quantum falls back to \p local so the plan's exact-key entries
/// are never mixed with quantized ones.
PatternCache* select_cache(const CompiledDesign& plan, const SpstaOptions& options,
                           PatternCache& local) {
  if (options.shared_pattern_cache != nullptr) return options.shared_pattern_cache;
  if (!options.use_pattern_cache) return nullptr;
  if (options.pattern_quantum == PatternCache::kExactKeys) return &plan.pattern_cache();
  return &local;
}

}  // namespace

NodeTop propagate_node_top(const netlist::Netlist& design, NodeId id,
                           std::span<const NodeTop> state,
                           const netlist::DelayModel& delays) {
  const netlist::Node& node = design.node(id);
  return propagate_node_top_impl(node.type, node.fanins, id, state, delays, nullptr);
}

NodeTop propagate_node_top(const netlist::Netlist& design, NodeId id,
                           std::span<const NodeTop> state,
                           const netlist::DelayModel& delays, PatternCache* cache) {
  const netlist::Node& node = design.node(id);
  return propagate_node_top_impl(node.type, node.fanins, id, state, delays, cache);
}

SpstaResult run_spsta_moment(const CompiledDesign& plan,
                             std::span<const netlist::SourceStats> source_stats,
                             const SpstaOptions& options) {
  plan.check_source_stats(source_stats, "run_spsta_moment");
  const std::span<const NodeId> sources = plan.timing_sources();

  SpstaResult result;
  result.node.assign(plan.node_count(), NodeTop{});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    NodeTop& top = result.node[sources[i]];
    top.probs = st.probs.normalized();
    top.rise = {top.probs.pr, st.rise_arrival};
    top.fall = {top.probs.pf, st.fall_arrival};
  }

  PatternCache local_cache(options.pattern_quantum);
  PatternCache* const cache = select_cache(plan, options, local_cache);

  // Level-parallel propagation: nodes of one level depend only on strictly
  // lower levels, so they evaluate concurrently and each writes its own
  // slot — bit-identical results at any thread count.
  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.moment.propagate");
  const obs::StageTimer timer(stage_hist);
  util::ThreadPool local_pool(options.shared_pool != nullptr ? 1 : options.threads);
  util::ThreadPool& pool =
      options.shared_pool != nullptr ? *options.shared_pool : local_pool;
  for (std::size_t level = 0; level < plan.level_count(); ++level) {
    const std::span<const NodeId> group = plan.level_nodes(level);
    pool.for_each_index(group.size(), [&](std::size_t k) {
      const NodeId id = group[k];
      if (!plan.combinational(id)) return;
      result.node[id] = propagate_node_top_impl(
          plan.type(id), plan.fanins(id), id, result.node, plan.delays(), cache);
    });
  }
  return result;
}

SpstaResult run_spsta_moment(const netlist::Netlist& design,
                             const netlist::DelayModel& delays,
                             std::span<const netlist::SourceStats> source_stats) {
  return run_spsta_moment(design, delays, source_stats, SpstaOptions{});
}

SpstaResult run_spsta_moment(const netlist::Netlist& design,
                             const netlist::DelayModel& delays,
                             std::span<const netlist::SourceStats> source_stats,
                             const SpstaOptions& options) {
  return run_spsta_moment(CompiledDesign(design, delays), source_stats, options);
}

}  // namespace spsta::core
