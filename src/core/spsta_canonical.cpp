#include "core/spsta_canonical.hpp"

#include <algorithm>
#include <cmath>

#include "core/compiled_design.hpp"
#include "core/patterns.hpp"
#include "sigprob/four_value_prop.hpp"

namespace spsta::core {

using netlist::FourValueProbs;
using netlist::NodeId;
using variational::CanonicalForm;

double SpstaCanonicalResult::arrival_correlation(NodeId a, bool a_rising, NodeId b,
                                                 bool b_rising) const {
  const CanonicalForm& fa = a_rising ? node.at(a).rise.arrival : node.at(a).fall.arrival;
  const CanonicalForm& fb = b_rising ? node.at(b).rise.arrival : node.at(b).fall.arrival;
  return variational::correlation(fa, fb);
}

namespace {

/// Clark MAX/MIN fold over a scenario's switching inputs, covariance taken
/// from the canonical forms themselves.
CanonicalForm fold_arrivals(const SwitchPattern& p,
                            const std::vector<NodeCanonicalTop>& node,
                            std::span<const NodeId> fanins) {
  CanonicalForm acc;
  bool first = true;
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    if (!(p.switching_mask & (1u << i))) continue;
    const NodeCanonicalTop& in = node[fanins[i]];
    const CanonicalForm& contrib =
        (p.rising_mask & (1u << i)) ? in.rise.arrival : in.fall.arrival;
    if (first) {
      acc = contrib;
      first = false;
    } else {
      acc = (p.op == SettleOp::Max) ? variational::max(acc, contrib)
                                    : variational::min(acc, contrib);
    }
  }
  return acc;
}

/// Probability-weighted mixture of canonical forms collapsed back to one
/// form: nominal and sensitivities blend linearly; the residual absorbs
/// the cross-scenario mean spread plus each scenario's own residual (law
/// of total variance applied to the non-shared part).
CanonicalForm collapse_mixture(const std::vector<std::pair<double, CanonicalForm>>& mix,
                               std::size_t num_params) {
  double mass = 0.0;
  for (const auto& [w, f] : mix) mass += w;
  if (mass <= 0.0 || mix.empty()) return CanonicalForm(0.0, num_params);

  CanonicalForm out(0.0, num_params);
  double nominal = 0.0;
  std::vector<double> sens(num_params, 0.0);
  for (const auto& [w, f] : mix) {
    const double q = w / mass;
    nominal += q * f.nominal();
    for (std::size_t j = 0; j < num_params; ++j) sens[j] += q * f.sensitivity(j);
  }
  // Total variance of the mixture (each component is Gaussian with its
  // canonical variance around its nominal).
  double total_var = 0.0;
  for (const auto& [w, f] : mix) {
    const double q = w / mass;
    const double d = f.nominal() - nominal;
    total_var += q * (f.variance() + d * d);
  }
  double shared_var = 0.0;
  for (double s : sens) shared_var += s * s;
  const double resid = std::sqrt(std::max(0.0, total_var - shared_var));
  return {nominal, std::move(sens), resid};
}

}  // namespace

SpstaCanonicalResult run_spsta_canonical(const CompiledDesign& plan,
                                         std::span<const netlist::SourceStats> source_stats) {
  plan.check_source_stats(source_stats, "run_spsta_canonical");
  const std::span<const NodeId> sources = plan.timing_sources();

  SpstaCanonicalResult result;
  result.num_params = 2 * sources.size();
  result.node.assign(plan.node_count(),
                     NodeCanonicalTop{{}, {0.0, CanonicalForm(0.0, result.num_params)},
                                      {0.0, CanonicalForm(0.0, result.num_params)}});

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    NodeCanonicalTop& top = result.node[sources[i]];
    top.probs = st.probs.normalized();

    CanonicalForm rise(st.rise_arrival.mean, result.num_params);
    rise.set_sensitivity(2 * i, st.rise_arrival.stddev());
    top.rise = {top.probs.pr, std::move(rise)};

    CanonicalForm fall(st.fall_arrival.mean, result.num_params);
    fall.set_sensitivity(2 * i + 1, st.fall_arrival.stddev());
    top.fall = {top.probs.pf, std::move(fall)};
  }

  std::vector<FourValueProbs> fanin_probs;
  for (NodeId id : plan.levelization().order) {
    if (!plan.combinational(id)) continue;
    const netlist::GateType type = plan.type(id);
    const std::span<const NodeId> fanins = plan.fanins(id);

    NodeCanonicalTop& top = result.node[id];
    fanin_probs.clear();
    for (NodeId f : fanins) fanin_probs.push_back(result.node[f].probs);
    top.probs = sigprob::gate_four_value(type, fanin_probs);

    if (fanins.empty()) {
      top.rise = {0.0, CanonicalForm(0.0, result.num_params)};
      top.fall = {0.0, CanonicalForm(0.0, result.num_params)};
      continue;
    }

    // The plan's exact-key cache memoizes enumeration across runs; a hit
    // is bit-identical to recomputation (see pattern_cache.hpp).
    const PatternCache::Patterns patterns = plan.pattern_cache().get(type, fanin_probs);
    std::vector<std::pair<double, CanonicalForm>> rise_mix, fall_mix;
    for (const SwitchPattern& p : *patterns) {
      CanonicalForm arrival = fold_arrivals(p, result.node, fanins);
      (p.output_rising ? rise_mix : fall_mix).emplace_back(p.weight, std::move(arrival));
    }

    const auto finish = [&](std::vector<std::pair<double, CanonicalForm>>& mix,
                            const stats::Gaussian& d) -> CanonicalTop {
      double mass = 0.0;
      for (const auto& [w, f] : mix) mass += w;
      if (mass <= 0.0) return {0.0, CanonicalForm(0.0, result.num_params)};
      CanonicalForm form = collapse_mixture(mix, result.num_params);
      CanonicalForm shifted(form.nominal() + d.mean,
                            std::vector<double>(form.sensitivities().begin(),
                                                form.sensitivities().end()),
                            std::hypot(form.residual(), d.stddev()));
      return {mass, std::move(shifted)};
    };
    top.rise = finish(rise_mix, plan.delays().delay(id, true));
    top.fall = finish(fall_mix, plan.delays().delay(id, false));
  }
  return result;
}

SpstaCanonicalResult run_spsta_canonical(const netlist::Netlist& design,
                                         const netlist::DelayModel& delays,
                                         std::span<const netlist::SourceStats> source_stats) {
  return run_spsta_canonical(CompiledDesign(design, delays), source_stats);
}

}  // namespace spsta::core
