#include "core/criticality.hpp"

#include <algorithm>
#include <cmath>

namespace spsta::core {

using netlist::NodeId;

CriticalityResult endpoint_criticality(const netlist::Netlist& design,
                                       const SpstaNumericResult& result) {
  CriticalityResult out;
  out.endpoints = design.timing_endpoints();
  const std::size_t k = out.endpoints.size();
  out.probability.assign(k, 0.0);
  if (k == 0) {
    out.quiet_probability = 1.0;
    return out;
  }

  const stats::GridSpec& grid = result.grid;

  // Combined per-endpoint transition density (rise + fall are mutually
  // exclusive events on one net) and its running CDF, on the engine grid.
  std::vector<std::vector<double>> density(k, std::vector<double>(grid.n, 0.0));
  std::vector<std::vector<double>> cdf(k);
  std::vector<double> mass(k, 0.0);
  for (std::size_t e = 0; e < k; ++e) {
    const NodeTopDensity& node = result.node[out.endpoints[e]];
    const auto rise = node.rise.resampled(grid);
    const auto fall = node.fall.resampled(grid);
    for (std::size_t i = 0; i < grid.n; ++i) {
      density[e][i] = rise.values()[i] + fall.values()[i];
    }
    const stats::PiecewiseDensity combined(grid, density[e]);
    cdf[e] = combined.cumulative();
    mass[e] = cdf[e].empty() ? 0.0 : cdf[e].back();
    mass[e] = std::min(mass[e], 1.0);
  }

  double quiet = 1.0;
  for (std::size_t e = 0; e < k; ++e) quiet *= 1.0 - mass[e];
  out.quiet_probability = std::clamp(quiet, 0.0, 1.0);

  // Trapezoid integral of f_e(t) * prod_{e'!=e}(1 - m_e' + F_e'(t)).
  for (std::size_t e = 0; e < k; ++e) {
    double acc = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < grid.n; ++i) {
      double others = 1.0;
      for (std::size_t o = 0; o < k; ++o) {
        if (o == e) continue;
        others *= std::clamp(1.0 - mass[o] + cdf[o][i], 0.0, 1.0);
      }
      const double integrand = density[e][i] * others;
      if (i > 0) acc += 0.5 * (prev + integrand) * grid.dt;
      prev = integrand;
    }
    out.probability[e] = std::clamp(acc, 0.0, 1.0);
  }
  return out;
}

}  // namespace spsta::core
