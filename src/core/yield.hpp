/// \file yield.hpp
/// Timing yield from SPSTA results (paper Sec. 3.7, point 5: the
/// transition occurrence probability "is an integral part in estimating
/// the probability for a chip to meet its performance requirement").
///
/// For one endpoint and direction, the probability of a *late* transition
/// at clock period T is `mass - cdf(T)` of its t.o.p.; the endpoint meets
/// timing with probability `1 - P(late)`. Circuit yield multiplies
/// endpoints under an independence approximation (exact correlations would
/// need the joint analysis of paper Sec. 3.5).

#pragma once

#include <vector>

#include "core/spsta.hpp"
#include "netlist/netlist.hpp"

namespace spsta::core {

/// P(the endpoint produces no transition later than \p period) for both
/// directions combined, from the numeric engine's t.o.p. densities.
[[nodiscard]] double endpoint_yield(const SpstaNumericResult& result,
                                    netlist::NodeId endpoint, double period);

/// Circuit timing yield at \p period over all timing endpoints
/// (independence approximation). Also usable with any endpoint subset.
[[nodiscard]] double timing_yield(const netlist::Netlist& design,
                                  const SpstaNumericResult& result, double period);

/// One point of a yield curve.
struct YieldPoint {
  double period = 0.0;
  double yield = 0.0;
};

/// Samples the yield curve over [t_lo, t_hi] at \p points periods.
[[nodiscard]] std::vector<YieldPoint> yield_curve(const netlist::Netlist& design,
                                                  const SpstaNumericResult& result,
                                                  double t_lo, double t_hi,
                                                  std::size_t points);

/// Smallest period meeting \p target yield (bisection over the curve
/// range; returns t_hi if even that misses the target).
[[nodiscard]] double period_for_yield(const netlist::Netlist& design,
                                      const SpstaNumericResult& result, double target,
                                      double t_lo, double t_hi);

}  // namespace spsta::core
