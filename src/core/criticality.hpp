/// \file criticality.hpp
/// Endpoint criticality probabilities from SPSTA's numeric t.o.p.
/// densities: P(endpoint e produces the latest transition of the cycle).
/// This is the statistical analogue of "the critical path" — the
/// probability-weighted answer the paper's Sec. 1 background attributes to
/// path-based SSTA ("timing criticality probabilities ... for signoff"),
/// here computed from occurrence-weighted arrival distributions instead
/// of always-switching path delays.
///
/// Under endpoint independence:
///   P(e critical) = integral f_e(t) * prod_{e' != e} (1 - m_e' + F_e'(t)) dt
/// where f_e combines the endpoint's rise and fall t.o.p. (mutually
/// exclusive per cycle), m is total transition mass and F the t.o.p. CDF.
/// P(quiet cycle) = prod_e (1 - m_e) accounts for cycles with no endpoint
/// transition at all.

#pragma once

#include <vector>

#include "core/spsta.hpp"
#include "netlist/netlist.hpp"

namespace spsta::core {

/// Criticality distribution over endpoints.
struct CriticalityResult {
  /// Endpoint ids in design.timing_endpoints() order.
  std::vector<netlist::NodeId> endpoints;
  /// P(endpoint is the latest to transition); sums with quiet_probability
  /// to ~1 (up to discretization).
  std::vector<double> probability;
  /// P(no endpoint transitions in a cycle).
  double quiet_probability = 0.0;
};

/// Computes endpoint criticalities from a numeric SPSTA result.
[[nodiscard]] CriticalityResult endpoint_criticality(const netlist::Netlist& design,
                                                     const SpstaNumericResult& result);

}  // namespace spsta::core
