/// \file patterns.hpp
/// Input-switching scenario enumeration behind the WEIGHTED SUM operation
/// (paper Eq. 8/11/12): for a k-input gate, every subset of switching
/// inputs that produces an output transition contributes one weighted term
/// whose arrival distribution is the MAX (or MIN) over the subset.
///
/// Enumeration is exact over the joint input assignments (independence
/// assumed) but walks only the *support* — per-input four-values with
/// nonzero probability — and collapses assignments sharing the same
/// switching set and directions, so each distinct (subset, directions)
/// pair appears once with its total probability weight — the O(2^k) form
/// the paper quotes. A 12-input gate whose inputs are static (or have any
/// pruned four-values) enumerates in milliseconds instead of walking all
/// 4^12 codes.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"

namespace spsta::core {

/// Which order statistic the settled output transition time takes over
/// the switching inputs of one scenario.
enum class SettleOp : std::uint8_t { Max, Min };

/// One weighted switching scenario of a gate.
struct SwitchPattern {
  /// Total probability of the scenario (over all compatible static values
  /// of the non-switching inputs).
  double weight = 0.0;
  /// Direction of the resulting output transition.
  bool output_rising = false;
  /// Settled-time operation over the switching inputs.
  SettleOp op = SettleOp::Max;
  /// Bit i set: input i switches in this scenario.
  std::uint32_t switching_mask = 0;
  /// Bit i set: input i rises (valid only where switching_mask has bit i).
  std::uint32_t rising_mask = 0;
};

/// Enumerates all output-transition scenarios of \p type under the given
/// independent input four-value probabilities. Zero-weight scenarios are
/// dropped. Throws std::invalid_argument for more than 16 inputs, or when
/// the joint nonzero-probability support exceeds 2^26 assignments (a dense
/// fanin-14+ gate) — previously such gates silently iterated for minutes.
///
/// Invariants (tested):
///   sum of weights over rising scenarios  == gate_four_value(...).pr
///   sum of weights over falling scenarios == gate_four_value(...).pf
[[nodiscard]] std::vector<SwitchPattern> enumerate_switch_patterns(
    netlist::GateType type, std::span<const netlist::FourValueProbs> inputs);

}  // namespace spsta::core
