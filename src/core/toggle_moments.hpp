/// \file toggle_moments.hpp
/// Moment-and-correlation propagation of signal toggling rates
/// (paper Sec. 3.4, Eq. 13): the t.o.p. integral (toggling rate) is a
/// linear WEIGHTED SUM of input toggling rates with Boolean-difference
/// weights, so its mean, variance and all pairwise covariances propagate
/// in one netlist traversal:
///   mean(y)    = sum_i w_i mean(x_i)
///   cov(y, z)  = sum_i w_i cov(x_i, z)
///   var(y)     = sum_i w_i^2 var(x_i) + 2 sum_{i<j} w_i w_j cov(x_i, x_j)
/// where w_i = P(dy/dx_i).

#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::core {

/// Per-source toggling-rate statistics (the paper's scenario I has mean
/// 0.5 / variance 0.25; scenario II mean 0.1 / variance 0.09).
struct SourceToggle {
  double mean = 0.5;
  double var = 0.25;
};

/// Result: per-node toggling-rate moments and pairwise covariances.
class ToggleMoments {
 public:
  explicit ToggleMoments(std::size_t n)
      : n_(n), mean_(n, 0.0), cov_(n * (n + 1) / 2, 0.0) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] double mean(netlist::NodeId id) const { return mean_.at(id); }
  [[nodiscard]] double variance(netlist::NodeId id) const { return covariance(id, id); }
  [[nodiscard]] double covariance(netlist::NodeId a, netlist::NodeId b) const;
  [[nodiscard]] double correlation(netlist::NodeId a, netlist::NodeId b) const;

  void set_mean(netlist::NodeId id, double m) { mean_.at(id) = m; }
  void set_covariance(netlist::NodeId a, netlist::NodeId b, double c);

 private:
  [[nodiscard]] std::size_t index(std::size_t a, std::size_t b) const noexcept;
  std::size_t n_;
  std::vector<double> mean_;
  std::vector<double> cov_;
};

/// Propagates toggling-rate moments through \p design. Boolean-difference
/// weights use independent signal probabilities from \p source_probs
/// (P(=1), broadcast if single); \p source_toggle gives per-source
/// toggling moments (broadcast if single). Sources are uncorrelated, as
/// in the paper's experiment.
[[nodiscard]] ToggleMoments propagate_toggle_moments(
    const netlist::Netlist& design, std::span<const double> source_probs,
    std::span<const SourceToggle> source_toggle);

}  // namespace spsta::core
