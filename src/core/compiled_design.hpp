/// \file compiled_design.hpp
/// The reusable analysis plan: everything the engines re-derive from a
/// `(Netlist, DelayModel)` pair on every call, compiled once and shared by
/// every subsequent run — the amortization layer behind the `Analyzer`
/// facade (spsta_api.hpp) and the service session store.
///
/// A `CompiledDesign` is immutable after construction and safe to share
/// across threads; its only mutable component, the switch-pattern cache,
/// is internally synchronized and keyed on exact probability bit patterns,
/// so a cache hit is bit-identical to a recomputation no matter which run
/// populated the entry. It carries:
///
///  * the levelization with per-level node ranges laid out contiguously
///    (one flat array + offsets — the unit of level-parallel dispatch),
///  * structure-of-arrays fanin/fanout adjacency (flat index + offset
///    arrays instead of chasing per-node `std::vector`s),
///  * cached timing sources / endpoints and per-node combinational flags,
///  * the structural delay span products the numeric engine's grid choice
///    needs (critical-path delay, worst per-gate delay sigma, depth),
///  * a shared `PatternCache` that persists across runs, subsuming the
///    per-run warm-up the engines used to pay, and
///  * a content hash over the netlist structure and delay assignment,
///    compatible with the service's session/result cache keys.
///
/// Every engine gains a `run_*(const CompiledDesign&, ...)` overload that
/// skips all structural work; the legacy `(Netlist, DelayModel, ...)`
/// overloads are thin compile-then-run wrappers over this type.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/pattern_cache.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "stats/conv_kernels.hpp"
#include "stats/piecewise.hpp"

namespace spsta::core {

struct SpstaOptions;

/// Per-(gate, transition) delay kernels discretized on one grid step —
/// the numeric engine's SUM-with-delay operators, precomputed once per
/// distinct `dt` and reused across patterns, runs, and ECO re-queries.
///
/// Kernels are deduplicated by the (mean, var) bit patterns of the
/// underlying Gaussian delays — a uniform delay model collapses to one
/// unique kernel per direction — and each node indexes into the unique
/// pool. When built for a known grid size (`delay_kernels(dt, grid_n)`),
/// the unique kernels additionally carry their FFT half-spectra
/// precomputed for that size (under `kMaxSpectraBytes`), so the numeric
/// engine's batched convolutions skip the kernel transform entirely.
/// Spectra are built with the exact function the on-the-fly path uses,
/// so precomputation changes cost, never a result bit.
struct DelayKernelSet {
  double dt = 0.0;
  std::size_t spec_grid_n = 0;  ///< grid size the spectra were built for (0 = none)
  std::vector<stats::DelayKernel> kernels;            ///< unique kernels
  std::vector<std::uint32_t> rise_index, fall_index;  ///< NodeId -> kernels

  [[nodiscard]] const stats::DelayKernel& rise(netlist::NodeId id) const {
    return kernels[rise_index[id]];
  }
  [[nodiscard]] const stats::DelayKernel& fall(netlist::NodeId id) const {
    return kernels[fall_index[id]];
  }
};

/// Immutable per-(netlist, delay model) analysis plan.
///
/// Lifetime: holds a reference to \p design (which must outlive the plan)
/// and a private copy of \p delays (so later edits to the caller's model
/// cannot silently invalidate the precomputed delay-span products).
class CompiledDesign {
 public:
  CompiledDesign(const netlist::Netlist& design, const netlist::DelayModel& delays);

  [[nodiscard]] const netlist::Netlist& design() const noexcept { return *design_; }
  [[nodiscard]] const netlist::DelayModel& delays() const noexcept { return delays_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return combinational_.size(); }

  // -- Levelization ---------------------------------------------------
  /// All nodes in topological order (the legacy Levelization view, kept
  /// for engines that walk serially or need per-node levels).
  [[nodiscard]] const netlist::Levelization& levelization() const noexcept {
    return levels_;
  }
  /// Combinational depth in gate counts.
  [[nodiscard]] std::size_t depth() const noexcept { return levels_.depth; }
  /// Number of levels (depth + 1; 0 for an empty design).
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_offsets_.empty() ? 0 : level_offsets_.size() - 1;
  }
  /// Nodes of one level, contiguous in memory — the unit of parallel gate
  /// evaluation (a node's fanins live in strictly lower levels).
  [[nodiscard]] std::span<const netlist::NodeId> level_nodes(std::size_t level) const {
    return {level_order_.data() + level_offsets_[level],
            level_offsets_[level + 1] - level_offsets_[level]};
  }

  // -- Structure-of-arrays adjacency ----------------------------------
  [[nodiscard]] std::span<const netlist::NodeId> fanins(netlist::NodeId id) const {
    return {fanin_arena_.data() + fanin_offsets_[id],
            fanin_offsets_[id + 1] - fanin_offsets_[id]};
  }
  [[nodiscard]] std::span<const netlist::NodeId> fanouts(netlist::NodeId id) const {
    return {fanout_arena_.data() + fanout_offsets_[id],
            fanout_offsets_[id + 1] - fanout_offsets_[id]};
  }
  /// True for logic gates and constants (nodes the propagation loops
  /// evaluate; sources and DFFs carry externally supplied state).
  [[nodiscard]] bool combinational(netlist::NodeId id) const {
    return combinational_[id] != 0;
  }
  [[nodiscard]] netlist::GateType type(netlist::NodeId id) const { return type_[id]; }

  [[nodiscard]] std::span<const netlist::NodeId> timing_sources() const noexcept {
    return timing_sources_;
  }
  [[nodiscard]] std::span<const netlist::NodeId> timing_endpoints() const noexcept {
    return timing_endpoints_;
  }

  // -- Structural delay-span products (numeric engine grid) ------------
  /// Worst-case structural delay under mean gate delays (the longest
  /// endpoint path).
  [[nodiscard]] double structural_delay() const noexcept { return structural_delay_; }
  /// Largest per-gate delay standard deviation in the model.
  [[nodiscard]] double max_delay_stddev() const noexcept { return max_delay_stddev_; }
  /// The numeric-engine grid for the given sources and options — the same
  /// arithmetic the legacy engine performed per run, with the structural
  /// scan amortized into compile time. Bit-identical to the legacy choice.
  [[nodiscard]] stats::GridSpec grid_for(
      std::span<const netlist::SourceStats> source_stats,
      const SpstaOptions& options) const;

  // -- Shared switch-pattern cache -------------------------------------
  /// Exact-key pattern cache shared by every run over this plan. Warm
  /// requests skip enumeration entirely; exact keys keep hits bit-identical
  /// to recomputation (see pattern_cache.hpp).
  [[nodiscard]] PatternCache& pattern_cache() const noexcept { return pattern_cache_; }

  // -- Precomputed delay kernels ---------------------------------------
  /// Discretized Gaussian delay kernels for every combinational node on
  /// grid step \p dt (sigmas fixed at 8.0 — the engine's tail coverage),
  /// deduplicated across nodes. When \p grid_n (the engine's grid point
  /// count) is nonzero, the unique kernels that would take the FFT path
  /// at that size also carry precomputed half-spectra (bounded by
  /// `kMaxSpectraBytes`). Built once per distinct (dt, grid_n), internally
  /// synchronized, and shared — a kernel is a pure function of
  /// (delay, dt), so cached and freshly built kernels are bit-identical.
  /// The cache keeps the most recent `kMaxKernelSets` keys; outstanding
  /// shared_ptrs stay valid after eviction.
  [[nodiscard]] std::shared_ptr<const DelayKernelSet> delay_kernels(
      double dt, std::size_t grid_n = 0) const;

  static constexpr std::size_t kMaxKernelSets = 16;
  /// Upper bound on precomputed-spectrum bytes per kernel set; unique
  /// kernels past the budget fall back to on-the-fly spectra (same bits,
  /// more work).
  static constexpr std::size_t kMaxSpectraBytes = std::size_t{64} << 20;

  /// FNV-1a content hash over the netlist structure (names, types, fanins,
  /// output/DFF markings) and the observable delay assignment. Equal
  /// inputs hash equal across runs and platforms; any netlist or delay
  /// change produces a different hash (modulo 64-bit collisions) — the
  /// key the service session store files plans and results under.
  [[nodiscard]] std::uint64_t content_hash() const noexcept { return content_hash_; }

  /// Throws std::invalid_argument unless \p source_stats has exactly one
  /// entry (broadcast) or one per timing source — the shared precondition
  /// of every engine.
  void check_source_stats(std::span<const netlist::SourceStats> source_stats,
                          const char* who) const;

 private:
  const netlist::Netlist* design_;
  netlist::DelayModel delays_;

  netlist::Levelization levels_;
  std::vector<netlist::NodeId> level_order_;   ///< nodes grouped by level
  std::vector<std::size_t> level_offsets_;     ///< level L = [offsets[L], offsets[L+1])

  std::vector<netlist::NodeId> fanin_arena_;
  std::vector<std::size_t> fanin_offsets_;
  std::vector<netlist::NodeId> fanout_arena_;
  std::vector<std::size_t> fanout_offsets_;
  std::vector<char> combinational_;
  std::vector<netlist::GateType> type_;

  std::vector<netlist::NodeId> timing_sources_;
  std::vector<netlist::NodeId> timing_endpoints_;

  double structural_delay_ = 0.0;
  double max_delay_stddev_ = 0.0;
  std::uint64_t content_hash_ = 0;

  mutable PatternCache pattern_cache_{PatternCache::kExactKeys};

  mutable std::mutex kernel_mutex_;
  /// Keyed on (bit pattern of dt, grid_n) — exact match, no tolerance
  /// games; distinct grid sizes carry distinct precomputed spectra.
  mutable std::map<std::pair<std::uint64_t, std::uint64_t>,
                   std::shared_ptr<const DelayKernelSet>>
      kernel_cache_;
};

}  // namespace spsta::core
