#include "core/sequential.hpp"

#include <algorithm>
#include <cmath>

#include "sigprob/four_value_prop.hpp"

namespace spsta::core {

using netlist::FourValueProbs;
using netlist::NodeId;

namespace {

/// FF output four-values from two independent consecutive cycles of the D
/// pin's final-value distribution (see header).
FourValueProbs ff_output_from_d(const FourValueProbs& d) {
  const double p1 = d.final_one();
  const double p0 = 1.0 - p1;
  return FourValueProbs{p0 * p0, p1 * p1, p0 * p1, p1 * p0}.normalized();
}

double linf(const FourValueProbs& a, const FourValueProbs& b) {
  return std::max({std::abs(a.p0 - b.p0), std::abs(a.p1 - b.p1),
                   std::abs(a.pr - b.pr), std::abs(a.pf - b.pf)});
}

FourValueProbs damp(const FourValueProbs& next, const FourValueProbs& prev,
                    double damping) {
  const auto mix = [&](double n, double p) { return damping * n + (1.0 - damping) * p; };
  return FourValueProbs{mix(next.p0, prev.p0), mix(next.p1, prev.p1),
                        mix(next.pr, prev.pr), mix(next.pf, prev.pf)}
      .normalized();
}

}  // namespace

SequentialResult solve_sequential_fixpoint(const netlist::Netlist& design,
                                           const SequentialConfig& config) {
  const std::vector<NodeId> sources = design.timing_sources();
  const std::vector<NodeId>& dffs = design.dffs();

  SequentialResult out;
  out.source_stats.assign(sources.size(), config.input_stats);
  // DFF sources start from the initial guess, with clock-edge arrivals.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (design.node(sources[i]).type == netlist::GateType::Dff) {
      out.source_stats[i] = config.ff_initial;
      out.source_stats[i].rise_arrival = config.clock_arrival;
      out.source_stats[i].fall_arrival = config.clock_arrival;
    }
  }

  // Map DFF node -> index in sources.
  std::vector<std::size_t> source_index(design.node_count(), SIZE_MAX);
  for (std::size_t i = 0; i < sources.size(); ++i) source_index[sources[i]] = i;

  std::vector<FourValueProbs> probs;
  for (out.iterations = 0; out.iterations < config.max_iterations; ++out.iterations) {
    std::vector<FourValueProbs> source_probs(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      source_probs[i] = out.source_stats[i].probs;
    }
    probs = sigprob::propagate_four_value(design, source_probs);

    double residual = 0.0;
    for (NodeId q : dffs) {
      const netlist::Node& ff = design.node(q);
      if (ff.fanins.empty()) continue;
      const FourValueProbs next = ff_output_from_d(probs[ff.fanins[0]]);
      const std::size_t idx = source_index[q];
      const FourValueProbs damped =
          damp(next, out.source_stats[idx].probs, config.damping);
      residual = std::max(residual, linf(damped, out.source_stats[idx].probs));
      out.source_stats[idx].probs = damped;
    }
    out.residual = residual;
    if (residual <= config.tolerance) {
      out.converged = true;
      ++out.iterations;
      break;
    }
  }

  // Final propagation under the converged statistics.
  std::vector<FourValueProbs> source_probs(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    source_probs[i] = out.source_stats[i].probs;
  }
  out.node_probs = sigprob::propagate_four_value(design, source_probs);
  return out;
}

}  // namespace spsta::core
