/// \file incremental_spsta.hpp
/// Incremental SPSTA: the property the paper's background prizes in
/// block-based SSTA ("efficient, incremental, and suitable for
/// optimization") carried over to the signal-probability engine. After a
/// local change — a gate delay, a source's value probabilities or arrival
/// statistics — only the transitive fanout cone is re-propagated, and the
/// update stops early where both the four-value probabilities and the
/// rise/fall tops settle.
///
/// The ECO hot path (DESIGN.md §17) adds three warm-edit surfaces on top of
/// the lazy single-edit engine:
///   * transactions — begin_eco() / N edits / commit() coalesce a batch
///     into one merged dirty frontier and a single propagation wave;
///   * what-if probes — probe(edits, targets) answers "what would these
///     arrivals be under those edits" against a backward-cone-restricted
///     wave and an O(cone) undo log, leaving state and delays bitwise
///     untouched;
///   * level-parallel propagation — set_threads(n) evaluates each dirty
///     level through util::ThreadPool with settle votes merged in
///     deterministic mark order, bit-identical at any thread count.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/pattern_cache.hpp"
#include "core/spsta.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/levelize.hpp"
#include "util/dirty_frontier.hpp"
#include "util/thread_pool.hpp"

namespace spsta::core {

class CompiledDesign;

/// Incremental SPSTA session over a fixed netlist topology.
class IncrementalSpsta {
 public:
  /// Default settle tolerance: propagation past a recomputed node stops
  /// when its state moved by no more than this per component.
  static constexpr double kDefaultSettleEps = 1e-12;

  /// One edit of a transaction or probe batch.
  struct EcoEdit {
    enum class Kind : std::uint8_t { kDelay, kSource };
    Kind kind = Kind::kDelay;
    netlist::NodeId node = 0;       ///< kDelay: the gate whose delay changes
    std::size_t source_index = 0;   ///< kSource: index into timing_sources()
    stats::Gaussian delay;          ///< kDelay payload
    netlist::SourceStats source;    ///< kSource payload

    [[nodiscard]] static EcoEdit delay_edit(netlist::NodeId node,
                                            const stats::Gaussian& delay) {
      EcoEdit e;
      e.kind = Kind::kDelay;
      e.node = node;
      e.delay = delay;
      return e;
    }
    [[nodiscard]] static EcoEdit source_edit(std::size_t source_index,
                                             const netlist::SourceStats& source) {
      EcoEdit e;
      e.kind = Kind::kSource;
      e.source_index = source_index;
      e.source = source;
      return e;
    }
  };

  /// Cost accounting of one propagation wave (a commit or a probe).
  struct CommitStats {
    std::uint64_t cone_size = 0;       ///< nodes re-evaluated by the wave
    std::uint64_t settled_early = 0;   ///< re-evaluated nodes that settled
    std::uint64_t levels_touched = 0;  ///< dirty levels the wave visited
  };

  /// What a probe answers: one NodeTop per requested target, plus the
  /// restricted wave's cost.
  struct ProbeResult {
    std::vector<NodeTop> tops;
    CommitStats stats;
  };

  /// Runs the initial full analysis. \p settle_eps controls early
  /// stopping: 0 demands exact (bitwise) settlement, making every update
  /// sequence bit-identical to a fresh full run — the mode the analysis
  /// service uses so ECO re-queries match cold re-analysis exactly.
  IncrementalSpsta(const netlist::Netlist& design, netlist::DelayModel delays,
                   std::span<const netlist::SourceStats> source_stats,
                   double settle_eps = kDefaultSettleEps);

  /// Same, seeded from a precompiled plan: reuses the plan's levelization
  /// and delay model instead of re-deriving them. The session keeps
  /// referencing the plan's netlist, which must outlive it.
  IncrementalSpsta(const CompiledDesign& plan,
                   std::span<const netlist::SourceStats> source_stats,
                   double settle_eps = kDefaultSettleEps);

  /// Current state at \p id, lazily updating any dirty fanin cone.
  /// Throws std::logic_error while a transaction is open.
  [[nodiscard]] const NodeTop& node(netlist::NodeId id);
  /// Updates all dirty nodes and returns the full state.
  /// Throws std::logic_error while a transaction is open.
  [[nodiscard]] const std::vector<NodeTop>& flush();

  /// Changes one gate's delay distribution; dirties its fanout cone.
  /// Inside a transaction the edit joins the batched frontier; outside it
  /// stays a lazy single edit (propagated on the next read).
  void set_delay(netlist::NodeId id, const stats::Gaussian& delay);
  /// Changes one timing source's statistics (probabilities and arrivals);
  /// dirties its fanout cone. Index follows design.timing_sources().
  void set_source_stats(std::size_t source_index, const netlist::SourceStats& stats);

  /// Opens a transaction: subsequent edits accumulate into one merged
  /// dirty frontier instead of each paying its own wave, and reads throw
  /// until commit(). Throws std::logic_error when already open.
  void begin_eco();
  /// Closes the transaction with a single propagation wave over the merged
  /// frontier; returns that wave's cost. Throws when no transaction is
  /// open.
  CommitStats commit();
  /// True between begin_eco() and commit().
  [[nodiscard]] bool in_transaction() const noexcept { return in_txn_; }

  /// What-if mode: applies \p edits, propagates only the part of the dirty
  /// cone that can reach \p targets (their backward closure), reads the
  /// targets, then reverts everything from an O(cone) undo log — state,
  /// delays and epoch are bitwise unchanged afterwards. Requires no open
  /// transaction; pending lazy edits are flushed first so the probe
  /// baseline is the committed state.
  [[nodiscard]] ProbeResult probe(std::span<const EcoEdit> edits,
                                  std::span<const netlist::NodeId> targets);

  /// Thread count for level-parallel propagation (default 1 = sequential).
  /// Results are bit-identical at any setting; 0 means all hardware
  /// threads.
  void set_threads(unsigned threads);
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Monotone edit epoch: bumped by every state-changing edit (set_delay /
  /// set_source_stats, inside or outside transactions). Probes never bump
  /// it. Endpoint query caches key on this.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Nodes re-evaluated by updates since construction (probes included).
  [[nodiscard]] std::uint64_t nodes_reevaluated() const noexcept {
    return nodes_reevaluated_;
  }
  /// Re-evaluated nodes whose state settled (did not change) since
  /// construction.
  [[nodiscard]] std::uint64_t settled_early() const noexcept {
    return settled_early_;
  }

  /// The settle tolerance this session was built with.
  [[nodiscard]] double settle_eps() const noexcept { return settle_eps_; }

 private:
  IncrementalSpsta(const netlist::Netlist& design, netlist::DelayModel delays,
                   const netlist::Levelization& levels,
                   std::span<const netlist::SourceStats> source_stats,
                   double settle_eps);

  /// Undo-log record for a probe's delay edits. DelayModel::set_delay
  /// clears per-direction overrides, so revert restores all three slots.
  struct UndoDelay {
    netlist::NodeId node = 0;
    stats::Gaussian common;
    stats::Gaussian rise;
    stats::Gaussian fall;
    bool directional = false;
  };

  void require_no_txn(const char* what) const;
  void mark_dirty(netlist::NodeId id);
  void mark_fanouts(netlist::NodeId id, const std::vector<char>* mask);
  void apply_source(netlist::NodeId src, const netlist::SourceStats& stats);
  /// Drains the frontier level by level. \p mask restricts marking to ids
  /// with mask[id] != 0 (the probe's backward cone); \p undo_tops records
  /// every overwritten NodeTop for revert.
  CommitStats propagate_wave(const std::vector<char>* mask,
                             std::vector<std::pair<netlist::NodeId, NodeTop>>* undo_tops);
  void propagate_dirty();
  /// Backward closure of \p targets as a node mask, memoized per distinct
  /// target set (topology-only, so edits never invalidate it).
  const std::vector<char>& target_mask(std::span<const netlist::NodeId> targets);

  const netlist::Netlist& design_;
  netlist::DelayModel delays_;
  std::vector<netlist::NodeId> sources_;  ///< design_.timing_sources()
  std::vector<NodeTop> state_;
  util::DirtyFrontier frontier_;
  bool in_txn_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t nodes_reevaluated_ = 0;
  std::uint64_t settled_early_ = 0;
  double settle_eps_ = kDefaultSettleEps;

  unsigned threads_ = 1;
  /// Lazily spawned when threads_ > 1; reused across waves (one blocking
  /// job per dirty level).
  std::unique_ptr<util::ThreadPool> pool_;

  // Wave scratch, reused across propagations (no steady-state allocation).
  std::vector<std::uint32_t> wave_ids_;
  std::vector<NodeTop> wave_tops_;
  std::vector<char> wave_changed_;

  /// Memoized backward-cone masks for probe target sets (small: probes
  /// overwhelmingly ask for the same endpoint set).
  struct MaskEntry {
    std::vector<netlist::NodeId> targets;
    std::vector<char> mask;
  };
  static constexpr std::size_t kMaxMaskEntries = 8;
  std::vector<MaskEntry> mask_cache_;

  /// Persistent exact-key pattern cache: ECO update sequences revisit the
  /// same nodes with mostly unchanged fanin probabilities, so repeated
  /// recomputations skip pattern enumeration (hits are bit-identical).
  PatternCache pattern_cache_{PatternCache::kExactKeys};
};

}  // namespace spsta::core
