/// \file incremental_spsta.hpp
/// Incremental SPSTA: the property the paper's background prizes in
/// block-based SSTA ("efficient, incremental, and suitable for
/// optimization") carried over to the signal-probability engine. After a
/// local change — a gate delay, a source's value probabilities or arrival
/// statistics — only the transitive fanout cone is re-propagated, and the
/// update stops early where both the four-value probabilities and the
/// rise/fall tops settle.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/pattern_cache.hpp"
#include "core/spsta.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/levelize.hpp"

namespace spsta::core {

class CompiledDesign;

/// Incremental SPSTA session over a fixed netlist topology.
class IncrementalSpsta {
 public:
  /// Default settle tolerance: propagation past a recomputed node stops
  /// when its state moved by no more than this per component.
  static constexpr double kDefaultSettleEps = 1e-12;

  /// Runs the initial full analysis. \p settle_eps controls early
  /// stopping: 0 demands exact (bitwise) settlement, making every update
  /// sequence bit-identical to a fresh full run — the mode the analysis
  /// service uses so ECO re-queries match cold re-analysis exactly.
  IncrementalSpsta(const netlist::Netlist& design, netlist::DelayModel delays,
                   std::span<const netlist::SourceStats> source_stats,
                   double settle_eps = kDefaultSettleEps);

  /// Same, seeded from a precompiled plan: reuses the plan's levelization
  /// and delay model instead of re-deriving them. The session keeps
  /// referencing the plan's netlist, which must outlive it.
  IncrementalSpsta(const CompiledDesign& plan,
                   std::span<const netlist::SourceStats> source_stats,
                   double settle_eps = kDefaultSettleEps);

  /// Current state at \p id, lazily updating any dirty fanin cone.
  [[nodiscard]] const NodeTop& node(netlist::NodeId id);
  /// Updates all dirty nodes and returns the full state.
  [[nodiscard]] const std::vector<NodeTop>& flush();

  /// Changes one gate's delay distribution; dirties its fanout cone.
  void set_delay(netlist::NodeId id, const stats::Gaussian& delay);
  /// Changes one timing source's statistics (probabilities and arrivals);
  /// dirties its fanout cone. Index follows design.timing_sources().
  void set_source_stats(std::size_t source_index, const netlist::SourceStats& stats);

  /// Nodes re-evaluated by updates since construction.
  [[nodiscard]] std::uint64_t nodes_reevaluated() const noexcept {
    return nodes_reevaluated_;
  }

  /// The settle tolerance this session was built with.
  [[nodiscard]] double settle_eps() const noexcept { return settle_eps_; }

 private:
  IncrementalSpsta(const netlist::Netlist& design, netlist::DelayModel delays,
                   netlist::Levelization levels,
                   std::span<const netlist::SourceStats> source_stats,
                   double settle_eps);

  void mark_dirty(netlist::NodeId id);
  void propagate_dirty();
  [[nodiscard]] bool recompute(netlist::NodeId id);

  const netlist::Netlist& design_;
  netlist::DelayModel delays_;
  netlist::Levelization levels_;
  std::vector<std::size_t> order_pos_;
  std::vector<NodeTop> state_;
  std::vector<char> dirty_;
  std::size_t dirty_lo_ = 0;
  std::size_t dirty_hi_ = 0;
  bool any_dirty_ = false;
  std::uint64_t nodes_reevaluated_ = 0;
  double settle_eps_ = kDefaultSettleEps;
  /// Persistent exact-key pattern cache: ECO update sequences revisit the
  /// same nodes with mostly unchanged fanin probabilities, so repeated
  /// recomputations skip pattern enumeration (hits are bit-identical).
  PatternCache pattern_cache_{PatternCache::kExactKeys};
};

}  // namespace spsta::core
