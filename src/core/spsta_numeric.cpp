#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/pattern_cache.hpp"
#include "core/patterns.hpp"
#include "core/spsta.hpp"
#include "netlist/graph.hpp"
#include "netlist/levelize.hpp"
#include "obs/metrics.hpp"
#include "sigprob/four_value_prop.hpp"
#include "util/thread_pool.hpp"

namespace spsta::core {

using netlist::FourValueProbs;
using netlist::NodeId;
using stats::GridSpec;
using stats::PiecewiseDensity;

namespace {

/// Chooses one engine grid spanning every arrival the analysis can
/// produce: [earliest source arrival - pad, critical-path delay + latest
/// source arrival + pad].
GridSpec choose_grid(const netlist::Netlist& design, const netlist::DelayModel& delays,
                     std::span<const netlist::SourceStats> source_stats,
                     const SpstaOptions& options) {
  double lo = 0.0, hi = 0.0, max_sd = 1.0;
  bool first = true;
  const std::size_t count = source_stats.size();
  for (std::size_t i = 0; i < count; ++i) {
    const netlist::SourceStats& st = source_stats[i];
    for (const stats::Gaussian& g : {st.rise_arrival, st.fall_arrival}) {
      const double sd = g.stddev();
      max_sd = std::max(max_sd, sd);
      const double a = g.mean - options.grid_pad_sigma * sd;
      const double b = g.mean + options.grid_pad_sigma * sd;
      if (first) {
        lo = a;
        hi = b;
        first = false;
      } else {
        lo = std::min(lo, a);
        hi = std::max(hi, b);
      }
    }
  }
  // Structural worst-case delay (mean) plus margin for delay variation.
  double structural = 0.0;
  double delay_sd = 0.0;
  const std::vector<double> means = delays.means();
  for (const netlist::Path& p : netlist::critical_paths(design, means, 1)) {
    structural = std::max(structural, p.delay);
  }
  for (NodeId id = 0; id < design.node_count(); ++id) {
    delay_sd = std::max(delay_sd, delays.delay(id).stddev());
  }
  const netlist::Levelization lv = netlist::levelize(design);
  hi += structural + options.grid_pad_sigma * delay_sd * std::sqrt(double(lv.depth) + 1.0);

  double dt = options.grid_dt > 0.0 ? options.grid_dt : 0.05;
  // Degenerate span (a single deterministic arrival and zero structural
  // delay): widen by one step so dt never collapses to 0.
  if (!(hi > lo)) hi = lo + dt;
  std::size_t n = static_cast<std::size_t>(std::ceil((hi - lo) / dt)) + 1;
  // Clamp the cap to >= 2 so the dt recomputation never divides by n-1==0.
  const std::size_t cap = std::max<std::size_t>(options.max_grid_points, 2);
  if (n > cap) {
    n = cap;
    dt = (hi - lo) / static_cast<double>(n - 1);
  }
  // Floor of 8 points for a usable density, unless the cap is tighter.
  return {lo, dt, std::max(n, std::min<std::size_t>(cap, 8))};
}

/// Folds the switching inputs' normalized arrival densities with exact
/// independent MAX/MIN (CDF products).
PiecewiseDensity fold_arrivals(const SwitchPattern& p,
                               const std::vector<NodeTopDensity>& node,
                               const std::vector<NodeId>& fanins) {
  PiecewiseDensity acc;
  bool first = true;
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    if (!(p.switching_mask & (1u << i))) continue;
    const NodeTopDensity& in = node[fanins[i]];
    const PiecewiseDensity contrib =
        ((p.rising_mask & (1u << i)) ? in.rise : in.fall).normalized();
    if (first) {
      acc = contrib;
      first = false;
    } else {
      acc = (p.op == SettleOp::Max) ? PiecewiseDensity::max_independent(acc, contrib)
                                    : PiecewiseDensity::min_independent(acc, contrib);
    }
  }
  return acc;
}

}  // namespace

SpstaNumericResult run_spsta_numeric(const netlist::Netlist& design,
                                     const netlist::DelayModel& delays,
                                     std::span<const netlist::SourceStats> source_stats,
                                     const SpstaOptions& options) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_stats.size() != sources.size() && source_stats.size() != 1) {
    throw std::invalid_argument("run_spsta_numeric: source stats count mismatch");
  }

  SpstaNumericResult result;
  {
    static obs::LatencyHistogram& grid_hist =
        obs::registry().histogram("stage.numeric.grid");
    const obs::StageTimer timer(grid_hist);
    result.grid = choose_grid(design, delays, source_stats, options);
  }
  result.node.assign(design.node_count(), NodeTopDensity{});
  for (auto& n : result.node) {
    n.rise = PiecewiseDensity::zero(result.grid);
    n.fall = PiecewiseDensity::zero(result.grid);
  }

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    NodeTopDensity& top = result.node[sources[i]];
    top.probs = st.probs.normalized();
    top.rise = PiecewiseDensity::from_gaussian(st.rise_arrival, result.grid, top.probs.pr);
    top.fall = PiecewiseDensity::from_gaussian(st.fall_arrival, result.grid, top.probs.pf);
  }

  PatternCache local_cache(options.pattern_quantum);
  PatternCache* const cache =
      options.shared_pattern_cache != nullptr
          ? options.shared_pattern_cache
          : (options.use_pattern_cache ? &local_cache : nullptr);

  // Gate evaluation is level-parallel: a node's fanins live in strictly
  // lower levels, so every node of one level reads finished state and
  // writes only its own slot — results are identical at any thread count.
  const auto eval_node = [&](NodeId id) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) return;

    NodeTopDensity& top = result.node[id];
    std::vector<FourValueProbs> fanin_probs;
    fanin_probs.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanin_probs.push_back(result.node[f].probs);
    top.probs = sigprob::gate_four_value(node.type, fanin_probs);

    if (node.fanins.empty()) return;  // constants: zero densities stay

    PatternCache::Patterns cached;
    std::vector<SwitchPattern> owned;
    if (cache != nullptr) {
      cached = cache->get(node.type, fanin_probs);
    } else {
      owned = enumerate_switch_patterns(node.type, fanin_probs);
    }
    const std::span<const SwitchPattern> patterns =
        cache != nullptr ? std::span<const SwitchPattern>(*cached)
                         : std::span<const SwitchPattern>(owned);
    PiecewiseDensity rise_acc = PiecewiseDensity::zero(result.grid);
    PiecewiseDensity fall_acc = PiecewiseDensity::zero(result.grid);
    for (const SwitchPattern& p : patterns) {
      const PiecewiseDensity arrival = fold_arrivals(p, result.node, node.fanins);
      if (arrival.empty()) continue;
      (p.output_rising ? rise_acc : fall_acc).add_scaled(arrival, p.weight);
    }
    top.rise = PiecewiseDensity::convolve_gaussian(rise_acc, delays.delay(id, true))
                   .resampled(result.grid);
    top.fall = PiecewiseDensity::convolve_gaussian(fall_acc, delays.delay(id, false))
                   .resampled(result.grid);
  };

  const netlist::Levelization lv = netlist::levelize(design);
  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.numeric.propagate");
  const obs::StageTimer timer(stage_hist);
  util::ThreadPool pool(options.threads);
  for (const std::vector<NodeId>& group : netlist::level_groups(lv)) {
    pool.for_each_index(group.size(),
                        [&](std::size_t k) { eval_node(group[k]); });
  }
  return result;
}

}  // namespace spsta::core
