#include <algorithm>
#include <memory>

#include "core/compiled_design.hpp"
#include "core/pattern_cache.hpp"
#include "core/patterns.hpp"
#include "core/spsta.hpp"
#include "obs/metrics.hpp"
#include "sigprob/four_value_prop.hpp"
#include "stats/conv_kernels.hpp"
#include "stats/simd.hpp"
#include "stats/workspace.hpp"
#include "util/thread_pool.hpp"

namespace spsta::core {

using netlist::FourValueProbs;
using netlist::NodeId;
using stats::PiecewiseDensity;

namespace {

/// Trapezoid running integral into \p c: c[0] = 0,
/// c[i] = c[i-1] + dt * (v[i-1] + v[i]) / 2 — the same accumulation order
/// as PiecewiseDensity::cumulative, so CDF products match the reference
/// operators bit for bit.
void cumulative_into(std::span<const double> v, double dt, std::span<double> c) {
  if (v.empty()) return;
  const double* pv = v.data();
  double* pc = c.data();
  pc[0] = 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    acc += 0.5 * (pv[i - 1] + pv[i]) * dt;
    pc[i] = acc;
  }
}

/// Same selection policy as the moment engine (see spsta_moment.cpp):
/// explicit shared cache > plan cache at exact keys > quantized local.
PatternCache* select_cache(const CompiledDesign& plan, const SpstaOptions& options,
                           PatternCache& local) {
  if (options.shared_pattern_cache != nullptr) return options.shared_pattern_cache;
  if (!options.use_pattern_cache) return nullptr;
  if (options.pattern_quantum == PatternCache::kExactKeys) return &plan.pattern_cache();
  return &local;
}

}  // namespace

SpstaNumericResult run_spsta_numeric(const CompiledDesign& plan,
                                     std::span<const netlist::SourceStats> source_stats,
                                     const SpstaOptions& options) {
  plan.check_source_stats(source_stats, "run_spsta_numeric");
  const std::span<const NodeId> sources = plan.timing_sources();

  SpstaNumericResult result;
  {
    static obs::LatencyHistogram& grid_hist =
        obs::registry().histogram("stage.numeric.grid");
    const obs::StageTimer timer(grid_hist);
    result.grid = plan.grid_for(source_stats, options);
  }
  result.node.assign(plan.node_count(), NodeTopDensity{});
  for (auto& n : result.node) {
    n.rise = PiecewiseDensity::zero(result.grid);
    n.fall = PiecewiseDensity::zero(result.grid);
  }

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    NodeTopDensity& top = result.node[sources[i]];
    top.probs = st.probs.normalized();
    top.rise = PiecewiseDensity::from_gaussian(st.rise_arrival, result.grid, top.probs.pr);
    top.fall = PiecewiseDensity::from_gaussian(st.fall_arrival, result.grid, top.probs.pf);
  }

  PatternCache local_cache(options.pattern_quantum);
  PatternCache* const cache = select_cache(plan, options, local_cache);

  // Every combinational node's SUM-with-delay operator, discretized once
  // per grid step, deduplicated across nodes, with FFT half-spectra
  // precomputed for this grid size — shared across patterns, runs, and
  // threads.
  const std::shared_ptr<const DelayKernelSet> kernels =
      plan.delay_kernels(result.grid.dt, result.grid.n);

  // Gate evaluation is level-parallel: a node's fanins live in strictly
  // lower levels, so every node of one level reads finished state and
  // writes only its own slot — results are identical at any thread count.
  // All per-node math runs on the shared grid in per-thread Workspace
  // scratch (pure, fully overwritten), so the level loop performs zero
  // steady-state heap allocations and stays schedule-independent.
  const auto eval_node = [&](NodeId id) {
    if (!plan.combinational(id)) return;
    const std::span<const NodeId> fanins = plan.fanins(id);
    const netlist::GateType type = plan.type(id);

    NodeTopDensity& top = result.node[id];
    thread_local std::vector<FourValueProbs> fanin_probs;
    fanin_probs.clear();
    for (NodeId f : fanins) fanin_probs.push_back(result.node[f].probs);
    top.probs = sigprob::gate_four_value(type, fanin_probs);

    if (fanins.empty()) return;  // constants: zero densities stay

    PatternCache::Patterns cached;
    std::vector<SwitchPattern> owned;
    if (cache != nullptr) {
      cached = cache->get(type, fanin_probs);
    } else {
      owned = enumerate_switch_patterns(type, fanin_probs);
    }
    const std::span<const SwitchPattern> patterns =
        cache != nullptr ? std::span<const SwitchPattern>(*cached)
                         : std::span<const SwitchPattern>(owned);

    // Resolve the thread's arena and the SIMD tier once per node, then
    // pass both through every kernel call — no thread_local or dispatch
    // lookups inside the pattern loop (workspace.hpp's contract).
    stats::Workspace& ws = stats::Workspace::local();
    const stats::simd::Ops& v = stats::simd::ops();
    const std::size_t gn = result.grid.n;
    const double dt = result.grid.dt;
    const std::span<double> rise_acc = ws.scratch(0, gn);
    const std::span<double> fall_acc = ws.scratch(1, gn);
    const std::span<double> fold = ws.scratch(2, gn);
    const std::span<double> contrib = ws.scratch(3, gn);
    const std::span<double> cum_fold = ws.scratch(4, gn);
    const std::span<double> cum_con = ws.scratch(5, gn);
    std::fill(rise_acc.begin(), rise_acc.end(), 0.0);
    std::fill(fall_acc.begin(), fall_acc.end(), 0.0);
    bool any_rise = false;
    bool any_fall = false;

    for (const SwitchPattern& p : patterns) {
      if (p.weight == 0.0) continue;
      // Fold the switching inputs' normalized arrivals with exact
      // independent MAX/MIN (CDF products) on the shared grid.
      bool first = true;
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        if (!(p.switching_mask & (1u << i))) continue;
        const NodeTopDensity& in = result.node[fanins[i]];
        const PiecewiseDensity& d = (p.rising_mask & (1u << i)) ? in.rise : in.fall;
        const double m = d.mass();
        const double inv = m > 0.0 ? 1.0 / m : 1.0;
        const double* pv = d.values().data();
        if (first) {
          v.mul_scale(pv, inv, fold.data(), gn);
          first = false;
          continue;
        }
        v.mul_scale(pv, inv, contrib.data(), gn);
        cumulative_into(fold, dt, cum_fold);
        cumulative_into(contrib, dt, cum_con);
        if (p.op == SettleOp::Max) {
          v.cdf_mix_max(fold.data(), contrib.data(), cum_fold.data(),
                        cum_con.data(), gn);
        } else {
          v.cdf_mix_min(fold.data(), contrib.data(), cum_fold.data(),
                        cum_con.data(), gn);
        }
      }
      if (first) continue;  // no switching inputs in this scenario

      // Weighted sum over switching scenarios (paper Eq. 8/11), fused.
      double* acc = (p.output_rising ? rise_acc : fall_acc).data();
      v.axpy(fold.data(), p.weight, acc, gn);
      (p.output_rising ? any_rise : any_fall) = true;
    }

    // One batched SUM-with-delay per node: both transition columns share
    // the plan and (when the delay model dedups) the kernel spectrum.
    stats::ConvExec ex;
    ex.ws = &ws;
    if (any_rise) {
      ex.src[ex.cols] = rise_acc;
      ex.dst[ex.cols] = top.rise.mutable_values();
      ex.kernel[ex.cols] = &kernels->rise(id);
      ++ex.cols;
    }
    if (any_fall) {
      ex.src[ex.cols] = fall_acc;
      ex.dst[ex.cols] = top.fall.mutable_values();
      ex.kernel[ex.cols] = &kernels->fall(id);
      ++ex.cols;
    }
    if (ex.cols > 0) stats::conv_execute(ex);
  };

  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.numeric.propagate");
  const obs::StageTimer timer(stage_hist);
  util::ThreadPool local_pool(options.shared_pool != nullptr ? 1 : options.threads);
  util::ThreadPool& pool =
      options.shared_pool != nullptr ? *options.shared_pool : local_pool;
  for (std::size_t level = 0; level < plan.level_count(); ++level) {
    const std::span<const NodeId> group = plan.level_nodes(level);
    pool.for_each_index(group.size(),
                        [&](std::size_t k) { eval_node(group[k]); });
  }
  return result;
}

SpstaNumericResult run_spsta_numeric(const netlist::Netlist& design,
                                     const netlist::DelayModel& delays,
                                     std::span<const netlist::SourceStats> source_stats,
                                     const SpstaOptions& options) {
  return run_spsta_numeric(CompiledDesign(design, delays), source_stats, options);
}

}  // namespace spsta::core
