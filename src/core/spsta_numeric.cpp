#include "core/compiled_design.hpp"
#include "core/pattern_cache.hpp"
#include "core/patterns.hpp"
#include "core/spsta.hpp"
#include "obs/metrics.hpp"
#include "sigprob/four_value_prop.hpp"
#include "util/thread_pool.hpp"

namespace spsta::core {

using netlist::FourValueProbs;
using netlist::NodeId;
using stats::PiecewiseDensity;

namespace {

/// Folds the switching inputs' normalized arrival densities with exact
/// independent MAX/MIN (CDF products).
PiecewiseDensity fold_arrivals(const SwitchPattern& p,
                               const std::vector<NodeTopDensity>& node,
                               std::span<const NodeId> fanins) {
  PiecewiseDensity acc;
  bool first = true;
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    if (!(p.switching_mask & (1u << i))) continue;
    const NodeTopDensity& in = node[fanins[i]];
    const PiecewiseDensity contrib =
        ((p.rising_mask & (1u << i)) ? in.rise : in.fall).normalized();
    if (first) {
      acc = contrib;
      first = false;
    } else {
      acc = (p.op == SettleOp::Max) ? PiecewiseDensity::max_independent(acc, contrib)
                                    : PiecewiseDensity::min_independent(acc, contrib);
    }
  }
  return acc;
}

/// Same selection policy as the moment engine (see spsta_moment.cpp):
/// explicit shared cache > plan cache at exact keys > quantized local.
PatternCache* select_cache(const CompiledDesign& plan, const SpstaOptions& options,
                           PatternCache& local) {
  if (options.shared_pattern_cache != nullptr) return options.shared_pattern_cache;
  if (!options.use_pattern_cache) return nullptr;
  if (options.pattern_quantum == PatternCache::kExactKeys) return &plan.pattern_cache();
  return &local;
}

}  // namespace

SpstaNumericResult run_spsta_numeric(const CompiledDesign& plan,
                                     std::span<const netlist::SourceStats> source_stats,
                                     const SpstaOptions& options) {
  plan.check_source_stats(source_stats, "run_spsta_numeric");
  const std::span<const NodeId> sources = plan.timing_sources();

  SpstaNumericResult result;
  {
    static obs::LatencyHistogram& grid_hist =
        obs::registry().histogram("stage.numeric.grid");
    const obs::StageTimer timer(grid_hist);
    result.grid = plan.grid_for(source_stats, options);
  }
  result.node.assign(plan.node_count(), NodeTopDensity{});
  for (auto& n : result.node) {
    n.rise = PiecewiseDensity::zero(result.grid);
    n.fall = PiecewiseDensity::zero(result.grid);
  }

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const netlist::SourceStats& st =
        source_stats.size() == 1 ? source_stats[0] : source_stats[i];
    NodeTopDensity& top = result.node[sources[i]];
    top.probs = st.probs.normalized();
    top.rise = PiecewiseDensity::from_gaussian(st.rise_arrival, result.grid, top.probs.pr);
    top.fall = PiecewiseDensity::from_gaussian(st.fall_arrival, result.grid, top.probs.pf);
  }

  PatternCache local_cache(options.pattern_quantum);
  PatternCache* const cache = select_cache(plan, options, local_cache);

  // Gate evaluation is level-parallel: a node's fanins live in strictly
  // lower levels, so every node of one level reads finished state and
  // writes only its own slot — results are identical at any thread count.
  const auto eval_node = [&](NodeId id) {
    if (!plan.combinational(id)) return;
    const std::span<const NodeId> fanins = plan.fanins(id);
    const netlist::GateType type = plan.type(id);

    NodeTopDensity& top = result.node[id];
    std::vector<FourValueProbs> fanin_probs;
    fanin_probs.reserve(fanins.size());
    for (NodeId f : fanins) fanin_probs.push_back(result.node[f].probs);
    top.probs = sigprob::gate_four_value(type, fanin_probs);

    if (fanins.empty()) return;  // constants: zero densities stay

    PatternCache::Patterns cached;
    std::vector<SwitchPattern> owned;
    if (cache != nullptr) {
      cached = cache->get(type, fanin_probs);
    } else {
      owned = enumerate_switch_patterns(type, fanin_probs);
    }
    const std::span<const SwitchPattern> patterns =
        cache != nullptr ? std::span<const SwitchPattern>(*cached)
                         : std::span<const SwitchPattern>(owned);
    PiecewiseDensity rise_acc = PiecewiseDensity::zero(result.grid);
    PiecewiseDensity fall_acc = PiecewiseDensity::zero(result.grid);
    for (const SwitchPattern& p : patterns) {
      const PiecewiseDensity arrival = fold_arrivals(p, result.node, fanins);
      if (arrival.empty()) continue;
      (p.output_rising ? rise_acc : fall_acc).add_scaled(arrival, p.weight);
    }
    top.rise =
        PiecewiseDensity::convolve_gaussian(rise_acc, plan.delays().delay(id, true))
            .resampled(result.grid);
    top.fall =
        PiecewiseDensity::convolve_gaussian(fall_acc, plan.delays().delay(id, false))
            .resampled(result.grid);
  };

  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.numeric.propagate");
  const obs::StageTimer timer(stage_hist);
  util::ThreadPool local_pool(options.shared_pool != nullptr ? 1 : options.threads);
  util::ThreadPool& pool =
      options.shared_pool != nullptr ? *options.shared_pool : local_pool;
  for (std::size_t level = 0; level < plan.level_count(); ++level) {
    const std::span<const NodeId> group = plan.level_nodes(level);
    pool.for_each_index(group.size(),
                        [&](std::size_t k) { eval_node(group[k]); });
  }
  return result;
}

SpstaNumericResult run_spsta_numeric(const netlist::Netlist& design,
                                     const netlist::DelayModel& delays,
                                     std::span<const netlist::SourceStats> source_stats,
                                     const SpstaOptions& options) {
  return run_spsta_numeric(CompiledDesign(design, delays), source_stats, options);
}

}  // namespace spsta::core
