#include "core/patterns.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>

namespace spsta::core {

using netlist::FourValue;
using netlist::FourValueProbs;
using netlist::GateType;

namespace {

/// Settled-time operation for a homogeneous switching set. Inputs moving
/// toward the gate's controlling value decide the output at the *first*
/// event (MIN); inputs moving away decide at the *last* (MAX). Parity and
/// single-input gates settle at the last event (MAX).
SettleOp settle_op(GateType type, bool inputs_rising) {
  if (netlist::has_controlling_value(type)) {
    const bool toward_controlling = inputs_rising == netlist::controlling_value(type);
    return toward_controlling ? SettleOp::Min : SettleOp::Max;
  }
  return SettleOp::Max;
}

/// Gate families with an O(1) output rule over running input counts; the
/// enumeration walk below keeps the counts incrementally so leaves cost
/// O(1) instead of re-evaluating the gate over all n inputs. First covers
/// Buf/Not, which follow input 0 and ignore any extra inputs (matching
/// eval_gate).
enum class Family : std::uint8_t { AllOnes, AnyOne, Parity, First, Generic };

struct FamilySpec {
  Family family = Family::Generic;
  bool invert = false;
};

FamilySpec classify(GateType type) {
  switch (type) {
    case GateType::Buf:
      return {Family::First, false};
    case GateType::Not:
      return {Family::First, true};
    case GateType::And:
      return {Family::AllOnes, false};
    case GateType::Nand:
      return {Family::AllOnes, true};
    case GateType::Or:
      return {Family::AnyOne, false};
    case GateType::Nor:
      return {Family::AnyOne, true};
    case GateType::Xor:
      return {Family::Parity, false};
    case GateType::Xnor:
      return {Family::Parity, true};
    default:
      return {Family::Generic, false};
  }
}

/// One nonzero-probability four-value of one input.
struct Choice {
  FourValue v = FourValue::Zero;
  double p = 0.0;
};

/// Depth-first walk over the joint support, accumulating scenario weights
/// keyed by (switching_mask, rising_mask, output direction). The key packs
/// the old std::map tuple ordering so the emitted pattern order is stable.
struct SupportWalker {
  GateType type;
  FamilySpec spec;
  std::size_t n = 0;
  std::span<const std::array<Choice, 4>> support;
  std::span<const std::size_t> support_n;

  std::uint32_t switching = 0;
  std::uint32_t rising = 0;
  std::size_t init_zeros = 0;
  std::size_t fin_zeros = 0;
  bool init_parity = false;  ///< parity of initial ones
  bool fin_parity = false;
  std::array<FourValue, 16> assignment{};

  std::unordered_map<std::uint64_t, double> acc;

  void walk(std::size_t i, double weight) {
    if (i == n) {
      emit(weight);
      return;
    }
    for (std::size_t c = 0; c < support_n[i]; ++c) {
      const Choice& ch = support[i][c];
      const bool iv = netlist::initial_value(ch.v);
      const bool fv = netlist::final_value(ch.v);
      assignment[i] = ch.v;
      init_zeros += iv ? 0 : 1;
      fin_zeros += fv ? 0 : 1;
      init_parity ^= iv;
      fin_parity ^= fv;
      const std::uint32_t bit = 1u << i;
      if (ch.v == FourValue::Rise) {
        switching |= bit;
        rising |= bit;
      } else if (ch.v == FourValue::Fall) {
        switching |= bit;
      }
      walk(i + 1, weight * ch.p);
      switching &= ~bit;
      rising &= ~bit;
      init_zeros -= iv ? 0 : 1;
      fin_zeros -= fv ? 0 : 1;
      init_parity ^= iv;
      fin_parity ^= fv;
    }
  }

  void emit(double weight) {
    bool oi = false, of = false;
    switch (spec.family) {
      case Family::AllOnes:
        oi = init_zeros == 0;
        of = fin_zeros == 0;
        break;
      case Family::AnyOne:
        oi = init_zeros < n;
        of = fin_zeros < n;
        break;
      case Family::Parity:
        oi = init_parity;
        of = fin_parity;
        break;
      case Family::First:
        oi = netlist::initial_value(assignment[0]);
        of = netlist::final_value(assignment[0]);
        break;
      case Family::Generic: {
        std::array<bool, 16> vi{}, vf{};
        for (std::size_t j = 0; j < n; ++j) {
          vi[j] = netlist::initial_value(assignment[j]);
          vf[j] = netlist::final_value(assignment[j]);
        }
        oi = netlist::eval_gate(type, std::span<const bool>(vi.data(), n));
        of = netlist::eval_gate(type, std::span<const bool>(vf.data(), n));
        break;
      }
    }
    if (spec.invert) {
      oi = !oi;
      of = !of;
    }
    if (oi == of) return;  // constant output: glitch-filtered, no transition
    // Tuple order (switching, rising, output_rising), packed ascending.
    const std::uint64_t key = (static_cast<std::uint64_t>(switching) << 17) |
                              (static_cast<std::uint64_t>(rising) << 1) |
                              static_cast<std::uint64_t>(of);
    acc[key] += weight;
  }
};

}  // namespace

std::vector<SwitchPattern> enumerate_switch_patterns(
    GateType type, std::span<const FourValueProbs> inputs) {
  const std::size_t n = inputs.size();
  if (n > 16) {
    throw std::invalid_argument("enumerate_switch_patterns: fanin > 16 unsupported");
  }
  if (type == GateType::Const0 || type == GateType::Const1) return {};

  // Support pruning — the fanin-cap hang fix: the walk covers only the
  // joint assignments with nonzero probability instead of all 4^n codes,
  // so a wide gate with sparse four-value support enumerates in
  // micro/milliseconds. A genuinely dense joint support is rejected
  // instead of silently looping for minutes.
  static constexpr std::size_t kMaxSupportCombos = std::size_t{1} << 26;
  std::vector<std::array<Choice, 4>> support(n);
  std::vector<std::size_t> support_n(n, 0);
  std::size_t combos = 1;
  static constexpr FourValue kValues[4] = {FourValue::Zero, FourValue::One,
                                           FourValue::Rise, FourValue::Fall};
  for (std::size_t i = 0; i < n; ++i) {
    for (FourValue v : kValues) {
      const double p = inputs[i].prob(v);
      if (p > 0.0) support[i][support_n[i]++] = {v, p};
    }
    if (support_n[i] == 0) return {};  // impossible input: empty support
    if (combos > kMaxSupportCombos / support_n[i]) {
      throw std::invalid_argument(
          "enumerate_switch_patterns: joint input support exceeds 2^26 "
          "assignments; reduce fanin or prune input probabilities");
    }
    combos *= support_n[i];
  }

  SupportWalker w;
  w.type = type;
  w.spec = classify(type);
  w.n = n;
  w.support = support;
  w.support_n = support_n;
  w.acc.reserve(std::min<std::size_t>(combos, std::size_t{1} << 16));
  w.walk(0, 1.0);

  std::vector<std::pair<std::uint64_t, double>> ordered(w.acc.begin(), w.acc.end());
  std::sort(ordered.begin(), ordered.end());

  std::vector<SwitchPattern> patterns;
  patterns.reserve(ordered.size());
  for (const auto& [key, weight] : ordered) {
    SwitchPattern p;
    p.weight = weight;
    p.output_rising = (key & 1u) != 0;
    p.switching_mask = static_cast<std::uint32_t>(key >> 17);
    p.rising_mask = static_cast<std::uint32_t>((key >> 1) & 0xFFFFu);
    // Homogeneous sets take the family op; mixed-direction sets (parity
    // gates only) settle at the last event.
    const bool all_rising = p.rising_mask == p.switching_mask;
    const bool all_falling = p.rising_mask == 0;
    if (all_rising || all_falling) {
      p.op = settle_op(type, all_rising);
    } else {
      p.op = SettleOp::Max;
    }
    patterns.push_back(p);
  }
  return patterns;
}

}  // namespace spsta::core
