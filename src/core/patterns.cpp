#include "core/patterns.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

namespace spsta::core {

using netlist::FourValue;
using netlist::FourValueProbs;
using netlist::GateType;

namespace {

/// Settled-time operation for a homogeneous switching set. Inputs moving
/// toward the gate's controlling value decide the output at the *first*
/// event (MIN); inputs moving away decide at the *last* (MAX). Parity and
/// single-input gates settle at the last event (MAX).
SettleOp settle_op(GateType type, bool inputs_rising) {
  if (netlist::has_controlling_value(type)) {
    const bool toward_controlling = inputs_rising == netlist::controlling_value(type);
    return toward_controlling ? SettleOp::Min : SettleOp::Max;
  }
  return SettleOp::Max;
}

}  // namespace

std::vector<SwitchPattern> enumerate_switch_patterns(
    GateType type, std::span<const FourValueProbs> inputs) {
  const std::size_t n = inputs.size();
  if (n > 16) {
    throw std::invalid_argument("enumerate_switch_patterns: fanin > 16 unsupported");
  }

  // Key: (switching_mask, rising_mask, output_rising) -> accumulated weight.
  std::map<std::tuple<std::uint32_t, std::uint32_t, bool>, double> acc;

  static constexpr FourValue kValues[4] = {FourValue::Zero, FourValue::One,
                                           FourValue::Rise, FourValue::Fall};
  std::vector<FourValue> assignment(n, FourValue::Zero);
  std::size_t combos = 1;
  for (std::size_t i = 0; i < n; ++i) combos *= 4;

  for (std::size_t code = 0; code < combos; ++code) {
    double weight = 1.0;
    std::uint32_t switching = 0;
    std::uint32_t rising = 0;
    std::size_t rem = code;
    for (std::size_t i = 0; i < n && weight > 0.0; ++i) {
      const FourValue v = kValues[rem & 3u];
      rem >>= 2;
      assignment[i] = v;
      weight *= inputs[i].prob(v);
      if (v == FourValue::Rise) {
        switching |= 1u << i;
        rising |= 1u << i;
      } else if (v == FourValue::Fall) {
        switching |= 1u << i;
      }
    }
    if (weight <= 0.0) continue;
    const FourValue out = netlist::eval_four_value(type, assignment);
    if (out != FourValue::Rise && out != FourValue::Fall) continue;
    acc[{switching, rising, out == FourValue::Rise}] += weight;
  }

  std::vector<SwitchPattern> patterns;
  patterns.reserve(acc.size());
  for (const auto& [key, weight] : acc) {
    const auto& [switching, rising, output_rising] = key;
    SwitchPattern p;
    p.weight = weight;
    p.output_rising = output_rising;
    p.switching_mask = switching;
    p.rising_mask = rising;
    // Homogeneous sets take the family op; mixed-direction sets (parity
    // gates only) settle at the last event.
    const bool all_rising = rising == switching;
    const bool all_falling = rising == 0;
    if (all_rising || all_falling) {
      p.op = settle_op(type, all_rising);
    } else {
      p.op = SettleOp::Max;
    }
    patterns.push_back(p);
  }
  return patterns;
}

}  // namespace spsta::core
