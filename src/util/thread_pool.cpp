#include "util/thread_pool.hpp"

namespace spsta::util {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n > 0 ? n - 1 : 0);
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_job_share() {
  // job_fn_ / job_count_ are stable for the lifetime of the job: workers
  // copy them under the mutex before entering, and a new job cannot be
  // armed while any participant is active.
  const std::function<void(std::size_t)>& fn = *job_fn_;
  const std::size_t count = job_count_;
  for (;;) {
    const std::size_t idx = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= count) break;
    try {
      fn(idx);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    job_cv_.wait(lk, [&] { return shutdown_ || job_generation_ != seen_generation; });
    if (shutdown_) return;
    seen_generation = job_generation_;
    active_.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    run_job_share();
    lk.lock();
    if (active_.fetch_sub(1, std::memory_order_relaxed) == 1) done_cv_.notify_all();
  }
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lk(mutex_);
  // Wait out stragglers of the previous job so arming never races a stale
  // participant's index fetch.
  done_cv_.wait(lk, [&] { return active_.load(std::memory_order_relaxed) == 0; });
  job_fn_ = &fn;
  job_count_ = count;
  next_index_.store(0, std::memory_order_relaxed);
  first_error_ = nullptr;
  ++job_generation_;
  lk.unlock();
  job_cv_.notify_all();

  run_job_share();  // the submitter works too

  lk.lock();
  done_cv_.wait(lk, [&] { return active_.load(std::memory_order_relaxed) == 0; });
  const std::exception_ptr err = first_error_;
  first_error_ = nullptr;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

void parallel_for(unsigned threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  const unsigned n = resolve_threads(threads);
  if (n <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(n);
  pool.for_each_index(count, fn);
}

}  // namespace spsta::util
