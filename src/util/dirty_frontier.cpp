#include "util/dirty_frontier.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace spsta::util {

void DirtyFrontier::reset(std::vector<std::uint32_t> level_of) {
  level_of_ = std::move(level_of);
  dirty_.assign(level_of_.size(), 0);
  std::uint32_t max_level = 0;
  for (const std::uint32_t lv : level_of_) max_level = std::max(max_level, lv);
  buckets_.resize(level_of_.empty() ? 0 : std::size_t{max_level} + 1);
  for (auto& bucket : buckets_) bucket.clear();
  pending_ = 0;
  lo_ = hi_ = 0;
}

bool DirtyFrontier::mark(std::uint32_t id) {
  if (id >= dirty_.size()) {
    throw std::out_of_range("DirtyFrontier::mark: id out of range");
  }
  if (dirty_[id]) return false;
  dirty_[id] = 1;
  const std::size_t level = level_of_[id];
  buckets_[level].push_back(id);
  if (pending_ == 0) {
    lo_ = hi_ = level;
  } else {
    lo_ = std::min(lo_, level);
    hi_ = std::max(hi_, level);
  }
  ++pending_;
  return true;
}

std::size_t DirtyFrontier::first_level() const {
  std::size_t level = lo_;
  while (level < hi_ && buckets_[level].empty()) ++level;
  return level;
}

void DirtyFrontier::take_level(std::size_t level, std::vector<std::uint32_t>& out) {
  out.clear();
  if (level >= buckets_.size()) return;
  std::vector<std::uint32_t>& bucket = buckets_[level];
  out.swap(bucket);
  // The swapped-in `bucket` holds out's old storage, cleared for reuse.
  bucket.clear();
  for (const std::uint32_t id : out) dirty_[id] = 0;
  pending_ -= out.size();
  if (pending_ != 0 && level >= lo_) lo_ = level + 1;
}

void DirtyFrontier::clear() {
  if (pending_ == 0) return;
  for (std::size_t level = lo_; level <= hi_ && level < buckets_.size(); ++level) {
    for (const std::uint32_t id : buckets_[level]) dirty_[id] = 0;
    buckets_[level].clear();
  }
  pending_ = 0;
  lo_ = hi_ = 0;
}

}  // namespace spsta::util
