/// \file thread_pool.hpp
/// A small fixed-size thread pool with a blocking index-parallel dispatch —
/// the deterministic execution layer under the Monte Carlo driver and the
/// level-parallel SPSTA engines.
///
/// Design constraints (see DESIGN.md §"Threading and determinism"):
///   * No work stealing and no per-task queues: one job at a time, indices
///     handed out by a single atomic counter. Which thread runs which index
///     is timing-dependent, but callers only submit *pure* per-index work
///     (each index writes its own output slot), so results never depend on
///     the schedule — determinism comes from the caller-side merge order,
///     not from pinning work to threads.
///   * The submitting thread participates in the job, so a pool of size n
///     uses n worker threads plus the caller and `threads <= 1` degrades to
///     a plain inline loop with zero synchronization.
///   * Exceptions thrown by per-index work are captured; the first one (by
///     completion time) is rethrown on the submitting thread after the job
///     drains.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spsta::util {

/// Resolves a requested thread count: 0 means "all hardware threads",
/// anything else is taken literally. Always returns >= 1.
[[nodiscard]] unsigned resolve_threads(unsigned requested) noexcept;

/// Fixed-size pool executing one index-parallel job at a time.
class ThreadPool {
 public:
  /// Spawns `resolve_threads(threads) - 1` workers (the caller is the
  /// remaining participant). A pool of size <= 1 spawns none.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (workers + the submitting thread).
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count), blocking until all complete.
  /// fn must be safe to invoke concurrently for distinct indices. Rethrows
  /// the first captured exception. Must not be called re-entrantly from
  /// inside a job.
  void for_each_index(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_job_share();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_cv_;   ///< workers wait here for a new job
  std::condition_variable done_cv_;  ///< the submitter waits here for drain
  std::uint64_t job_generation_ = 0;
  bool shutdown_ = false;

  // Current job state (stable while any participant is active).
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_count_ = 0;
  std::atomic<std::size_t> next_index_{0};
  /// Workers currently inside a job share; a new job is armed only at 0.
  std::atomic<std::size_t> active_{0};
  std::exception_ptr first_error_;
};

/// One-shot convenience: runs fn(i) for i in [0, count) on `threads`
/// participants (inline when threads <= 1 or count <= 1). Prefer a
/// long-lived ThreadPool when dispatching many jobs (e.g. per level).
void parallel_for(unsigned threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace spsta::util
