/// \file dirty_frontier.hpp
/// Level-bucketed dirty-set bookkeeping shared by the incremental timing
/// engines (`core::IncrementalSpsta`, `ssta::IncrementalSsta`). Both engines
/// used to carry their own copy of the same mark/dedup/level-window logic;
/// this helper owns it once, and adds what the transactional ECO path needs:
/// the dirty set is handed back one *level at a time*, so a propagation wave
/// can evaluate a whole level in parallel and merge results in deterministic
/// mark order (DESIGN.md §17).
///
/// The helper is topology-agnostic: it knows nothing about netlists, only a
/// per-node level assignment. The invariant callers must keep is the one the
/// level order gives them for free: while draining level L via take_level(),
/// new marks may only target levels > L (fanouts live at strictly higher
/// levels).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spsta::util {

/// Dirty-node set bucketed by topological level.
///
/// mark() is O(1) amortized and deduplicating; take_level() hands back one
/// level's marked ids in mark order and clears their flags. A [lo, hi]
/// level window brackets the non-empty buckets so a drain never scans the
/// whole level range.
class DirtyFrontier {
 public:
  DirtyFrontier() = default;

  /// Keys the frontier to a topology: level_of[id] is node id's level.
  explicit DirtyFrontier(std::vector<std::uint32_t> level_of) {
    reset(std::move(level_of));
  }

  /// Re-keys to a (possibly different) topology and drops all marks.
  void reset(std::vector<std::uint32_t> level_of);

  /// Marks \p id dirty. Returns true when the id was newly marked (false:
  /// already pending). Ids must be < the level_of size the frontier was
  /// keyed with.
  bool mark(std::uint32_t id);

  /// True while any mark is pending.
  [[nodiscard]] bool any() const noexcept { return pending_ != 0; }

  /// Pending marks right now.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }

  /// True when \p id is currently marked.
  [[nodiscard]] bool marked(std::uint32_t id) const { return dirty_[id] != 0; }

  /// Lowest level with pending marks. Only valid while any() is true.
  [[nodiscard]] std::size_t first_level() const;

  /// Moves level \p level's marked ids (in mark order) into \p out
  /// (replacing its contents) and clears their dirty flags. While the
  /// caller processes the batch, new marks must target higher levels only.
  void take_level(std::size_t level, std::vector<std::uint32_t>& out);

  /// Drops every pending mark (the what-if probe's abort path).
  void clear();

 private:
  std::vector<std::uint32_t> level_of_;
  std::vector<char> dirty_;
  /// One id list per level; a bucket's storage is recycled across waves.
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::size_t pending_ = 0;
  std::size_t lo_ = 0;  ///< lowest possibly-non-empty bucket
  std::size_t hi_ = 0;  ///< highest non-empty bucket
};

}  // namespace spsta::util
