#include "sigprob/exact_bdd.hpp"

#include <stdexcept>

#include "bdd/bdd_netlist.hpp"

namespace spsta::sigprob {

ExactSignalProbabilities exact_signal_probabilities(const netlist::Netlist& design,
                                                    std::span<const double> source_probs,
                                                    std::size_t max_bdd_nodes) {
  const std::vector<netlist::NodeId> sources = design.timing_sources();
  if (source_probs.size() != sources.size() && source_probs.size() != 1) {
    throw std::invalid_argument("exact_signal_probabilities: source count mismatch");
  }
  std::vector<double> var_probs(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    var_probs[i] = source_probs.size() == 1 ? source_probs[0] : source_probs[i];
  }

  bdd::NetlistBdds bdds = bdd::build_netlist_bdds(design, max_bdd_nodes);
  ExactSignalProbabilities out;
  out.probability.assign(design.node_count(), std::nullopt);
  out.bdd_nodes = bdds.manager.size();
  for (netlist::NodeId id = 0; id < design.node_count(); ++id) {
    if (bdds.function[id]) {
      out.probability[id] = bdds.manager.probability(*bdds.function[id], var_probs);
    } else {
      ++out.overflowed;
    }
  }
  return out;
}

}  // namespace spsta::sigprob
