#include "sigprob/correlated.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netlist/levelize.hpp"

namespace spsta::sigprob {

using netlist::GateType;
using netlist::NodeId;

std::size_t CorrelatedSignalProbabilities::index(std::size_t a, std::size_t b) const noexcept {
  if (a < b) std::swap(a, b);
  return a * (a + 1) / 2 + b;  // packed lower triangle, a >= b
}

double CorrelatedSignalProbabilities::covariance(NodeId a, NodeId b) const {
  return cov_.at(index(a, b));
}

double CorrelatedSignalProbabilities::correlation(NodeId a, NodeId b) const {
  const double va = covariance(a, a);
  const double vb = covariance(b, b);
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return covariance(a, b) / std::sqrt(va * vb);
}

void CorrelatedSignalProbabilities::set_covariance(NodeId a, NodeId b, double c) {
  cov_.at(index(a, b)) = c;
}

namespace {

/// A working variable during gate folding: probability plus its covariance
/// row against every already-finalized net.
struct Virtual {
  double p = 0.0;
  std::vector<double> row;  // row[z] = cov(this, net z)
};

/// Loads a (possibly complemented) real net as a Virtual.
Virtual load(const CorrelatedSignalProbabilities& state, std::size_t n, NodeId id,
             bool complemented) {
  Virtual v;
  v.p = complemented ? 1.0 - state.probability(id) : state.probability(id);
  v.row.resize(n);
  for (std::size_t z = 0; z < n; ++z) {
    const double c = state.covariance(id, static_cast<NodeId>(z));
    v.row[z] = complemented ? -c : c;
  }
  // The self-entry becomes this variable's variance against the *real*
  // net; diagonal handling happens at finalize time.
  return v;
}

/// cov(a, b) where b is the (possibly complemented) real net `id`.
double mutual(const Virtual& a, NodeId id, bool complemented) {
  return complemented ? -a.row[id] : a.row[id];
}

/// Conjunction: P(ab) = Pa*Pb + cov(a,b);
/// cov(ab, z) = Pa*cov(b,z) + Pb*cov(a,z)   (third cumulants truncated).
Virtual conj(const Virtual& a, const Virtual& b, double cov_ab) {
  Virtual out;
  out.p = std::clamp(a.p * b.p + cov_ab, 0.0, 1.0);
  out.row.resize(a.row.size());
  for (std::size_t z = 0; z < a.row.size(); ++z) {
    out.row[z] = a.p * b.row[z] + b.p * a.row[z];
  }
  return out;
}

/// Exclusive-or: y = a + b - 2ab.
Virtual exclusive_or(const Virtual& a, const Virtual& b, double cov_ab) {
  const Virtual ab = conj(a, b, cov_ab);
  Virtual out;
  out.p = std::clamp(a.p + b.p - 2.0 * ab.p, 0.0, 1.0);
  out.row.resize(a.row.size());
  for (std::size_t z = 0; z < a.row.size(); ++z) {
    out.row[z] = a.row[z] + b.row[z] - 2.0 * ab.row[z];
  }
  return out;
}

void complement_in_place(Virtual& v) {
  v.p = 1.0 - v.p;
  for (double& c : v.row) c = -c;
}

}  // namespace

CorrelatedSignalProbabilities propagate_correlated(const netlist::Netlist& design,
                                                   std::span<const double> source_probs) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_probs.size() != sources.size() && source_probs.size() != 1) {
    throw std::invalid_argument("propagate_correlated: source probability count mismatch");
  }
  const std::size_t n = design.node_count();
  CorrelatedSignalProbabilities state(n);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const double p = source_probs.size() == 1 ? source_probs[0] : source_probs[i];
    state.set_probability(sources[i], p);
    state.set_covariance(sources[i], sources[i], p * (1.0 - p));
  }

  const netlist::Levelization lv = netlist::levelize(design);
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;

    const GateType t = node.type;
    Virtual y;
    switch (t) {
      case GateType::Const0:
      case GateType::Const1: {
        y.p = t == GateType::Const1 ? 1.0 : 0.0;
        y.row.assign(n, 0.0);
        break;
      }
      case GateType::Buf:
      case GateType::Not: {
        y = load(state, n, node.fanins[0], t == GateType::Not);
        break;
      }
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor: {
        // AND folds fanins directly; OR folds complemented fanins and
        // complements the result (De Morgan).
        const bool fold_complemented = t == GateType::Or || t == GateType::Nor;
        y = load(state, n, node.fanins[0], fold_complemented);
        for (std::size_t i = 1; i < node.fanins.size(); ++i) {
          const NodeId f = node.fanins[i];
          const Virtual b = load(state, n, f, fold_complemented);
          const double cab = mutual(y, f, fold_complemented);
          y = conj(y, b, cab);
        }
        const bool invert = (t == GateType::Nand) || (t == GateType::Or);
        if (invert) complement_in_place(y);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        y = load(state, n, node.fanins[0], false);
        for (std::size_t i = 1; i < node.fanins.size(); ++i) {
          const NodeId f = node.fanins[i];
          const Virtual b = load(state, n, f, false);
          y = exclusive_or(y, b, mutual(y, f, false));
        }
        if (t == GateType::Xnor) complement_in_place(y);
        break;
      }
      case GateType::Input:
      case GateType::Dff: break;  // unreachable (non-combinational)
    }

    state.set_probability(id, std::clamp(y.p, 0.0, 1.0));
    for (std::size_t z = 0; z < n; ++z) {
      if (z == id) continue;
      // Indicator covariances obey Frechet bounds; clamp for stability.
      const double pz = state.probability(static_cast<NodeId>(z));
      const double lo = std::max(-y.p * pz, -(1.0 - y.p) * (1.0 - pz));
      const double hi = std::min(y.p * (1.0 - pz), pz * (1.0 - y.p));
      state.set_covariance(id, static_cast<NodeId>(z), std::clamp(y.row[z], lo, hi));
    }
    state.set_covariance(id, id, y.p * (1.0 - y.p));
  }
  return state;
}

}  // namespace spsta::sigprob
