/// \file four_value_prop.hpp
/// Four-value signal probability propagation (paper Sec. 3.3, Eq. 9/10):
/// computes (P0, P1, Pr, Pf) per net from independent input statistics.
///
/// Internally every gate reduces to three quantities about its output —
///   qI = P(initial value 1), qF = P(final value 1), qB = P(both 1) —
/// from which P1 = qB, Pr = qF - qB, Pf = qI - qB, P0 = the rest. For
/// AND/OR-family gates these have product closed forms that coincide with
/// the paper's Eq. 10; XOR uses a parity-character identity; and an exact
/// O(4^k) enumeration is provided as the general fallback and test oracle.

#pragma once

#include <span>
#include <vector>

#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"

namespace spsta::sigprob {

/// Output four-value probabilities of a gate with independent inputs,
/// closed form. Matches the enumeration oracle to rounding for every gate
/// type (including the glitch-filtering semantics of eval_four_value).
[[nodiscard]] netlist::FourValueProbs gate_four_value(
    netlist::GateType type, std::span<const netlist::FourValueProbs> inputs);

/// Exact enumeration over all 4^k input combinations (k <= 12) — the
/// oracle for gate_four_value.
[[nodiscard]] netlist::FourValueProbs gate_four_value_enumerated(
    netlist::GateType type, std::span<const netlist::FourValueProbs> inputs);

/// Propagates four-value probabilities through \p design. \p source_probs
/// is per timing source (design.timing_sources() order) or a single
/// element broadcast to all sources. Returns one FourValueProbs per node.
[[nodiscard]] std::vector<netlist::FourValueProbs> propagate_four_value(
    const netlist::Netlist& design,
    std::span<const netlist::FourValueProbs> source_probs);

}  // namespace spsta::sigprob
