/// \file signal_prob.hpp
/// Classical two-value signal probability propagation (paper Sec. 2.2.1,
/// Eq. 5) assuming independent gate inputs: one breadth-first netlist
/// traversal computing P(net = 1) for every node.

#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::sigprob {

/// P(output = 1) of a gate with independent inputs of the given one-
/// probabilities. Closed forms for all gate types (AND/OR chains, XOR via
/// parity folding). Constants ignore inputs.
[[nodiscard]] double gate_output_probability(netlist::GateType type,
                                             std::span<const double> input_probs);

/// Same value computed by brute-force enumeration of all 2^k input
/// combinations — the test oracle for gate_output_probability.
/// Precondition: input_probs.size() <= 20.
[[nodiscard]] double gate_output_probability_enumerated(
    netlist::GateType type, std::span<const double> input_probs);

/// Propagates signal probabilities through \p design. \p source_probs
/// maps each timing source (in design.timing_sources() order) to its
/// P(=1); a single-element span broadcasts to all sources. Returns P(=1)
/// per node id.
[[nodiscard]] std::vector<double> propagate_signal_probabilities(
    const netlist::Netlist& design, std::span<const double> source_probs);

}  // namespace spsta::sigprob
