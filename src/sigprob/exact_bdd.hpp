/// \file exact_bdd.hpp
/// Exact signal probabilities via symbolic simulation (paper Sec. 3.5):
/// build a BDD for every net and evaluate P(net = 1) over independent
/// source probabilities. Unlike the topological method of signal_prob.hpp
/// this accounts for all reconvergent-fanout correlation inside the cone.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::sigprob {

/// Per-node exact probability, or nullopt where the BDD exceeded the node
/// budget (such nodes fall back to approximate engines).
struct ExactSignalProbabilities {
  std::vector<std::optional<double>> probability;
  /// Nodes that overflowed the budget.
  std::size_t overflowed = 0;
  /// Peak BDD manager size.
  std::size_t bdd_nodes = 0;
};

/// Computes exact P(net = 1) for every node. \p source_probs follows
/// design.timing_sources() order (or a single broadcast element).
[[nodiscard]] ExactSignalProbabilities exact_signal_probabilities(
    const netlist::Netlist& design, std::span<const double> source_probs,
    std::size_t max_bdd_nodes = 1u << 22);

}  // namespace spsta::sigprob
