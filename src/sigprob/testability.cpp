#include "sigprob/testability.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/levelize.hpp"
#include "sigprob/boolean_difference.hpp"
#include "sigprob/signal_prob.hpp"

namespace spsta::sigprob {

using netlist::NodeId;

double TestabilityResult::expected_coverage(std::size_t vectors) const {
  double covered = 0.0;
  std::size_t faults = 0;
  for (std::size_t i = 0; i < detect_sa0.size(); ++i) {
    for (double p : {detect_sa0[i], detect_sa1[i]}) {
      covered += 1.0 - std::pow(1.0 - std::clamp(p, 0.0, 1.0),
                                static_cast<double>(vectors));
      ++faults;
    }
  }
  return faults > 0 ? covered / static_cast<double>(faults) : 0.0;
}

std::vector<NodeId> TestabilityResult::hard_faults(double p_floor) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < detect_sa0.size(); ++i) {
    if (std::min(detect_sa0[i], detect_sa1[i]) < p_floor) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

TestabilityResult analyze_testability(const netlist::Netlist& design,
                                      std::span<const double> source_probs) {
  TestabilityResult out;
  out.controllability_one = propagate_signal_probabilities(design, source_probs);

  const std::size_t n = design.node_count();
  out.observability.assign(n, 0.0);

  // Endpoints are directly observable.
  for (NodeId ep : design.timing_endpoints()) out.observability[ep] = 1.0;

  // Backward pass in reverse topological order: a net's change is visible
  // if it propagates through at least one fanout gate whose output is
  // observable (independence across branches).
  const netlist::Levelization lv = netlist::levelize(design);
  std::vector<double> fanin_probs;
  for (auto it = lv.order.rbegin(); it != lv.order.rend(); ++it) {
    const NodeId id = *it;
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    if (out.observability[id] <= 0.0) continue;

    fanin_probs.clear();
    for (NodeId f : node.fanins) fanin_probs.push_back(out.controllability_one[f]);
    const std::vector<double> diff =
        boolean_difference_probabilities(node.type, fanin_probs);
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      const NodeId f = node.fanins[i];
      const double through = out.observability[id] * diff[i];
      // Combine with other observation paths: 1 - prod(1 - O_branch).
      out.observability[f] = 1.0 - (1.0 - out.observability[f]) * (1.0 - through);
    }
  }

  out.detect_sa0.resize(n);
  out.detect_sa1.resize(n);
  for (NodeId id = 0; id < n; ++id) {
    // stuck-at-0 is detected when the net should be 1 and the site is
    // observed; dually for stuck-at-1.
    out.detect_sa0[id] = out.observability[id] * out.controllability_one[id];
    out.detect_sa1[id] = out.observability[id] * (1.0 - out.controllability_one[id]);
  }
  return out;
}

}  // namespace spsta::sigprob
