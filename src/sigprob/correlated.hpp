/// \file correlated.hpp
/// First-order correlation-aware signal probability propagation
/// (paper Sec. 3.5, Eq. 14-17): alongside each node's P(=1), pairwise
/// covariances between every pair of nets are propagated with third- and
/// higher-order joint cumulants truncated to zero. This sits between the
/// independent method (Sec. 2.2.1) and the exact BDD method on the paper's
/// accuracy/efficiency tradeoff: O(n^2) space/time versus potentially
/// exponential BDDs.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::sigprob {

/// Result of correlated propagation.
class CorrelatedSignalProbabilities {
 public:
  CorrelatedSignalProbabilities(std::size_t n)
      : n_(n), prob_(n, 0.0), cov_(n * (n + 1) / 2, 0.0) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }
  [[nodiscard]] double probability(netlist::NodeId id) const { return prob_.at(id); }
  [[nodiscard]] std::span<const double> probabilities() const noexcept { return prob_; }

  /// Covariance of the 0/1 indicator variables of two nets. The diagonal
  /// holds the Bernoulli variance P(1-P).
  [[nodiscard]] double covariance(netlist::NodeId a, netlist::NodeId b) const;
  /// Pearson correlation of two nets' indicators (0 when degenerate).
  [[nodiscard]] double correlation(netlist::NodeId a, netlist::NodeId b) const;

  void set_probability(netlist::NodeId id, double p) { prob_.at(id) = p; }
  void set_covariance(netlist::NodeId a, netlist::NodeId b, double c);

 private:
  [[nodiscard]] std::size_t index(std::size_t a, std::size_t b) const noexcept;

  std::size_t n_;
  std::vector<double> prob_;
  std::vector<double> cov_;  ///< packed lower triangle
};

/// Propagates probabilities and pairwise covariances through \p design.
/// Sources are pairwise independent with the given P(=1) (broadcast if a
/// single value is supplied). Multi-input gates fold pairwise through the
/// covariance algebra:
///   P(xy)      = P(x)P(y) + cov(x,y)                     (Eq. 15)
///   cov(xy, z) = P(x)cov(y,z) + P(y)cov(x,z)             (Eq. 14 truncated)
///   complement and XOR follow from set identities          (Eq. 17).
[[nodiscard]] CorrelatedSignalProbabilities propagate_correlated(
    const netlist::Netlist& design, std::span<const double> source_probs);

}  // namespace spsta::sigprob
