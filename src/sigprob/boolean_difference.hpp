/// \file boolean_difference.hpp
/// Boolean-difference probabilities under input independence (paper
/// Eq. 7): P(dy/dx_i = 1) is the probability a toggle on input i
/// propagates through the gate. Shared by transition-density power
/// estimation (Eq. 6), toggle-moment propagation (Eq. 13) and COP
/// observability analysis.

#pragma once

#include <span>
#include <vector>

#include "netlist/gate_type.hpp"

namespace spsta::sigprob {

/// P(dy/dx_i = 1) for each input of a gate whose inputs are independent
/// with the given one-probabilities: for AND/NAND the product of the
/// other inputs' one-probabilities, for OR/NOR of their zero-
/// probabilities; parity gates always sensitize; single-input gates pass
/// through.
[[nodiscard]] std::vector<double> boolean_difference_probabilities(
    netlist::GateType type, std::span<const double> input_probs);

}  // namespace spsta::sigprob
