/// \file testability.hpp
/// COP-style random-pattern testability analysis. The paper argues that
/// "manufactured chips are tested dynamically, i.e., by given test vectors
/// for a required fault coverage" (Sec. 1); this module computes the
/// classical controllability/observability products that predict that
/// coverage under random vectors:
///
///   controllability C1(net) = P(net = 1)   (the signal probability),
///   observability   O(net)  = P(a value change on the net is visible at
///                              some primary output / DFF D pin),
///   detectability of stuck-at-v at net     = O(net) * P(net = !v).
///
/// Observability propagates backward: O(output) = 1; through a gate, an
/// input's observability is the gate output's observability times the
/// Boolean-difference probability (Eq. 7's sensitization condition —
/// shared with the transition-density machinery). Reconvergent fanout is
/// combined with the standard independence approximation
/// O = 1 - prod(1 - O_branch).

#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::sigprob {

/// Per-net testability measures.
struct TestabilityResult {
  std::vector<double> controllability_one;   ///< P(net = 1)
  std::vector<double> observability;         ///< P(change visible at an endpoint)
  /// detect_sa0[n] = P(random vector detects stuck-at-0 at n)
  ///              = observability[n] * P(net = 1); dually for sa1.
  std::vector<double> detect_sa0;
  std::vector<double> detect_sa1;

  /// Expected random-pattern fault coverage over the stuck-at fault list
  /// (both polarities at every net) after \p vectors random vectors:
  /// mean over faults of 1 - (1 - p_detect)^vectors.
  [[nodiscard]] double expected_coverage(std::size_t vectors) const;
  /// Nets whose harder-to-detect fault needs more than \p vectors random
  /// patterns for 50% detection odds — the classic "random-pattern
  /// resistant" list.
  [[nodiscard]] std::vector<netlist::NodeId> hard_faults(double p_floor) const;
};

/// Runs COP analysis: one forward signal-probability pass plus one
/// backward observability pass. \p source_probs follows
/// design.timing_sources() order (single element broadcasts).
[[nodiscard]] TestabilityResult analyze_testability(
    const netlist::Netlist& design, std::span<const double> source_probs);

}  // namespace spsta::sigprob
