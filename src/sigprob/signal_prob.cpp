#include "sigprob/signal_prob.hpp"

#include <stdexcept>

#include "netlist/levelize.hpp"
#include "obs/metrics.hpp"

namespace spsta::sigprob {

using netlist::GateType;
using netlist::NodeId;

double gate_output_probability(GateType type, std::span<const double> p) {
  switch (type) {
    case GateType::Const0: return 0.0;
    case GateType::Const1: return 1.0;
    case GateType::Input:
    case GateType::Dff:
    case GateType::Buf: return p.empty() ? 0.0 : p[0];
    case GateType::Not: return p.empty() ? 1.0 : 1.0 - p[0];
    case GateType::And:
    case GateType::Nand: {
      double prod = 1.0;
      for (double x : p) prod *= x;
      return type == GateType::And ? prod : 1.0 - prod;
    }
    case GateType::Or:
    case GateType::Nor: {
      double prod = 1.0;
      for (double x : p) prod *= 1.0 - x;
      return type == GateType::Or ? 1.0 - prod : prod;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // P(parity odd) folds as p XOR q = p + q - 2pq.
      double odd = 0.0;
      for (double x : p) odd = odd + x - 2.0 * odd * x;
      return type == GateType::Xor ? odd : 1.0 - odd;
    }
  }
  return 0.0;
}

double gate_output_probability_enumerated(GateType type, std::span<const double> p) {
  if (p.size() > 20) {
    throw std::invalid_argument("gate_output_probability_enumerated: too many inputs");
  }
  const std::size_t n = p.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    double weight = 1.0;
    bool arr[24];
    for (std::size_t i = 0; i < n; ++i) {
      const bool one = (mask >> i) & 1u;
      arr[i] = one;
      weight *= one ? p[i] : 1.0 - p[i];
    }
    if (netlist::eval_gate(type, std::span<const bool>(arr, n))) total += weight;
  }
  return total;
}

std::vector<double> propagate_signal_probabilities(const netlist::Netlist& design,
                                                   std::span<const double> source_probs) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_probs.size() != sources.size() && source_probs.size() != 1) {
    throw std::invalid_argument(
        "propagate_signal_probabilities: source probability count mismatch");
  }
  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.sigprob.propagate");
  const obs::StageTimer timer(stage_hist);
  std::vector<double> prob(design.node_count(), 0.0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    prob[sources[i]] = source_probs.size() == 1 ? source_probs[0] : source_probs[i];
  }
  const netlist::Levelization lv = netlist::levelize(design);
  std::vector<double> ins;
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    ins.clear();
    for (NodeId f : node.fanins) ins.push_back(prob[f]);
    prob[id] = gate_output_probability(node.type, ins);
  }
  return prob;
}

}  // namespace spsta::sigprob
