#include "sigprob/boolean_difference.hpp"

namespace spsta::sigprob {

using netlist::GateType;

std::vector<double> boolean_difference_probabilities(GateType type,
                                                     std::span<const double> p) {
  const std::size_t n = p.size();
  std::vector<double> out(n, 0.0);
  switch (type) {
    case GateType::Const0:
    case GateType::Const1: break;  // no dependence
    case GateType::Input:
    case GateType::Dff:
    case GateType::Buf:
    case GateType::Not:
      if (n >= 1) out[0] = 1.0;
      break;
    case GateType::And:
    case GateType::Nand: {
      // dy/dx_i = product of the other inputs.
      for (std::size_t i = 0; i < n; ++i) {
        double prod = 1.0;
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) prod *= p[j];
        }
        out[i] = prod;
      }
      break;
    }
    case GateType::Or:
    case GateType::Nor: {
      // dy/dx_i = product of the other inputs' complements.
      for (std::size_t i = 0; i < n; ++i) {
        double prod = 1.0;
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) prod *= 1.0 - p[j];
        }
        out[i] = prod;
      }
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      for (std::size_t i = 0; i < n; ++i) out[i] = 1.0;  // always sensitized
      break;
    }
  }
  return out;
}

}  // namespace spsta::sigprob
