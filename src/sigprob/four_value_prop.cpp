#include "sigprob/four_value_prop.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/levelize.hpp"
#include "obs/metrics.hpp"

namespace spsta::sigprob {

using netlist::FourValue;
using netlist::FourValueProbs;
using netlist::GateType;
using netlist::NodeId;

namespace {

/// (P(initial=1), P(final=1), P(initial=1 AND final=1)) of one signal.
struct Joint {
  double init_one = 0.0;
  double final_one = 0.0;
  double both_one = 0.0;

  [[nodiscard]] double both_zero() const noexcept {
    return 1.0 - init_one - final_one + both_one;
  }
  [[nodiscard]] Joint complemented() const noexcept {
    return {1.0 - init_one, 1.0 - final_one, both_zero()};
  }
  [[nodiscard]] FourValueProbs to_probs() const noexcept {
    FourValueProbs out;
    out.p1 = both_one;
    out.pr = std::max(0.0, final_one - both_one);
    out.pf = std::max(0.0, init_one - both_one);
    out.p0 = std::max(0.0, 1.0 - out.p1 - out.pr - out.pf);
    return out.normalized();
  }
};

// AND over independent joints: both lanes are conjunctions.
Joint and_joint(std::span<const FourValueProbs> inputs) noexcept {
  Joint out{1.0, 1.0, 1.0};
  for (const FourValueProbs& p : inputs) {
    out.init_one *= p.initial_one();
    out.final_one *= p.final_one();
    out.both_one *= p.p1;
  }
  return out;
}

// OR: complement of the AND of complements.
Joint or_joint(std::span<const FourValueProbs> inputs) noexcept {
  Joint zeros{1.0, 1.0, 1.0};  // all inputs initial-0 / final-0 / both-0
  for (const FourValueProbs& p : inputs) {
    zeros.init_one *= 1.0 - p.initial_one();
    zeros.final_one *= 1.0 - p.final_one();
    zeros.both_one *= p.p0;
  }
  // `zeros` holds P(all initial 0), P(all final 0), P(all both-0); the OR
  // output is 1 minus those events.
  Joint out;
  out.init_one = 1.0 - zeros.init_one;
  out.final_one = 1.0 - zeros.final_one;
  // P(out init 1 AND out final 1)
  //   = 1 - P(init all-0) - P(final all-0) + P(both all-0).
  out.both_one = 1.0 - zeros.init_one - zeros.final_one + zeros.both_one;
  return out;
}

// XOR via parity characters: with u = E[(-1)^init], v = E[(-1)^final],
// w = E[(-1)^(init+final)] per input, independence gives
//   P(parityI=1)            = (1 - prod u) / 2
//   P(parityF=1)            = (1 - prod v) / 2
//   P(parityI=1, parityF=1) = (1 - prod u - prod v + prod w) / 4.
Joint xor_joint(std::span<const FourValueProbs> inputs) noexcept {
  double pu = 1.0, pv = 1.0, pw = 1.0;
  for (const FourValueProbs& p : inputs) {
    pu *= 1.0 - 2.0 * p.initial_one();
    pv *= 1.0 - 2.0 * p.final_one();
    pw *= p.p0 + p.p1 - p.pr - p.pf;
  }
  Joint out;
  out.init_one = 0.5 * (1.0 - pu);
  out.final_one = 0.5 * (1.0 - pv);
  out.both_one = 0.25 * (1.0 - pu - pv + pw);
  return out;
}

}  // namespace

FourValueProbs gate_four_value(GateType type, std::span<const FourValueProbs> inputs) {
  switch (type) {
    case GateType::Const0: return {1.0, 0.0, 0.0, 0.0};
    case GateType::Const1: return {0.0, 1.0, 0.0, 0.0};
    case GateType::Input:
    case GateType::Dff:
    case GateType::Buf:
      return inputs.empty() ? FourValueProbs{1.0, 0.0, 0.0, 0.0} : inputs[0];
    case GateType::Not: {
      const FourValueProbs& p = inputs.front();
      return {p.p1, p.p0, p.pf, p.pr};  // 0<->1, r<->f
    }
    case GateType::And: return and_joint(inputs).to_probs();
    case GateType::Nand: return and_joint(inputs).complemented().to_probs();
    case GateType::Or: return or_joint(inputs).to_probs();
    case GateType::Nor: return or_joint(inputs).complemented().to_probs();
    case GateType::Xor: return xor_joint(inputs).to_probs();
    case GateType::Xnor: return xor_joint(inputs).complemented().to_probs();
  }
  return {1.0, 0.0, 0.0, 0.0};
}

FourValueProbs gate_four_value_enumerated(GateType type,
                                          std::span<const FourValueProbs> inputs) {
  if (inputs.size() > 12) {
    throw std::invalid_argument("gate_four_value_enumerated: too many inputs");
  }
  const std::size_t n = inputs.size();
  FourValueProbs acc{0.0, 0.0, 0.0, 0.0};
  std::vector<FourValue> values(n, FourValue::Zero);
  std::size_t combos = 1;
  for (std::size_t i = 0; i < n; ++i) combos *= 4;
  static constexpr FourValue kValues[4] = {FourValue::Zero, FourValue::One,
                                           FourValue::Rise, FourValue::Fall};
  for (std::size_t code = 0; code < std::max<std::size_t>(combos, 1); ++code) {
    double weight = 1.0;
    std::size_t rem = code;
    for (std::size_t i = 0; i < n; ++i) {
      const FourValue v = kValues[rem & 3u];
      rem >>= 2;
      values[i] = v;
      weight *= inputs[i].prob(v);
    }
    if (weight == 0.0) continue;
    switch (netlist::eval_four_value(type, values)) {
      case FourValue::Zero: acc.p0 += weight; break;
      case FourValue::One: acc.p1 += weight; break;
      case FourValue::Rise: acc.pr += weight; break;
      case FourValue::Fall: acc.pf += weight; break;
    }
  }
  return acc;
}

std::vector<FourValueProbs> propagate_four_value(
    const netlist::Netlist& design, std::span<const FourValueProbs> source_probs) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_probs.size() != sources.size() && source_probs.size() != 1) {
    throw std::invalid_argument("propagate_four_value: source probability count mismatch");
  }
  static obs::LatencyHistogram& stage_hist =
      obs::registry().histogram("stage.sigprob.propagate");
  const obs::StageTimer timer(stage_hist);
  std::vector<FourValueProbs> probs(design.node_count(), FourValueProbs{1.0, 0.0, 0.0, 0.0});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    probs[sources[i]] =
        (source_probs.size() == 1 ? source_probs[0] : source_probs[i]).normalized();
  }
  const netlist::Levelization lv = netlist::levelize(design);
  std::vector<FourValueProbs> ins;
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    ins.clear();
    for (NodeId f : node.fanins) ins.push_back(probs[f]);
    probs[id] = gate_four_value(node.type, ins);
  }
  return probs;
}

}  // namespace spsta::sigprob
