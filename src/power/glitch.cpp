#include "power/glitch.hpp"

#include <algorithm>

#include "power/transition_density.hpp"
#include "sigprob/four_value_prop.hpp"

namespace spsta::power {

using netlist::NodeId;

double GlitchEstimate::total_glitch_rate() const {
  double total = 0.0;
  for (double g : glitch_rate) total += g;
  return total;
}

double GlitchEstimate::glitch_fraction() const {
  double edges = 0.0, glitches = 0.0;
  for (std::size_t i = 0; i < edge_rate.size(); ++i) {
    edges += edge_rate[i];
    glitches += glitch_rate[i];
  }
  return edges > 0.0 ? glitches / edges : 0.0;
}

GlitchEstimate estimate_glitches(const netlist::Netlist& design,
                                 std::span<const netlist::FourValueProbs> source_probs) {
  // Settled rates from the four-value propagation.
  const std::vector<netlist::FourValueProbs> probs =
      sigprob::propagate_four_value(design, source_probs);

  // Edge rates from transition density, fed with consistent marginals.
  std::vector<double> sp, sd;
  if (source_probs.size() == 1) {
    sp.push_back(source_probs[0].final_one());
    sd.push_back(source_probs[0].toggle_probability());
  } else {
    for (const netlist::FourValueProbs& p : source_probs) {
      sp.push_back(p.final_one());
      sd.push_back(p.toggle_probability());
    }
  }
  const TransitionDensities td = propagate_transition_density(design, sp, sd);

  GlitchEstimate out;
  out.edge_rate = td.density;
  out.settled_rate.resize(design.node_count());
  out.glitch_rate.resize(design.node_count());
  for (NodeId id = 0; id < design.node_count(); ++id) {
    out.settled_rate[id] = probs[id].toggle_probability();
    out.glitch_rate[id] = std::max(0.0, out.edge_rate[id] - out.settled_rate[id]);
  }
  return out;
}

}  // namespace spsta::power
