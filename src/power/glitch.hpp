/// \file glitch.hpp
/// Glitch-rate estimation: the gap between the edge count transition
/// density predicts (paper Eq. 6, no filtering) and the settled transition
/// probability the four-value analysis yields (paper Sec. 3.3's filtering).
/// Glitch power is exactly the energy the four-value abstraction removes;
/// estimating it closes the loop with the paper's power-estimation
/// motivation.

#pragma once

#include <span>
#include <vector>

#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"

namespace spsta::power {

/// Per-node glitch statistics.
struct GlitchEstimate {
  /// Unfiltered edge rate (transition density, Eq. 6).
  std::vector<double> edge_rate;
  /// Settled (glitch-filtered) transition probability (four-value Pr+Pf).
  std::vector<double> settled_rate;
  /// max(0, edge_rate - settled_rate): expected glitch edges per cycle.
  std::vector<double> glitch_rate;

  /// Total expected glitch edges per cycle over all nodes.
  [[nodiscard]] double total_glitch_rate() const;
  /// Fraction of all predicted edges that are glitches.
  [[nodiscard]] double glitch_fraction() const;
};

/// Estimates glitch rates for \p design. Source statistics follow
/// design.timing_sources() order (single element broadcasts).
[[nodiscard]] GlitchEstimate estimate_glitches(
    const netlist::Netlist& design,
    std::span<const netlist::FourValueProbs> source_probs);

}  // namespace spsta::power
