#include "power/waveform_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netlist/levelize.hpp"
#include "sigprob/signal_prob.hpp"

namespace spsta::power {

using netlist::NodeId;

double ProbabilityWaveform::at(double t) const noexcept {
  if (p_one.empty()) return 0.0;
  if (grid.dt <= 0.0) return p_one.front();
  const double pos = (t - grid.t0) / grid.dt;
  if (pos <= 0.0) return p_one.front();
  if (pos >= static_cast<double>(p_one.size() - 1)) return p_one.back();
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  return p_one[i] * (1.0 - frac) + p_one[i + 1] * frac;
}

double ProbabilityWaveform::total_variation() const noexcept {
  double tv = 0.0;
  for (std::size_t i = 1; i < p_one.size(); ++i) {
    tv += std::abs(p_one[i] - p_one[i - 1]);
  }
  return tv;
}

WaveformResult simulate_waveforms(const netlist::Netlist& design,
                                  const netlist::DelayModel& delays,
                                  std::span<const SourceWaveform> sources,
                                  double grid_dt) {
  const std::vector<NodeId> source_ids = design.timing_sources();
  if (sources.size() != source_ids.size() && sources.size() != 1) {
    throw std::invalid_argument("simulate_waveforms: source count mismatch");
  }
  if (grid_dt <= 0.0) throw std::invalid_argument("simulate_waveforms: bad grid_dt");

  // Grid spanning source transitions plus the structural delay span.
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < (sources.size() == 1 ? 1 : sources.size()); ++i) {
    const SourceWaveform& s = sources[i];
    const double sd = std::max(s.transition.stddev(), 1e-9);
    const double a = s.transition.mean - 8.0 * sd;
    const double b = s.transition.mean + 8.0 * sd;
    if (first) {
      lo = a;
      hi = b;
      first = false;
    } else {
      lo = std::min(lo, a);
      hi = std::max(hi, b);
    }
  }
  // Structural span: the longest mean-delay arrival over *all* nodes
  // (not just marked outputs — internal nets get waveforms too).
  const netlist::Levelization lv = netlist::levelize(design);
  std::vector<double> latest(design.node_count(), 0.0);
  double structural = 0.0;
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    double in_latest = 0.0;
    for (NodeId f : node.fanins) in_latest = std::max(in_latest, latest[f]);
    latest[id] = in_latest + delays.delay(id).mean;
    structural = std::max(structural, latest[id]);
  }
  hi += structural;
  std::size_t n = static_cast<std::size_t>(std::ceil((hi - lo) / grid_dt)) + 1;
  n = std::clamp<std::size_t>(n, 8, 1u << 15);

  WaveformResult out;
  out.grid = {lo, grid_dt, n};
  out.node.resize(design.node_count());
  for (auto& w : out.node) {
    w.grid = out.grid;
    w.p_one.assign(n, 0.0);
  }

  for (std::size_t i = 0; i < source_ids.size(); ++i) {
    const SourceWaveform& s = sources.size() == 1 ? sources[0] : sources[i];
    ProbabilityWaveform& w = out.node[source_ids[i]];
    for (std::size_t k = 0; k < n; ++k) {
      const double t = out.grid.time_at(k);
      w.p_one[k] = s.p_before + (s.p_after - s.p_before) * s.transition.cdf(t);
    }
  }

  std::vector<double> ins;
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    ProbabilityWaveform& w = out.node[id];
    const double d = delays.delay(id).mean;
    for (std::size_t k = 0; k < n; ++k) {
      const double t = out.grid.time_at(k) - d;
      ins.clear();
      for (NodeId f : node.fanins) ins.push_back(out.node[f].at(t));
      w.p_one[k] = sigprob::gate_output_probability(node.type, ins);
    }
  }
  return out;
}

}  // namespace spsta::power
