/// \file transition_density.hpp
/// Najm's transition-density propagation (paper Sec. 2.2.2, Eq. 6/7):
///   rho(y) = sum_i P(dy/dx_i) * rho(x_i)
/// where dy/dx_i is the Boolean difference enabling a propagation path
/// from input i to the output. Boolean-difference probabilities come
/// either from the independent closed forms or exactly from BDDs.

#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::power {

/// P(dy/dx_i = 1) for each input of a gate whose inputs are independent
/// with the given one-probabilities. For an AND gate this is the
/// probability all *other* inputs are 1, etc. XOR differences are
/// identically 1.
[[nodiscard]] std::vector<double> boolean_difference_probabilities(
    netlist::GateType type, std::span<const double> input_probs);

/// How the per-gate Boolean-difference probabilities are computed.
enum class DensityMethod {
  /// Independent-input closed forms per gate, probabilities from the
  /// topological signal-probability pass (fast, approximate).
  Independent,
  /// Global BDDs: P(df/dx) evaluated on each net's full Boolean function,
  /// capturing reconvergence (slower, exact for tree-correlations).
  ExactBdd,
};

/// Per-node transition densities (expected toggles per cycle).
struct TransitionDensities {
  std::vector<double> density;
  std::vector<double> signal_probability;
};

/// Propagates transition densities through \p design. \p source_probs and
/// \p source_densities follow design.timing_sources() order (single
/// elements broadcast).
[[nodiscard]] TransitionDensities propagate_transition_density(
    const netlist::Netlist& design, std::span<const double> source_probs,
    std::span<const double> source_densities,
    DensityMethod method = DensityMethod::Independent);

/// Dynamic-power figure: 0.5 * Vdd^2 * f_clk * sum(C_node * density_node),
/// with a uniform per-node capacitance. Returns watts when inputs are in
/// SI units.
[[nodiscard]] double dynamic_power(const TransitionDensities& densities,
                                   double vdd, double clock_hz,
                                   double capacitance_per_node);

}  // namespace spsta::power
