#include "power/transition_density.hpp"

#include <stdexcept>

#include "bdd/bdd_netlist.hpp"
#include "netlist/levelize.hpp"
#include "sigprob/boolean_difference.hpp"
#include "sigprob/signal_prob.hpp"

namespace spsta::power {

using netlist::GateType;
using netlist::NodeId;

std::vector<double> boolean_difference_probabilities(GateType type,
                                                     std::span<const double> p) {
  // The math lives with the signal-probability machinery; this forwarder
  // keeps power's historical entry point.
  return sigprob::boolean_difference_probabilities(type, p);
}

TransitionDensities propagate_transition_density(const netlist::Netlist& design,
                                                 std::span<const double> source_probs,
                                                 std::span<const double> source_densities,
                                                 DensityMethod method) {
  const std::vector<NodeId> sources = design.timing_sources();
  if ((source_probs.size() != sources.size() && source_probs.size() != 1) ||
      (source_densities.size() != sources.size() && source_densities.size() != 1)) {
    throw std::invalid_argument("propagate_transition_density: source span mismatch");
  }

  TransitionDensities out;
  out.signal_probability = sigprob::propagate_signal_probabilities(design, source_probs);
  out.density.assign(design.node_count(), 0.0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.density[sources[i]] =
        source_densities.size() == 1 ? source_densities[0] : source_densities[i];
  }

  // For the exact method, per-source one-probabilities for BDD evaluation.
  std::vector<double> var_probs(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    var_probs[i] = source_probs.size() == 1 ? source_probs[0] : source_probs[i];
  }
  std::optional<bdd::NetlistBdds> bdds;
  if (method == DensityMethod::ExactBdd) {
    bdds.emplace(bdd::build_netlist_bdds(design));
  }
  // Map node id -> BDD variable index (for exact Boolean differences).
  std::vector<std::size_t> var_of(design.node_count(), SIZE_MAX);
  for (std::size_t i = 0; i < sources.size(); ++i) var_of[sources[i]] = i;

  const netlist::Levelization lv = netlist::levelize(design);
  std::vector<double> fanin_probs;
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;

    if (method == DensityMethod::ExactBdd && bdds && bdds->function[id]) {
      // Najm's exact formulation needs dy/dx against *primary* inputs; for
      // internal fanins we use the chain form with gate-local differences
      // but evaluate their probabilities on the global functions:
      // P(d gate / d fanin) with the fanin's cofactors taken on the gate's
      // local function, other fanins keeping their global distributions.
      // In practice the gate-local difference depends only on the other
      // fanins, so we evaluate each such difference exactly by composing
      // the other fanins' global BDDs.
      double acc = 0.0;
      for (std::size_t i = 0; i < node.fanins.size(); ++i) {
        // Build the local difference condition over the other fanins'
        // global functions.
        bdd::BddRef cond = bdd::kTrue;
        bool ok = true;
        switch (node.type) {
          case GateType::Buf:
          case GateType::Not: cond = bdd::kTrue; break;
          case GateType::And:
          case GateType::Nand: {
            for (std::size_t j = 0; j < node.fanins.size() && ok; ++j) {
              if (j == i) continue;
              if (!bdds->function[node.fanins[j]]) { ok = false; break; }
              cond = bdds->manager.apply_and(cond, *bdds->function[node.fanins[j]]);
            }
            break;
          }
          case GateType::Or:
          case GateType::Nor: {
            for (std::size_t j = 0; j < node.fanins.size() && ok; ++j) {
              if (j == i) continue;
              if (!bdds->function[node.fanins[j]]) { ok = false; break; }
              cond = bdds->manager.apply_and(
                  cond, bdds->manager.apply_not(*bdds->function[node.fanins[j]]));
            }
            break;
          }
          case GateType::Xor:
          case GateType::Xnor: cond = bdd::kTrue; break;
          default: cond = bdd::kFalse; break;
        }
        const double p_cond =
            ok ? bdds->manager.probability(cond, var_probs) : 0.0;
        acc += p_cond * out.density[node.fanins[i]];
      }
      out.density[id] = acc;
      continue;
    }

    fanin_probs.clear();
    for (NodeId f : node.fanins) fanin_probs.push_back(out.signal_probability[f]);
    const std::vector<double> diff =
        boolean_difference_probabilities(node.type, fanin_probs);
    double acc = 0.0;
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      acc += diff[i] * out.density[node.fanins[i]];
    }
    out.density[id] = acc;
  }
  return out;
}

double dynamic_power(const TransitionDensities& densities, double vdd, double clock_hz,
                     double capacitance_per_node) {
  double toggles = 0.0;
  for (double d : densities.density) toggles += d;
  return 0.5 * vdd * vdd * clock_hz * capacitance_per_node * toggles;
}

}  // namespace spsta::power
