/// \file waveform_sim.hpp
/// Probabilistic waveform simulation (the paper's background ref [15],
/// Najm et al.'s CREST idea): propagate P(net = 1 at time t) waveforms
/// through the netlist under an input-independence assumption. Where the
/// four-value analysis summarizes a cycle by one value, the waveform keeps
/// the full time profile — including the transient glitching windows the
/// four-value logic filters — at grid-sampling cost.
///
/// Per gate: w_y(t) = F_gate(w_x1(t - d), ..., w_xk(t - d)) with F_gate
/// the independent-input output probability (Eq. 5 machinery) and d the
/// gate's mean delay. The instantaneous transition density follows as
/// |dw/dt| under a monotone-switching approximation.

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"
#include "stats/piecewise.hpp"

namespace spsta::power {

/// P(net = 1) sampled on a uniform time grid.
struct ProbabilityWaveform {
  stats::GridSpec grid;
  std::vector<double> p_one;

  /// Linear interpolation (clamped to the edge samples outside the grid).
  [[nodiscard]] double at(double t) const noexcept;
  /// Integral of |dP/dt|: expected transition count under monotone
  /// switching per crossing.
  [[nodiscard]] double total_variation() const noexcept;
};

/// Waveform per node.
struct WaveformResult {
  std::vector<ProbabilityWaveform> node;
  stats::GridSpec grid;
};

/// Input stimulus for one source: P(=1) before its (possible) transition,
/// P(=1) after, and the transition-time distribution.
struct SourceWaveform {
  double p_before = 0.5;
  double p_after = 0.5;
  stats::Gaussian transition{0.0, 1.0};
};

/// Simulates waveforms. \p sources follows design.timing_sources() order
/// (single element broadcasts); each source's waveform is
///   w(t) = p_before + (p_after - p_before) * CDF_transition(t).
/// Gate delays use their mean values (the classic zero-variance waveform
/// abstraction); \p grid_dt controls sampling.
[[nodiscard]] WaveformResult simulate_waveforms(const netlist::Netlist& design,
                                                const netlist::DelayModel& delays,
                                                std::span<const SourceWaveform> sources,
                                                double grid_dt = 0.05);

}  // namespace spsta::power
