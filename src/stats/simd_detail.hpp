/// \file simd_detail.hpp
/// Internal linkage between the dispatch table (simd.cpp) and the
/// per-ISA translation units. Not part of the public kernel API.

#pragma once

#include "stats/simd.hpp"

namespace spsta::stats::simd::detail {

/// The AVX2 tier's table, or nullptr when this build has no x86-64
/// target (the caller still checks cpuid before selecting it).
[[nodiscard]] const Ops* avx2_ops() noexcept;

}  // namespace spsta::stats::simd::detail
