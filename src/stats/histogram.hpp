/// \file histogram.hpp
/// Fixed-range histogram used to tabulate Monte Carlo arrival-time samples
/// (paper Fig. 1: the actual chip timing distribution).

#pragma once

#include <cstdint>
#include <vector>

#include "stats/piecewise.hpp"

namespace spsta::stats {

/// A histogram over [lo, hi) with uniform bins; out-of-range samples are
/// counted in underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Accumulates another histogram's counts (parallel/chunked collection).
  /// Throws std::invalid_argument unless ranges and bin counts match.
  void merge(const Histogram& other);

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_width() const noexcept;
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Converts counts to an (unnormalized) empirical density whose mass is
  /// the in-range fraction of samples.
  [[nodiscard]] PiecewiseDensity to_density() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace spsta::stats
