/// \file mixture.hpp
/// Weighted Gaussian mixtures: the moment-engine representation of a
/// WEIGHTED SUM of arrival-time distributions (paper Eq. 8/11). SPSTA's
/// moment back-end forms a mixture over input-switching scenarios and
/// collapses it to matched first/second moments (paper Sec. 3.4).

#pragma once

#include <vector>

#include "stats/gaussian.hpp"

namespace spsta::stats {

/// One mixture component: `weight * N(component)`.
struct MixtureComponent {
  double weight = 0.0;
  Gaussian component;
};

/// A non-normalized Gaussian mixture (weights need not sum to 1; the total
/// weight is the t.o.p. mass, i.e. a transition probability).
class GaussianMixture {
 public:
  GaussianMixture() = default;
  explicit GaussianMixture(std::vector<MixtureComponent> parts);

  /// Adds `weight * N(g)`; zero weights are ignored.
  void add(double weight, const Gaussian& g);

  [[nodiscard]] const std::vector<MixtureComponent>& components() const noexcept {
    return parts_;
  }
  [[nodiscard]] bool empty() const noexcept { return parts_.empty(); }

  /// Total weight (mass).
  [[nodiscard]] double mass() const noexcept;
  /// Mean of the normalized mixture; 0 when mass vanishes.
  [[nodiscard]] double mean() const noexcept;
  /// Variance of the normalized mixture (law of total variance).
  [[nodiscard]] double variance() const noexcept;
  /// First two moments of the normalized mixture.
  [[nodiscard]] Gaussian moments() const noexcept;

  /// Mixture density at \p x (sum of weighted component densities).
  [[nodiscard]] double pdf(double x) const noexcept;
  /// Mixture cdf at \p x.
  [[nodiscard]] double cdf(double x) const noexcept;

 private:
  std::vector<MixtureComponent> parts_;
};

}  // namespace spsta::stats
