#include "stats/welford.hpp"

#include <cmath>

namespace spsta::stats {

void RunningMoments::add(double x) noexcept {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta2 * delta * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 = m4_ + other.m4_ +
                    delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                    6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
                    4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ += delta * nb / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
}

double RunningMoments::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningMoments::sample_variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

double RunningMoments::skewness() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningMoments::excess_kurtosis() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

void RunningCovariance::add(double x, double y) noexcept {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx / n;
  mean_y_ += dy / n;
  m2x_ += dx * (x - mean_x_);
  m2y_ += dy * (y - mean_y_);
  cxy_ += dx * (y - mean_y_);
}

double RunningCovariance::covariance() const noexcept {
  return n_ < 2 ? 0.0 : cxy_ / static_cast<double>(n_);
}

double RunningCovariance::correlation() const noexcept {
  if (n_ < 2 || m2x_ <= 0.0 || m2y_ <= 0.0) return 0.0;
  return cxy_ / std::sqrt(m2x_ * m2y_);
}

}  // namespace spsta::stats
