/// \file normal.hpp
/// Standard normal distribution primitives: pdf, cdf, inverse cdf.
///
/// These are the scalar building blocks for Clark's MAX/MIN moment matching
/// (paper Eq. 4) and for discretizing Gaussian arrival-time densities onto
/// piecewise grids.

#pragma once

namespace spsta::stats {

/// Density of the standard normal distribution at \p x.
[[nodiscard]] double normal_pdf(double x) noexcept;

/// Density of N(\p mean, \p stddev^2) at \p x. \p stddev must be > 0.
[[nodiscard]] double normal_pdf(double x, double mean, double stddev) noexcept;

/// Cumulative distribution function of the standard normal at \p x.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Cumulative distribution function of N(\p mean, \p stddev^2) at \p x.
[[nodiscard]] double normal_cdf(double x, double mean, double stddev) noexcept;

/// Inverse standard normal cdf (quantile function) for p in (0, 1).
///
/// Uses Acklam's rational approximation refined with one Halley step;
/// absolute error is below 1e-12 over (1e-300, 1 - 1e-16).
[[nodiscard]] double normal_quantile(double p) noexcept;

/// Inverse cdf of N(\p mean, \p stddev^2).
[[nodiscard]] double normal_quantile(double p, double mean, double stddev) noexcept;

}  // namespace spsta::stats
