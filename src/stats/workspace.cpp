#include "stats/workspace.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace spsta::stats {

namespace {

obs::Counter& grow_counter() {
  static obs::Counter& c = obs::registry().counter("stats.workspace.grow");
  return c;
}

obs::Counter& reuse_counter() {
  static obs::Counter& c = obs::registry().counter("stats.workspace.reuse");
  return c;
}

}  // namespace

Workspace& Workspace::local() {
  thread_local Workspace ws;
  return ws;
}

std::span<double> Workspace::sized(std::vector<double>& buf, std::size_t n) {
  if (buf.capacity() < n) {
    ++grows_;
    grow_counter().add();
    // Round capacity up to the next power of two so a slowly growing grid
    // sequence costs O(log) reallocations, not one per size.
    buf.reserve(std::bit_ceil(n));
  } else {
    ++reuses_;
    reuse_counter().add();
  }
  buf.resize(n);
  return {buf.data(), n};
}

std::span<double> Workspace::scratch(std::size_t slot, std::size_t n) {
  if (slot >= kSlots) throw std::out_of_range("Workspace::scratch: bad slot");
  return sized(slots_[slot], n);
}

std::span<double> Workspace::fft_re(std::size_t n) { return sized(fft_re_, n); }
std::span<double> Workspace::fft_im(std::size_t n) { return sized(fft_im_, n); }
std::span<double> Workspace::fft_re2(std::size_t n) { return sized(fft_re2_, n); }
std::span<double> Workspace::fft_im2(std::size_t n) { return sized(fft_im2_, n); }
std::span<double> Workspace::spec_re(std::size_t n) { return sized(spec_re_, n); }
std::span<double> Workspace::spec_im(std::size_t n) { return sized(spec_im_, n); }
std::span<double> Workspace::conv_tmp(std::size_t n) { return sized(conv_tmp_, n); }

const Workspace::FftPlan& Workspace::fft_plan(std::size_t n) {
  if (n < 2 || !std::has_single_bit(n)) {
    throw std::invalid_argument("Workspace::fft_plan: size must be a power of two >= 2");
  }
  const auto log2n = static_cast<std::size_t>(std::countr_zero(n));
  if (plans_.size() <= log2n) plans_.resize(log2n + 1);
  if (!plans_[log2n]) {
    auto plan = std::make_unique<FftPlan>();
    plan->n = n;
    plan->bitrev.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      plan->bitrev[i] = static_cast<std::uint32_t>(
          std::uint64_t{i} == 0
              ? 0
              : (std::uint64_t{plan->bitrev[i >> 1]} >> 1) | ((i & 1) << (log2n - 1)));
    }
    plan->wre.resize(n / 2);
    plan->wim.resize(n / 2);
    const double step = -2.0 * M_PI / static_cast<double>(n);
    for (std::size_t k = 0; k < n / 2; ++k) {
      plan->wre[k] = std::cos(step * static_cast<double>(k));
      plan->wim[k] = std::sin(step * static_cast<double>(k));
    }
    // Per-stage unit-stride copies of the master twiddles: stage s covers
    // butterfly length 2^(s+1), whose k-th twiddle is the master entry at
    // stride n / 2^(s+1). Copying (not recomputing) keeps the stage-table
    // FFT bit-identical to the legacy strided walk.
    plan->stage_wre.resize(n - 1);
    plan->stage_wim.resize(n - 1);
    for (std::size_t s = 0; s < log2n; ++s) {
      const std::size_t half = std::size_t{1} << s;
      const std::size_t stride = n >> (s + 1);
      const std::size_t off = FftPlan::stage_offset(s);
      for (std::size_t k = 0; k < half; ++k) {
        plan->stage_wre[off + k] = plan->wre[k * stride];
        plan->stage_wim[off + k] = plan->wim[k * stride];
      }
    }
    // Double-size twiddles w_{2n}^k for the real-input FFT driver.
    plan->half_wre.resize(n + 1);
    plan->half_wim.resize(n + 1);
    const double hstep = -M_PI / static_cast<double>(n);
    for (std::size_t k = 0; k <= n; ++k) {
      plan->half_wre[k] = std::cos(hstep * static_cast<double>(k));
      plan->half_wim[k] = std::sin(hstep * static_cast<double>(k));
    }
    grow_counter().add();
    ++grows_;
    plans_[log2n] = std::move(plan);
  }
  return *plans_[log2n];
}

}  // namespace spsta::stats
