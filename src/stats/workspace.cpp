#include "stats/workspace.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace spsta::stats {

namespace {

obs::Counter& grow_counter() {
  static obs::Counter& c = obs::registry().counter("stats.workspace.grow");
  return c;
}

obs::Counter& reuse_counter() {
  static obs::Counter& c = obs::registry().counter("stats.workspace.reuse");
  return c;
}

}  // namespace

Workspace& Workspace::for_this_thread() {
  thread_local Workspace ws;
  return ws;
}

std::span<double> Workspace::sized(std::vector<double>& buf, std::size_t n) {
  if (buf.capacity() < n) {
    ++grows_;
    grow_counter().add();
    // Round capacity up to the next power of two so a slowly growing grid
    // sequence costs O(log) reallocations, not one per size.
    buf.reserve(std::bit_ceil(n));
  } else {
    ++reuses_;
    reuse_counter().add();
  }
  buf.resize(n);
  return {buf.data(), n};
}

std::span<double> Workspace::scratch(std::size_t slot, std::size_t n) {
  if (slot >= kSlots) throw std::out_of_range("Workspace::scratch: bad slot");
  return sized(slots_[slot], n);
}

std::span<double> Workspace::fft_re(std::size_t n) { return sized(fft_re_, n); }
std::span<double> Workspace::fft_im(std::size_t n) { return sized(fft_im_, n); }
std::span<double> Workspace::conv_tmp(std::size_t n) { return sized(conv_tmp_, n); }

const Workspace::FftPlan& Workspace::fft_plan(std::size_t n) {
  if (n < 2 || !std::has_single_bit(n)) {
    throw std::invalid_argument("Workspace::fft_plan: size must be a power of two >= 2");
  }
  const auto log2n = static_cast<std::size_t>(std::countr_zero(n));
  if (plans_.size() <= log2n) plans_.resize(log2n + 1);
  if (!plans_[log2n]) {
    auto plan = std::make_unique<FftPlan>();
    plan->n = n;
    plan->bitrev.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      plan->bitrev[i] = static_cast<std::uint32_t>(
          std::uint64_t{i} == 0
              ? 0
              : (std::uint64_t{plan->bitrev[i >> 1]} >> 1) | ((i & 1) << (log2n - 1)));
    }
    plan->wre.resize(n / 2);
    plan->wim.resize(n / 2);
    const double step = -2.0 * M_PI / static_cast<double>(n);
    for (std::size_t k = 0; k < n / 2; ++k) {
      plan->wre[k] = std::cos(step * static_cast<double>(k));
      plan->wim[k] = std::sin(step * static_cast<double>(k));
    }
    grow_counter().add();
    ++grows_;
    plans_[log2n] = std::move(plan);
  }
  return *plans_[log2n];
}

}  // namespace spsta::stats
