#include "stats/rng.hpp"

#include <cmath>

namespace spsta::stats {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

Xoshiro256 Xoshiro256::for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Whiten the experiment seed once, then mix in the stream index with an
  // odd multiplier; the constructor's SplitMix64 expansion decorrelates
  // the resulting 256-bit states even for adjacent stream indices.
  SplitMix64 sm(seed);
  return Xoshiro256(sm.next() ^ (0xD1342543DE82EF95ULL * (stream + 1)));
}

namespace {
/// Applies one of the xoshiro256 jump polynomials to \p self.
template <typename Gen>
void apply_jump(Gen& self, std::array<std::uint64_t, 4>& state,
                const std::uint64_t (&poly)[4]) noexcept {
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : poly) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state[i];
      }
      (void)self();
    }
  }
  state = acc;
}
}  // namespace

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[4] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  apply_jump(*this, state_, kJump);
  has_cached_normal_ = false;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kLongJump[4] = {
      0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
      0x39109BB02ACBE635ULL};
  apply_jump(*this, state_, kLongJump);
  has_cached_normal_ = false;
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Xoshiro256::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Xoshiro256::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace spsta::stats
