#include "stats/histogram.hpp"

#include <stdexcept>

namespace spsta::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: require hi > lo and bins > 0");
  }
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
  ++counts_[bin < counts_.size() ? bin : counts_.size() - 1];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible layout");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::bin_width() const noexcept {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
}

PiecewiseDensity Histogram::to_density() const {
  const GridSpec grid{lo_ + 0.5 * bin_width(), bin_width(), counts_.size()};
  std::vector<double> v(counts_.size(), 0.0);
  if (total_ > 0) {
    const double norm = 1.0 / (static_cast<double>(total_) * bin_width());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      v[i] = static_cast<double>(counts_[i]) * norm;
    }
  }
  return PiecewiseDensity(grid, std::move(v));
}

}  // namespace spsta::stats
