/// \file conv_kernels.hpp
/// The fast numeric kernel layer under the piecewise-density operations
/// (DESIGN.md §12, §16): size-dispatched direct/FFT linear convolution
/// and precomputable discretized gate-delay kernels, behind one
/// span-based batched entry point (`conv_execute`).
///
/// The reference implementation of SUM-with-delay paid an O(n^2) direct
/// convolution (plus fresh heap allocation) per node x pattern — the
/// histogram-propagation cost the grid-based SSTA literature identifies as
/// the scaling bottleneck. This layer keeps the direct loop for small
/// operands and switches to a radix-2 FFT once the operands pass a
/// crossover, with every buffer drawn from a caller-supplied `Workspace`
/// so steady-state convolutions allocate nothing. Delay-kernel
/// applications use a half-size real-input FFT (two real samples per
/// complex lane) and can reuse a kernel half-spectrum precomputed once
/// per (kernel, transform size) — the per-node batching win the v2 API
/// exists for.
///
/// Determinism contract: the kernel choice is a pure function of operand
/// SIZES (never of thread id, timing, or data), and each kernel is a pure
/// function of its inputs — so results are bit-identical at any thread
/// count and across reruns. The batched form runs each column through
/// exactly the single-column math (columns share only the plan and the
/// kernel spectrum, which are themselves value-identical however they are
/// produced), so batched and per-column results are bit-identical; the
/// SIMD tiers are bit-identical to scalar by the contract in simd.hpp.
/// FFT and direct results agree to ~1e-12 L-inf on normalized densities
/// (tests assert <= 1e-9).

#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "stats/gaussian.hpp"

namespace spsta::stats {

class Workspace;

/// Which convolution kernel `select_conv_kernel` picked.
enum class ConvKernelChoice { Direct, Fft };

/// Current direct->FFT crossover: the FFT path engages when the padded
/// output length (na + nb - 1) is at least this AND the smaller operand
/// has at least `kMinFftOperand` points (a short FIR against a long signal
/// is linear-time already and stays direct). The default is calibrated by
/// bench/conv_kernels_bench; the environment variable
/// `SPSTA_CONV_CROSSOVER` (read once, first use; invalid values are
/// rejected with a one-time warning and fall back to the default) or
/// `set_conv_crossover()` overrides it.
[[nodiscard]] std::size_t conv_crossover() noexcept;

/// Overrides the crossover at runtime (0 restores the built-in default).
/// Takes effect for subsequent convolutions; intended for benchmarks and
/// tests — not thread-safe against in-flight convolutions.
void set_conv_crossover(std::size_t points) noexcept;

/// Parses an `SPSTA_CONV_CROSSOVER` override. Returns the crossover for a
/// well-formed positive integer that fits std::size_t; std::nullopt for
/// anything else (empty, non-numeric, trailing junk, zero, negative,
/// overflow). The env reader warns once (stderr +
/// `stats.conv.crossover_invalid` obs counter) and uses the calibrated
/// default when this rejects. Exposed for tests.
[[nodiscard]] std::optional<std::size_t> parse_conv_crossover(
    const char* text) noexcept;

/// Operands smaller than this never take the FFT path.
inline constexpr std::size_t kMinFftOperand = 16;

/// The kernel the layer will use for operand sizes (na, nb) — a pure
/// function of sizes and the crossover knob only.
[[nodiscard]] ConvKernelChoice select_conv_kernel(std::size_t na,
                                                  std::size_t nb) noexcept;

/// A gate delay's impulse response discretized on a fixed grid step `dt`:
/// applying it to a density sampled at grid points maps X to X + delay on
/// the SAME grid. Taps carry the dt quadrature weight, so application is
/// a plain FIR. A (near-)deterministic delay (sigma == 0, or a +-sigmas
/// window narrower than one grid step) is represented as an exact
/// fractional shift instead of a near-delta kernel.
struct DelayKernel {
  bool exact_shift = false;
  std::ptrdiff_t shift = 0;  ///< floor(mean / dt) (exact-shift form)
  double frac = 0.0;         ///< mean/dt - shift, in [0, 1)
  std::ptrdiff_t first = 0;  ///< grid offset of taps[0] relative to the input index
  std::vector<double> taps;  ///< dt * normal_pdf((first + m) * dt; mean, sigma)

  /// Optional precomputed half-spectrum of `taps` at real-FFT size
  /// `spec_n` (a power of two; 0 = none): `spec_re/spec_im[k]` hold
  /// rfft(taps zero-padded to spec_n)[k] for k <= spec_n / 2. Built by
  /// `precompute_kernel_spectrum` with the exact function the on-the-fly
  /// path uses, so cached and fresh spectra are bit-identical — a cached
  /// spectrum changes cost, never results.
  std::size_t spec_n = 0;
  std::vector<double> spec_re;
  std::vector<double> spec_im;

  /// Number of FIR taps (0 for the exact-shift form).
  [[nodiscard]] std::size_t size() const noexcept { return taps.size(); }
};

/// Builds the discretized kernel of \p g on step \p dt, covering
/// mean +- sigmas * stddev. \p dt must be > 0.
[[nodiscard]] DelayKernel make_delay_kernel(const Gaussian& g, double dt,
                                            double sigmas = 8.0);

/// The real-FFT transform size the delay path uses for input length
/// \p n_in against \p k (the smallest power of two covering the full
/// linear-convolution length). 0 when the pair would not take the FFT
/// path (exact shift, or sizes below the crossover).
[[nodiscard]] std::size_t delay_fft_size(std::size_t n_in,
                                         const DelayKernel& k) noexcept;

/// Precomputes `k`'s half-spectrum for real-FFT size \p fft_n (power of
/// two >= 2 * kMinFftOperand), so subsequent `conv_execute` calls at that
/// size skip the kernel transform. No-op for exact-shift kernels. \p ws
/// supplies the plan and scratch; the stored spectrum is independent of
/// which workspace built it.
void precompute_kernel_spectrum(DelayKernel& k, std::size_t fft_n,
                                Workspace& ws);

/// One batched convolution request: up to `kMaxCols` source columns on a
/// shared grid, transformed by one rule, written into per-column
/// destinations. The two forms:
///
///  * `Dense` — dst[c] = scale * (src[c] (*) dense), overwriting dst[c],
///    which must have size src[c].size() + dense.size() - 1. Negative
///    round-off from the FFT path is clamped to 0 so densities stay
///    non-negative. (The PiecewiseDensity::convolve operator.)
///
///  * `Delay` — dst[c] += src[c] applied through *kernel[c] on the same
///    grid (dst[c].size() may differ from src[c].size()). Contributions
///    past either end of dst fold into the nearest edge bin — mass is
///    never silently dropped — and each fold bumps the obs counter
///    `stats.conv.clipped`. (The SUM-with-delay operator.)
///
/// Columns are independent: a batched call is bit-identical to `cols`
/// single-column calls, column by column. All-zero source columns are
/// skipped (Delay) or zero-filled (Dense) exactly. The workspace is
/// borrowed for the duration of the call per the contract in
/// workspace.hpp.
struct ConvExec {
  static constexpr std::size_t kMaxCols = 4;
  enum class Form { Dense, Delay };

  Form form = Form::Delay;
  std::size_t cols = 0;
  std::array<std::span<const double>, kMaxCols> src{};
  std::array<std::span<double>, kMaxCols> dst{};
  std::span<const double> dense{};                      ///< Dense second operand
  std::array<const DelayKernel*, kMaxCols> kernel{};    ///< Delay per-column kernels
  double scale = 1.0;                                   ///< Dense only
  Workspace* ws = nullptr;
};

/// Executes one descriptor. Throws std::invalid_argument on a malformed
/// descriptor (no workspace, cols out of range, size mismatches, missing
/// kernel/dense operand).
void conv_execute(const ConvExec& ex);

}  // namespace spsta::stats
