/// \file conv_kernels.hpp
/// The fast numeric kernel layer under the piecewise-density operations
/// (DESIGN.md §12): size-dispatched direct/FFT linear convolution and
/// precomputable discretized gate-delay kernels.
///
/// The reference implementation of SUM-with-delay paid an O(n^2) direct
/// convolution (plus fresh heap allocation) per node x pattern — the
/// histogram-propagation cost the grid-based SSTA literature identifies as
/// the scaling bottleneck. This layer keeps the direct loop for small
/// operands and switches to a radix-2 real-packed FFT once the operands
/// pass a crossover, with every buffer drawn from a per-thread
/// `Workspace` so steady-state convolutions allocate nothing.
///
/// Determinism contract: the kernel choice is a pure function of operand
/// SIZES (never of thread id, timing, or data), and each kernel is a pure
/// function of its inputs — so results are bit-identical at any thread
/// count and across reruns. FFT and direct results agree to ~1e-12 L-inf
/// on normalized densities (tests assert <= 1e-9).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/gaussian.hpp"

namespace spsta::stats {

class Workspace;

/// Which convolution kernel `select_conv_kernel` picked.
enum class ConvKernelChoice { Direct, Fft };

/// Current direct->FFT crossover: the FFT path engages when the padded
/// output length (na + nb - 1) is at least this AND the smaller operand
/// has at least `kMinFftOperand` points (a short FIR against a long signal
/// is linear-time already and stays direct). The default is calibrated by
/// bench/conv_kernels_bench; the environment variable
/// `SPSTA_CONV_CROSSOVER` (read once, first use) or
/// `set_conv_crossover()` overrides it.
[[nodiscard]] std::size_t conv_crossover() noexcept;

/// Overrides the crossover at runtime (0 restores the built-in default).
/// Takes effect for subsequent convolutions; intended for benchmarks and
/// tests — not thread-safe against in-flight convolutions.
void set_conv_crossover(std::size_t points) noexcept;

/// Operands smaller than this never take the FFT path.
inline constexpr std::size_t kMinFftOperand = 16;

/// The kernel the layer will use for operand sizes (na, nb) — a pure
/// function of sizes and the crossover knob only.
[[nodiscard]] ConvKernelChoice select_conv_kernel(std::size_t na,
                                                  std::size_t nb) noexcept;

/// Dense linear convolution out[k] = scale * sum_i a[i] * b[k-i] for
/// k in [0, na+nb-1). `out.size()` must be exactly na + nb - 1 and must
/// not alias the inputs. Selects direct vs FFT by size; FFT round-off can
/// produce tiny negative values, which are clamped to 0 so densities stay
/// non-negative.
void conv_full(std::span<const double> a, std::span<const double> b, double scale,
               std::span<double> out, Workspace& ws);

/// A gate delay's impulse response discretized on a fixed grid step `dt`:
/// applying it to a density sampled at grid points maps X to X + delay on
/// the SAME grid. Taps carry the dt quadrature weight, so application is
/// a plain FIR. A (near-)deterministic delay (sigma == 0, or a +-sigmas
/// window narrower than one grid step) is represented as an exact
/// fractional shift instead of a near-delta kernel.
struct DelayKernel {
  bool exact_shift = false;
  std::ptrdiff_t shift = 0;  ///< floor(mean / dt) (exact-shift form)
  double frac = 0.0;         ///< mean/dt - shift, in [0, 1)
  std::ptrdiff_t first = 0;  ///< grid offset of taps[0] relative to the input index
  std::vector<double> taps;  ///< dt * normal_pdf((first + m) * dt; mean, sigma)

  /// Number of FIR taps (0 for the exact-shift form).
  [[nodiscard]] std::size_t size() const noexcept { return taps.size(); }
};

/// Builds the discretized kernel of \p g on step \p dt, covering
/// mean +- sigmas * stddev. \p dt must be > 0.
[[nodiscard]] DelayKernel make_delay_kernel(const Gaussian& g, double dt,
                                            double sigmas = 8.0);

/// Applies \p k to \p in, accumulating into \p out (same grid, same step;
/// in and out must not alias): out[i + d] += in[i] * k(d). Contributions
/// that land past either end of `out` are folded into the nearest edge
/// bin — mass is never silently dropped — and each fold bumps the obs
/// counter `stats.conv.clipped`. Large (input, tap) sizes take the FFT
/// path per `select_conv_kernel`.
void apply_delay_kernel(std::span<const double> in, const DelayKernel& k,
                        std::span<double> out, Workspace& ws);

}  // namespace spsta::stats
