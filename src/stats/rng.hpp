/// \file rng.hpp
/// Deterministic random number generation for Monte Carlo simulation and
/// the benchmark-circuit generator.
///
/// A small, fully reproducible stack: SplitMix64 for seeding, xoshiro256++
/// as the workhorse generator, plus uniform / normal / categorical draws.
/// Determinism across platforms matters more here than raw speed: every
/// experiment in EXPERIMENTS.md must be re-runnable bit-for-bit.

#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace spsta::stats {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256++ pseudo-random generator (Blackman & Vigna).
/// Satisfies the essentials of UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from \p seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Generator for logical stream \p stream of the experiment seeded by
  /// \p seed: deterministic in (seed, stream) only, independent of how
  /// streams are assigned to threads. This is the seeding contract behind
  /// parallel Monte Carlo (one stream per run index) — see DESIGN.md.
  [[nodiscard]] static Xoshiro256 for_stream(std::uint64_t seed,
                                             std::uint64_t stream) noexcept;

  /// Advances the state by 2^128 steps (Blackman & Vigna's jump
  /// polynomial): splits the period into non-overlapping substreams for
  /// up to 2^128 parallel consumers. Drops any cached normal deviate.
  void jump() noexcept;
  /// Advances the state by 2^192 steps — substreams of jump() substreams.
  void long_jump() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). \p n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal draw (polar Box-Muller, caches the second deviate).
  double normal() noexcept;
  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli draw with success probability \p p.
  bool bernoulli(double p) noexcept;
  /// Categorical draw: returns i with probability weights[i] / sum(weights).
  /// \p weights must be non-empty with a positive sum.
  std::size_t categorical(std::span<const double> weights) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace spsta::stats
