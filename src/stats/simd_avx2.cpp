#include "stats/simd_detail.hpp"

// AVX2 tier. Every kernel performs the same per-element multiply/add/sub
// DAG as the scalar reference in simd.cpp — _mm256_mul_pd, _mm256_add_pd
// and _mm256_sub_pd are IEEE-754 exact, and no FMA is used (the
// target("avx2") attribute does not enable FMA codegen, and x86-64
// scalar code has no FMA instruction to contract into) — so this tier is
// bit-identical to scalar by construction. Tails fall through to the
// scalar loops.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace spsta::stats::simd::detail {

namespace {

#define SPSTA_AVX2 __attribute__((target("avx2")))

SPSTA_AVX2 void avx2_butterfly(double* ur, double* ui, double* vr, double* vi,
                               const double* wr, const double* wi, double sign,
                               std::size_t half) {
  const __m256d vsign = _mm256_set1_pd(sign);
  std::size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    const __m256d wrk = _mm256_loadu_pd(wr + k);
    const __m256d wik = _mm256_mul_pd(vsign, _mm256_loadu_pd(wi + k));
    const __m256d xvr = _mm256_loadu_pd(vr + k);
    const __m256d xvi = _mm256_loadu_pd(vi + k);
    const __m256d tr =
        _mm256_sub_pd(_mm256_mul_pd(xvr, wrk), _mm256_mul_pd(xvi, wik));
    const __m256d ti =
        _mm256_add_pd(_mm256_mul_pd(xvr, wik), _mm256_mul_pd(xvi, wrk));
    const __m256d xur = _mm256_loadu_pd(ur + k);
    const __m256d xui = _mm256_loadu_pd(ui + k);
    _mm256_storeu_pd(vr + k, _mm256_sub_pd(xur, tr));
    _mm256_storeu_pd(vi + k, _mm256_sub_pd(xui, ti));
    _mm256_storeu_pd(ur + k, _mm256_add_pd(xur, tr));
    _mm256_storeu_pd(ui + k, _mm256_add_pd(xui, ti));
  }
  for (; k < half; ++k) {
    const double wrk = wr[k];
    const double wik = sign * wi[k];
    const double tr = vr[k] * wrk - vi[k] * wik;
    const double ti = vr[k] * wik + vi[k] * wrk;
    vr[k] = ur[k] - tr;
    vi[k] = ui[k] - ti;
    ur[k] += tr;
    ui[k] += ti;
  }
}

SPSTA_AVX2 void avx2_mul_scale(const double* a, double s, double* out,
                               std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), vs));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

SPSTA_AVX2 void avx2_axpy(const double* a, double w, double* out,
                          std::size_t n) {
  const __m256d vw = _mm256_set1_pd(w);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        _mm256_add_pd(_mm256_loadu_pd(out + i),
                      _mm256_mul_pd(vw, _mm256_loadu_pd(a + i)));
    _mm256_storeu_pd(out + i, t);
  }
  for (; i < n; ++i) out[i] += w * a[i];
}

SPSTA_AVX2 void avx2_cdf_mix_max(double* f, const double* c, const double* ca,
                                 const double* cb, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(f + i), _mm256_loadu_pd(cb + i)),
        _mm256_mul_pd(_mm256_loadu_pd(c + i), _mm256_loadu_pd(ca + i)));
    _mm256_storeu_pd(f + i, t);
  }
  for (; i < n; ++i) f[i] = f[i] * cb[i] + c[i] * ca[i];
}

SPSTA_AVX2 void avx2_cdf_mix_min(double* f, const double* c, const double* ca,
                                 const double* cb, std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(f + i),
                      _mm256_sub_pd(one, _mm256_loadu_pd(cb + i))),
        _mm256_mul_pd(_mm256_loadu_pd(c + i),
                      _mm256_sub_pd(one, _mm256_loadu_pd(ca + i))));
    _mm256_storeu_pd(f + i, t);
  }
  for (; i < n; ++i) f[i] = f[i] * (1.0 - cb[i]) + c[i] * (1.0 - ca[i]);
}

#undef SPSTA_AVX2

constexpr Ops kAvx2Ops{
    "avx2",      avx2_butterfly,   avx2_mul_scale,
    avx2_axpy,   avx2_cdf_mix_max, avx2_cdf_mix_min,
};

}  // namespace

const Ops* avx2_ops() noexcept { return &kAvx2Ops; }

}  // namespace spsta::stats::simd::detail

#else  // not x86-64

namespace spsta::stats::simd::detail {

const Ops* avx2_ops() noexcept { return nullptr; }

}  // namespace spsta::stats::simd::detail

#endif
