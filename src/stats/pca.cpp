#include "stats/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace spsta::stats {

EigenDecomposition jacobi_eigen(const SymmetricMatrix& m, int max_sweeps) {
  const std::size_t n = m.size();
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a[i * n + j] = m(i, j);
  }
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a[i * n + j] * a[i * n + j];
    }
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-30) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x * n + x] > a[y * n + y];
  });

  EigenDecomposition out;
  out.n = n;
  out.values.resize(n);
  out.vectors.assign(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a[order[j] * n + order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors[i * n + j] = v[i * n + order[j]];
  }
  return out;
}

Pca pca_from_covariance(const SymmetricMatrix& covariance) {
  Pca out;
  out.eigen = jacobi_eigen(covariance);
  out.n = out.eigen.n;
  out.loadings.assign(out.n * out.n, 0.0);
  for (std::size_t k = 0; k < out.n; ++k) {
    const double lambda = std::max(out.eigen.values[k], 0.0);
    const double root = std::sqrt(lambda);
    for (std::size_t i = 0; i < out.n; ++i) {
      out.loadings[i * out.n + k] = out.eigen.vector(i, k) * root;
    }
  }
  return out;
}

}  // namespace spsta::stats
