#include "stats/gaussian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/normal.hpp"

namespace spsta::stats {

double Gaussian::stddev() const noexcept { return std::sqrt(std::max(var, 0.0)); }

double Gaussian::pdf(double x) const noexcept {
  const double sd = stddev();
  if (sd == 0.0) {
    return x == mean ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return normal_pdf(x, mean, sd);
}

double Gaussian::cdf(double x) const noexcept {
  const double sd = stddev();
  if (sd == 0.0) return x >= mean ? 1.0 : 0.0;
  return normal_cdf(x, mean, sd);
}

double Gaussian::quantile(double p) const noexcept {
  const double sd = stddev();
  if (sd == 0.0) return mean;
  return normal_quantile(p, mean, sd);
}

Gaussian sum(const Gaussian& a, const Gaussian& b, double cov) noexcept {
  return {a.mean + b.mean, std::max(0.0, a.var + b.var + 2.0 * cov)};
}

Gaussian affine(const Gaussian& a, double k, double c) noexcept {
  return {k * a.mean + c, k * k * a.var};
}

ClarkResult clark_max(const Gaussian& a, const Gaussian& b, double cov) noexcept {
  const double theta2 = std::max(0.0, a.var + b.var - 2.0 * cov);
  if (theta2 <= 0.0) {
    // The operands differ by a constant: MAX is simply the larger one.
    if (a.mean >= b.mean) return {a, 1.0};
    return {b, 0.0};
  }
  const double theta = std::sqrt(theta2);
  const double lambda = (a.mean - b.mean) / theta;
  const double phi = normal_pdf(lambda);
  const double q = normal_cdf(lambda);

  const double mean = a.mean * q + b.mean * (1.0 - q) + theta * phi;
  const double second = (a.mean * a.mean + a.var) * q +
                        (b.mean * b.mean + b.var) * (1.0 - q) +
                        (a.mean + b.mean) * theta * phi;
  const double var = std::max(0.0, second - mean * mean);
  return {{mean, var}, q};
}

ClarkResult clark_min(const Gaussian& a, const Gaussian& b, double cov) noexcept {
  const ClarkResult neg = clark_max({-a.mean, a.var}, {-b.mean, b.var}, cov);
  return {{-neg.moments.mean, neg.moments.var}, neg.tightness};
}

double exact_max_mean(const Gaussian& a, const Gaussian& b) noexcept {
  // For independent Gaussians Clark's mean formula is exact.
  return clark_max(a, b, 0.0).moments.mean;
}

}  // namespace spsta::stats
