/// \file pca.hpp
/// Small dense symmetric-matrix utilities: Jacobi eigendecomposition and
/// principal component analysis.
///
/// The paper's background (Sec. 1) notes that correlated variational
/// parameters are decomposed into uncorrelated random variables by PCA
/// before canonical-form SSTA; `src/variational` uses this to orthogonalize
/// correlated process parameters.

#pragma once

#include <cstddef>
#include <vector>

namespace spsta::stats {

/// A dense, row-major, square symmetric matrix.
class SymmetricMatrix {
 public:
  SymmetricMatrix() = default;
  explicit SymmetricMatrix(std::size_t n) : n_(n), a_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return a_[i * n_ + j];
  }
  /// Sets (i,j) and (j,i).
  void set(std::size_t i, std::size_t j, double v) {
    a_[i * n_ + j] = v;
    a_[j * n_ + i] = v;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> a_;
};

/// Eigendecomposition result: `matrix = V * diag(values) * V^T` with
/// eigenpairs sorted by decreasing eigenvalue; eigenvectors are the columns
/// of V, stored row-major in `vectors` (vectors[i*n+j] = V(i,j)).
struct EigenDecomposition {
  std::vector<double> values;
  std::vector<double> vectors;
  std::size_t n = 0;

  /// j-th eigenvector component i.
  [[nodiscard]] double vector(std::size_t i, std::size_t j) const {
    return vectors[i * n + j];
  }
};

/// Cyclic Jacobi rotation eigendecomposition of a symmetric matrix.
/// Converges to machine precision for the small (<= a few hundred)
/// parameter-covariance matrices used here.
[[nodiscard]] EigenDecomposition jacobi_eigen(const SymmetricMatrix& m,
                                              int max_sweeps = 64);

/// PCA over a covariance matrix: principal directions plus the loadings
/// that express each original variable as a combination of uncorrelated
/// unit-variance principal components.
struct Pca {
  EigenDecomposition eigen;
  /// loadings[i*n+k] = contribution of principal component k (unit
  /// variance) to original variable i; equals V(i,k) * sqrt(lambda_k).
  std::vector<double> loadings;
  std::size_t n = 0;

  [[nodiscard]] double loading(std::size_t var, std::size_t comp) const {
    return loadings[var * n + comp];
  }
};

/// Computes the PCA of \p covariance (must be positive semi-definite;
/// slightly negative eigenvalues from roundoff are clamped to zero).
[[nodiscard]] Pca pca_from_covariance(const SymmetricMatrix& covariance);

}  // namespace spsta::stats
