#include "stats/compare.hpp"

#include <algorithm>
#include <cmath>

namespace spsta::stats {

namespace {

struct Aligned {
  PiecewiseDensity a;
  PiecewiseDensity b;
  GridSpec grid;
  bool both_empty = false;
};

Aligned align(const PiecewiseDensity& a, const PiecewiseDensity& b) {
  Aligned out;
  if ((a.empty() || a.mass() <= 0.0) && (b.empty() || b.mass() <= 0.0)) {
    out.both_empty = true;
    return out;
  }
  out.grid = union_grid(a.grid(), b.grid());
  out.a = a.normalized().resampled(out.grid).normalized();
  out.b = b.normalized().resampled(out.grid).normalized();
  return out;
}

}  // namespace

double ks_distance(const PiecewiseDensity& a, const PiecewiseDensity& b) {
  const Aligned al = align(a, b);
  if (al.both_empty) return 0.0;
  const std::vector<double> ca = al.a.cumulative();
  const std::vector<double> cb = al.b.cumulative();
  double worst = 0.0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    worst = std::max(worst, std::abs(ca[i] - cb[i]));
  }
  return worst;
}

double wasserstein_distance(const PiecewiseDensity& a, const PiecewiseDensity& b) {
  const Aligned al = align(a, b);
  if (al.both_empty) return 0.0;
  const std::vector<double> ca = al.a.cumulative();
  const std::vector<double> cb = al.b.cumulative();
  double acc = 0.0;
  double prev = std::abs(ca[0] - cb[0]);
  for (std::size_t i = 1; i < ca.size(); ++i) {
    const double cur = std::abs(ca[i] - cb[i]);
    acc += 0.5 * (prev + cur) * al.grid.dt;
    prev = cur;
  }
  return acc;
}

double total_variation_distance(const PiecewiseDensity& a, const PiecewiseDensity& b) {
  const Aligned al = align(a, b);
  if (al.both_empty) return 0.0;
  double acc = 0.0;
  double prev = std::abs(al.a.values()[0] - al.b.values()[0]);
  for (std::size_t i = 1; i < al.grid.n; ++i) {
    const double cur = std::abs(al.a.values()[i] - al.b.values()[i]);
    acc += 0.5 * (prev + cur) * al.grid.dt;
    prev = cur;
  }
  return 0.5 * acc;
}

}  // namespace spsta::stats
