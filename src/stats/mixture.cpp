#include "stats/mixture.hpp"

#include <algorithm>
#include <cmath>

namespace spsta::stats {

GaussianMixture::GaussianMixture(std::vector<MixtureComponent> parts)
    : parts_(std::move(parts)) {
  std::erase_if(parts_, [](const MixtureComponent& c) { return c.weight <= 0.0; });
}

void GaussianMixture::add(double weight, const Gaussian& g) {
  if (weight <= 0.0) return;
  parts_.push_back({weight, g});
}

double GaussianMixture::mass() const noexcept {
  double m = 0.0;
  for (const auto& c : parts_) m += c.weight;
  return m;
}

double GaussianMixture::mean() const noexcept {
  const double m = mass();
  if (m <= 0.0) return 0.0;
  double acc = 0.0;
  for (const auto& c : parts_) acc += c.weight * c.component.mean;
  return acc / m;
}

double GaussianMixture::variance() const noexcept {
  const double m = mass();
  if (m <= 0.0) return 0.0;
  const double mu = mean();
  double acc = 0.0;
  for (const auto& c : parts_) {
    const double d = c.component.mean - mu;
    acc += c.weight * (c.component.var + d * d);
  }
  return std::max(0.0, acc / m);
}

Gaussian GaussianMixture::moments() const noexcept { return {mean(), variance()}; }

double GaussianMixture::pdf(double x) const noexcept {
  double acc = 0.0;
  for (const auto& c : parts_) acc += c.weight * c.component.pdf(x);
  return acc;
}

double GaussianMixture::cdf(double x) const noexcept {
  double acc = 0.0;
  for (const auto& c : parts_) acc += c.weight * c.component.cdf(x);
  return acc;
}

}  // namespace spsta::stats
