/// \file workspace.hpp
/// Per-thread scratch arena for the numeric kernel layer.
///
/// The level-parallel numeric engine evaluates thousands of gates per run,
/// and every evaluation needs a handful of grid-length buffers (scenario
/// folds, CDF products, convolution spectra). Allocating them per node is
/// exactly the steady-state churn DESIGN.md §12 forbids, so each worker
/// thread owns one `Workspace`: a set of grow-only double buffers plus a
/// cache of FFT plans (bit-reversal permutation + twiddle tables) keyed by
/// transform size. After the first node of a run warms the arena, the
/// level loop performs zero heap allocations.
///
/// Determinism: a workspace is pure scratch — every buffer is fully
/// overwritten before use, and plans are value-identical for equal sizes —
/// so which thread's arena serves a node can never change a result bit.
/// Growth/reuse totals are mirrored to the obs counters
/// `stats.workspace.grow` / `stats.workspace.reuse` (the allocation probe
/// tests assert the grow counter stays flat across warm runs).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace spsta::stats {

class Workspace {
 public:
  /// General-purpose scratch slots available to callers. The convolution
  /// kernels use private FFT buffers (below), never these, so an engine
  /// may hold any slot across a conv_* call.
  static constexpr std::size_t kSlots = 8;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena (thread-local; created on first use and
  /// kept for the thread's lifetime, so repeated runs on a long-lived pool
  /// reuse warm buffers).
  [[nodiscard]] static Workspace& for_this_thread();

  /// Scratch buffer for \p slot, sized to exactly \p n doubles. Contents
  /// are unspecified — callers overwrite. Capacity only grows.
  [[nodiscard]] std::span<double> scratch(std::size_t slot, std::size_t n);

  /// Iterative radix-2 FFT plan for power-of-two size \p n: bit-reversal
  /// permutation and forward twiddles exp(-2*pi*i*k/n), k < n/2.
  struct FftPlan {
    std::size_t n = 0;
    std::vector<std::uint32_t> bitrev;
    std::vector<double> wre;  ///< cos(-2*pi*k/n)
    std::vector<double> wim;  ///< sin(-2*pi*k/n)
  };

  /// Cached plan for size \p n (must be a power of two >= 2).
  [[nodiscard]] const FftPlan& fft_plan(std::size_t n);

  /// Private FFT work buffers (real/imag lanes), sized to \p n.
  [[nodiscard]] std::span<double> fft_re(std::size_t n);
  [[nodiscard]] std::span<double> fft_im(std::size_t n);
  /// Private staging buffer for full-length convolution results.
  [[nodiscard]] std::span<double> conv_tmp(std::size_t n);

  /// Buffer requests served without growing (warm hits).
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }
  /// Buffer requests that had to grow a slot (cold misses).
  [[nodiscard]] std::uint64_t grows() const noexcept { return grows_; }

 private:
  [[nodiscard]] std::span<double> sized(std::vector<double>& buf, std::size_t n);

  std::array<std::vector<double>, kSlots> slots_;
  std::vector<double> fft_re_;
  std::vector<double> fft_im_;
  std::vector<double> conv_tmp_;
  std::vector<std::unique_ptr<FftPlan>> plans_;  ///< indexed by log2(n)
  std::uint64_t reuses_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace spsta::stats
