/// \file workspace.hpp
/// Per-thread scratch arena for the numeric kernel layer.
///
/// The level-parallel numeric engine evaluates thousands of gates per run,
/// and every evaluation needs a handful of grid-length buffers (scenario
/// folds, CDF products, convolution spectra). Allocating them per node is
/// exactly the steady-state churn DESIGN.md §12 forbids, so each worker
/// thread owns one `Workspace`: a set of grow-only double buffers plus a
/// cache of FFT plans (bit-reversal permutation + twiddle tables) keyed by
/// transform size. After the first node of a run warms the arena, the
/// level loop performs zero heap allocations.
///
/// Ownership and threading contract (kernel API v2): a `Workspace` is
/// owned by exactly one thread at a time and is NOT internally
/// synchronized — callers pass `Workspace&` explicitly down the kernel
/// call chain (`conv_execute`, the engine fold loops) so no inner loop
/// pays a thread_local lookup. `Workspace::local()` returns the calling
/// thread's arena for casual callers and as the default of the
/// convenience overloads; engines resolve it once per task and thread the
/// reference through. Two threads must never share one workspace
/// concurrently; handing a workspace off between tasks on the same thread
/// is free (every buffer is fully overwritten before use).
///
/// Determinism: a workspace is pure scratch — every buffer is fully
/// overwritten before use, and plans are value-identical for equal sizes —
/// so which thread's arena serves a node can never change a result bit.
/// Growth/reuse totals are mirrored to the obs counters
/// `stats.workspace.grow` / `stats.workspace.reuse` (the allocation probe
/// tests assert the grow counter stays flat across warm runs).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace spsta::stats {

class Workspace {
 public:
  /// General-purpose scratch slots available to callers. The convolution
  /// kernels use private FFT buffers (below), never these, so an engine
  /// may hold any slot across a conv_* call.
  static constexpr std::size_t kSlots = 8;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena (thread-local; created on first use and
  /// kept for the thread's lifetime, so repeated runs on a long-lived pool
  /// reuse warm buffers). Resolve once per task, then pass the reference
  /// down — see the threading contract above.
  [[nodiscard]] static Workspace& local();

  /// Scratch buffer for \p slot, sized to exactly \p n doubles. Contents
  /// are unspecified — callers overwrite. Capacity only grows.
  [[nodiscard]] std::span<double> scratch(std::size_t slot, std::size_t n);

  /// Iterative radix-2 FFT plan for power-of-two size \p n: bit-reversal
  /// permutation, forward twiddles exp(-2*pi*i*k/n), and two derived
  /// tables the v2 kernels read:
  ///   * per-stage unit-stride twiddles (bitwise copies of the master
  ///     table at each stage's stride), so the SIMD butterflies load
  ///     contiguously instead of gathering, and
  ///   * double-size twiddles w_{2n}^k for k <= n, the pack/unpack phase
  ///     factors of the half-size real-input FFT driver (`conv_execute`'s
  ///     delay path runs a size-n complex FFT to transform 2n real
  ///     samples).
  struct FftPlan {
    std::size_t n = 0;
    std::vector<std::uint32_t> bitrev;
    std::vector<double> wre;  ///< cos(-2*pi*k/n), k < n/2
    std::vector<double> wim;  ///< sin(-2*pi*k/n), k < n/2
    /// Stage s (butterfly length 2^(s+1)) occupies
    /// [stage_offset(s), stage_offset(s) + 2^s): stage_wre[off + k] is a
    /// bitwise copy of wre[k * (n >> (s+1))], so the stage-table FFT is
    /// bit-identical to the strided master-table FFT.
    std::vector<double> stage_wre;  ///< total n - 1 entries
    std::vector<double> stage_wim;
    std::vector<double> half_wre;  ///< cos(-pi*k/n), k <= n
    std::vector<double> half_wim;  ///< sin(-pi*k/n), k <= n

    [[nodiscard]] static constexpr std::size_t stage_offset(std::size_t s) noexcept {
      return (std::size_t{1} << s) - 1;
    }
  };

  /// Cached plan for size \p n (must be a power of two >= 2).
  [[nodiscard]] const FftPlan& fft_plan(std::size_t n);

  /// Private FFT work buffers (real/imag lanes), sized to \p n. The first
  /// pair holds packed complex lanes, the second half-spectra; both are
  /// owned by `conv_execute` for the duration of one call.
  [[nodiscard]] std::span<double> fft_re(std::size_t n);
  [[nodiscard]] std::span<double> fft_im(std::size_t n);
  [[nodiscard]] std::span<double> fft_re2(std::size_t n);
  [[nodiscard]] std::span<double> fft_im2(std::size_t n);
  /// Private staging for an on-the-fly kernel half-spectrum (used when a
  /// `DelayKernel` carries no precomputed spectrum for the call's size).
  [[nodiscard]] std::span<double> spec_re(std::size_t n);
  [[nodiscard]] std::span<double> spec_im(std::size_t n);
  /// Private staging buffer for full-length convolution results.
  [[nodiscard]] std::span<double> conv_tmp(std::size_t n);

  /// Buffer requests served without growing (warm hits).
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }
  /// Buffer requests that had to grow a slot (cold misses).
  [[nodiscard]] std::uint64_t grows() const noexcept { return grows_; }

 private:
  [[nodiscard]] std::span<double> sized(std::vector<double>& buf, std::size_t n);

  std::array<std::vector<double>, kSlots> slots_;
  std::vector<double> fft_re_;
  std::vector<double> fft_im_;
  std::vector<double> fft_re2_;
  std::vector<double> fft_im2_;
  std::vector<double> spec_re_;
  std::vector<double> spec_im_;
  std::vector<double> conv_tmp_;
  std::vector<std::unique_ptr<FftPlan>> plans_;  ///< indexed by log2(n)
  std::uint64_t reuses_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace spsta::stats
