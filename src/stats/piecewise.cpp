#include "stats/piecewise.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "stats/conv_kernels.hpp"
#include "stats/normal.hpp"
#include "stats/workspace.hpp"

namespace spsta::stats {

namespace {
constexpr std::size_t kMaxGridPoints = 1 << 16;

// Trapezoid integral of f(t)*w(t) over the grid where w is supplied per point.
double trapezoid(const GridSpec& g, std::span<const double> v,
                 const auto& weight) {
  if (v.size() < 2) return 0.0;
  double total = 0.0;
  double prev = v[0] * weight(g.time_at(0));
  for (std::size_t i = 1; i < v.size(); ++i) {
    const double cur = v[i] * weight(g.time_at(i));
    total += 0.5 * (prev + cur) * g.dt;
    prev = cur;
  }
  return total;
}
}  // namespace

GridSpec union_grid(const GridSpec& a, const GridSpec& b) {
  if (a.n == 0) return b;
  if (b.n == 0) return a;
  const double dt = std::min(a.dt, b.dt);
  const double t0 = std::min(a.t0, b.t0);
  const double t1 = std::max(a.t_end(), b.t_end());
  std::size_t n = static_cast<std::size_t>(std::ceil((t1 - t0) / dt)) + 1;
  n = std::min(n, kMaxGridPoints);
  return {t0, dt, std::max<std::size_t>(n, 2)};
}

PiecewiseDensity::PiecewiseDensity(GridSpec grid, std::vector<double> values)
    : grid_(grid), values_(std::move(values)) {
  if (values_.size() != grid_.n) {
    throw std::invalid_argument("PiecewiseDensity: values/grid size mismatch");
  }
  for (double& v : values_) v = std::max(v, 0.0);
}

PiecewiseDensity PiecewiseDensity::zero(GridSpec grid) {
  return PiecewiseDensity(grid, std::vector<double>(grid.n, 0.0));
}

PiecewiseDensity PiecewiseDensity::from_gaussian(const Gaussian& g, GridSpec grid,
                                                 double mass) {
  std::vector<double> v(grid.n);
  const double sd = g.stddev();
  if (sd == 0.0) {
    // Deterministic value: place a narrow triangle of the requested mass at
    // the nearest grid point (width one grid step each side).
    PiecewiseDensity out = zero(grid);
    if (grid.n >= 2 && grid.dt > 0.0) {
      const double pos = (g.mean - grid.t0) / grid.dt;
      const auto idx = static_cast<std::ptrdiff_t>(std::llround(pos));
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(grid.n)) {
        out.values_[static_cast<std::size_t>(idx)] = mass / grid.dt;
      }
    }
    return out;
  }
  for (std::size_t i = 0; i < grid.n; ++i) {
    v[i] = mass * normal_pdf(grid.time_at(i), g.mean, sd);
  }
  return PiecewiseDensity(grid, std::move(v));
}

PiecewiseDensity PiecewiseDensity::from_gaussian_auto(const Gaussian& g, double sigmas,
                                                      std::size_t points, double mass) {
  const double sd = std::max(g.stddev(), 1e-9);
  const double t0 = g.mean - sigmas * sd;
  const double t1 = g.mean + sigmas * sd;
  const std::size_t n = std::max<std::size_t>(points, 3);
  const GridSpec grid{t0, (t1 - t0) / static_cast<double>(n - 1), n};
  return from_gaussian(g, grid, mass);
}

double PiecewiseDensity::value_at(double t) const noexcept {
  if (values_.size() < 2 || grid_.dt <= 0.0) return 0.0;
  const double pos = (t - grid_.t0) / grid_.dt;
  if (pos < 0.0 || pos > static_cast<double>(values_.size() - 1)) return 0.0;
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= values_.size()) return values_.back();
  const double frac = pos - static_cast<double>(i);
  return values_[i] * (1.0 - frac) + values_[i + 1] * frac;
}

double PiecewiseDensity::mass() const noexcept {
  return trapezoid(grid_, values_, [](double) { return 1.0; });
}

double PiecewiseDensity::mean() const noexcept {
  const double m = mass();
  if (m <= 0.0) return 0.0;
  return trapezoid(grid_, values_, [](double t) { return t; }) / m;
}

double PiecewiseDensity::variance() const noexcept {
  const double m = mass();
  if (m <= 0.0) return 0.0;
  const double mu = mean();
  const double second =
      trapezoid(grid_, values_, [mu](double t) { return (t - mu) * (t - mu); });
  return std::max(0.0, second / m);
}

double PiecewiseDensity::stddev() const noexcept { return std::sqrt(variance()); }

double PiecewiseDensity::skewness() const noexcept {
  const double m = mass();
  const double var = variance();
  if (m <= 0.0 || var <= 0.0) return 0.0;
  const double mu = mean();
  const double third = trapezoid(grid_, values_, [mu](double t) {
    const double d = t - mu;
    return d * d * d;
  });
  return third / m / std::pow(var, 1.5);
}

Gaussian PiecewiseDensity::moments() const noexcept { return {mean(), variance()}; }

std::vector<double> PiecewiseDensity::cumulative() const {
  std::vector<double> c(values_.size(), 0.0);
  for (std::size_t i = 1; i < values_.size(); ++i) {
    c[i] = c[i - 1] + 0.5 * (values_[i - 1] + values_[i]) * grid_.dt;
  }
  return c;
}

double PiecewiseDensity::cdf_at(double t) const noexcept {
  if (values_.size() < 2) return 0.0;
  if (t <= grid_.t0) return 0.0;
  double acc = 0.0;
  double prev = values_[0];
  for (std::size_t i = 1; i < values_.size(); ++i) {
    const double ti = grid_.time_at(i);
    if (t < ti) {
      const double frac = (t - grid_.time_at(i - 1)) / grid_.dt;
      const double vt = prev * (1.0 - frac) + values_[i] * frac;
      acc += 0.5 * (prev + vt) * frac * grid_.dt;
      return acc;
    }
    acc += 0.5 * (prev + values_[i]) * grid_.dt;
    prev = values_[i];
  }
  return acc;
}

PiecewiseDensity PiecewiseDensity::scaled(double w) const {
  PiecewiseDensity out = *this;
  for (double& v : out.values_) v *= w;
  return out;
}

PiecewiseDensity PiecewiseDensity::shifted(double delta) const {
  PiecewiseDensity out = *this;
  out.grid_.t0 += delta;
  return out;
}

PiecewiseDensity PiecewiseDensity::normalized() const {
  const double m = mass();
  if (m <= 0.0) return *this;
  return scaled(1.0 / m);
}

PiecewiseDensity PiecewiseDensity::resampled(GridSpec grid) const {
  std::vector<double> v(grid.n, 0.0);
  for (std::size_t i = 0; i < grid.n; ++i) v[i] = value_at(grid.time_at(i));
  return PiecewiseDensity(grid, std::move(v));
}

void PiecewiseDensity::add_scaled(const PiecewiseDensity& other, double w) {
  if (other.empty() || w == 0.0) return;
  if (empty()) {
    *this = other.scaled(w);
    return;
  }
  GridSpec g = grid_;
  const bool covers = grid_.t0 <= other.grid_.t0 + 1e-12 &&
                      grid_.t_end() >= other.grid_.t_end() - 1e-12 &&
                      grid_.dt <= other.grid_.dt + 1e-12;
  if (!covers) {
    g = union_grid(grid_, other.grid_);
    *this = resampled(g);
  }
  for (std::size_t i = 0; i < grid_.n; ++i) {
    values_[i] += w * other.value_at(grid_.time_at(i));
  }
}

PiecewiseDensity PiecewiseDensity::convolve(const PiecewiseDensity& a,
                                            const PiecewiseDensity& b) {
  return convolve(a, b, Workspace::local());
}

PiecewiseDensity PiecewiseDensity::convolve(const PiecewiseDensity& a,
                                            const PiecewiseDensity& b,
                                            Workspace& ws) {
  if (a.empty() || b.empty()) return {};
  // Bring both operands onto a common step (the finer of the two).
  const double dt = std::min(a.grid_.dt, b.grid_.dt);
  const PiecewiseDensity& fa =
      a.grid_.dt == dt ? a : a.resampled({a.grid_.t0, dt,
          static_cast<std::size_t>(std::ceil((a.grid_.t_end() - a.grid_.t0) / dt)) + 1});
  const PiecewiseDensity fb_tmp =
      b.grid_.dt == dt ? b : b.resampled({b.grid_.t0, dt,
          static_cast<std::size_t>(std::ceil((b.grid_.t_end() - b.grid_.t0) / dt)) + 1});
  const PiecewiseDensity& fb = b.grid_.dt == dt ? b : fb_tmp;

  const std::size_t na = fa.values_.size();
  const std::size_t nb = fb.values_.size();
  const std::size_t full = na + nb - 1;
  const std::size_t n = std::min(na + nb, kMaxGridPoints);
  GridSpec g{fa.grid_.t0 + fb.grid_.t0, dt, n};
  std::vector<double> v(n, 0.0);

  const std::span<double> c = ws.conv_tmp(full);
  ConvExec ex;
  ex.form = ConvExec::Form::Dense;
  ex.cols = 1;
  ex.src[0] = fa.values_;
  ex.dense = fb.values_;
  ex.scale = dt;
  ex.dst[0] = c;
  ex.ws = &ws;
  conv_execute(ex);
  std::copy_n(c.begin(), std::min(full, n), v.begin());
  if (full > n) {
    // The product's support extends past the grid cap. Fold the clipped
    // tail into the last bin so no probability mass is silently dropped
    // (the tail samples approximate the lost integral at step dt).
    double tail = 0.0;
    for (std::size_t k = n; k < full; ++k) tail += c[k];
    if (tail > 0.0) {
      v[n - 1] += tail;
      obs::registry().counter("stats.conv.clipped").add();
    }
  }
  return PiecewiseDensity(g, std::move(v));
}

PiecewiseDensity PiecewiseDensity::convolve_gaussian(const PiecewiseDensity& a,
                                                     const Gaussian& g, double sigmas) {
  return convolve_gaussian(a, g, sigmas, Workspace::local());
}

PiecewiseDensity PiecewiseDensity::convolve_gaussian(const PiecewiseDensity& a,
                                                     const Gaussian& g, double sigmas,
                                                     Workspace& ws) {
  if (a.empty()) return {};
  const double sd = g.stddev();
  if (sd == 0.0) return a.shifted(g.mean);
  const double pad = sigmas * sd;
  const double dt = a.grid_.dt;
  const std::size_t extra = static_cast<std::size_t>(std::ceil(pad / dt));
  const std::size_t n =
      std::min(a.values_.size() + 2 * extra, kMaxGridPoints);
  GridSpec grid{a.grid_.t0 + g.mean - static_cast<double>(extra) * dt, dt, n};
  // The output grid is aligned with the input lattice, so a single
  // discretized kernel (window bounds hoisted out of the per-sample loop)
  // serves every row: input index i lands at output index i + extra plus
  // the kernel's spread around the mean.
  const DelayKernel k =
      make_delay_kernel({static_cast<double>(extra) * dt, g.var}, dt, sigmas);
  PiecewiseDensity out = zero(grid);
  ConvExec ex;
  ex.cols = 1;
  ex.src[0] = a.values_;
  ex.kernel[0] = &k;
  ex.dst[0] = out.values_;
  ex.ws = &ws;
  conv_execute(ex);
  return out;
}

namespace {
PiecewiseDensity order_stat(const PiecewiseDensity& a, const PiecewiseDensity& b,
                            bool is_max) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const GridSpec g = union_grid(a.grid(), b.grid());
  const PiecewiseDensity fa = a.resampled(g);
  const PiecewiseDensity fb = b.resampled(g);
  const std::vector<double> ca = fa.cumulative();
  const std::vector<double> cb = fb.cumulative();
  std::vector<double> v(g.n, 0.0);
  for (std::size_t i = 0; i < g.n; ++i) {
    const double wa = is_max ? cb[i] : (1.0 - cb[i]);
    const double wb = is_max ? ca[i] : (1.0 - ca[i]);
    v[i] = fa.values()[i] * wa + fb.values()[i] * wb;
  }
  return PiecewiseDensity(g, std::move(v));
}
}  // namespace

PiecewiseDensity PiecewiseDensity::max_independent(const PiecewiseDensity& a,
                                                   const PiecewiseDensity& b) {
  return order_stat(a, b, /*is_max=*/true);
}

PiecewiseDensity PiecewiseDensity::min_independent(const PiecewiseDensity& a,
                                                   const PiecewiseDensity& b) {
  return order_stat(a, b, /*is_max=*/false);
}

}  // namespace spsta::stats
