/// \file piecewise.hpp
/// Piecewise-linear densities on uniform time grids.
///
/// This is the numerical representation of the paper's *signal transition
/// temporal occurrence probability* (t.o.p.) function: a non-negative
/// function of time whose integral is a transition probability (not
/// necessarily 1). It supports exactly the operations SPSTA composes:
///   * SUM with a delay        -> convolution / shift,
///   * MAX / MIN of arrivals   -> CDF products (exact under independence),
///   * WEIGHTED SUM            -> linear combination,
/// plus normalization, resampling and moment extraction.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/gaussian.hpp"

namespace spsta::stats {

class Workspace;

/// A uniform grid of `n` points `t0 + i*dt`, i in [0, n).
struct GridSpec {
  double t0 = 0.0;
  double dt = 1.0;
  std::size_t n = 0;

  [[nodiscard]] double time_at(std::size_t i) const noexcept { return t0 + dt * static_cast<double>(i); }
  [[nodiscard]] double t_end() const noexcept { return n == 0 ? t0 : time_at(n - 1); }
  friend bool operator==(const GridSpec&, const GridSpec&) = default;
};

/// Grid covering the union of both grids' spans, using the finer of the
/// two steps (min(a.dt, b.dt)); the point count is capped, and an empty
/// grid unions to the other operand unchanged.
[[nodiscard]] GridSpec union_grid(const GridSpec& a, const GridSpec& b);

/// A non-negative piecewise-linear density sampled on a uniform grid.
/// Integrals use the trapezoid rule; the function is 0 outside the grid.
class PiecewiseDensity {
 public:
  /// Empty density (mass 0) on an empty grid.
  PiecewiseDensity() = default;

  /// Density with the given samples; negative samples are clamped to 0.
  /// \p values.size() must equal \p grid.n.
  PiecewiseDensity(GridSpec grid, std::vector<double> values);

  /// All-zero density on \p grid.
  [[nodiscard]] static PiecewiseDensity zero(GridSpec grid);

  /// Gaussian density scaled by \p mass, sampled on \p grid.
  [[nodiscard]] static PiecewiseDensity from_gaussian(const Gaussian& g, GridSpec grid,
                                                      double mass = 1.0);

  /// Gaussian density on an automatically sized grid spanning
  /// mean +- \p sigmas standard deviations with \p points samples.
  [[nodiscard]] static PiecewiseDensity from_gaussian_auto(const Gaussian& g,
                                                           double sigmas = 8.0,
                                                           std::size_t points = 513,
                                                           double mass = 1.0);

  [[nodiscard]] const GridSpec& grid() const noexcept { return grid_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }
  /// Mutable view of the samples for in-place kernel writes (the numeric
  /// engine accumulates delay-kernel output directly into result storage).
  /// Callers must keep samples non-negative.
  [[nodiscard]] std::span<double> mutable_values() noexcept { return values_; }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Linear interpolation of the density at time \p t (0 outside the grid).
  [[nodiscard]] double value_at(double t) const noexcept;

  /// Total mass (integral of the density). For a normalized arrival pdf
  /// this is 1; for a t.o.p. it is the transition probability.
  [[nodiscard]] double mass() const noexcept;
  /// Mean of the *normalized* density; 0 when the mass vanishes.
  [[nodiscard]] double mean() const noexcept;
  /// Variance of the *normalized* density; 0 when the mass vanishes.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standardized third central moment of the normalized density — the
  /// shape information moment-matched SSTA discards (0 when degenerate).
  [[nodiscard]] double skewness() const noexcept;
  /// First two conditional moments packaged as a Gaussian summary.
  [[nodiscard]] Gaussian moments() const noexcept;

  /// Running integral at each grid point (trapezoid); same length as values.
  [[nodiscard]] std::vector<double> cumulative() const;
  /// Integral of the density over (-inf, t].
  [[nodiscard]] double cdf_at(double t) const noexcept;

  /// Returns the density multiplied by \p w (w >= 0).
  [[nodiscard]] PiecewiseDensity scaled(double w) const;
  /// Returns the density translated by \p delta (grid origin moves).
  [[nodiscard]] PiecewiseDensity shifted(double delta) const;
  /// Returns the density rescaled to unit mass; an empty/zero density stays zero.
  [[nodiscard]] PiecewiseDensity normalized() const;
  /// Linear-interpolation resampling onto \p grid.
  [[nodiscard]] PiecewiseDensity resampled(GridSpec grid) const;

  /// Accumulates `w * other` into this density (union grid as needed).
  void add_scaled(const PiecewiseDensity& other, double w);

  /// Density of X+Y for independent X ~ a, Y ~ b (discrete convolution on
  /// a common step; total mass is the product of operand masses). The
  /// two-argument form borrows the calling thread's `Workspace::local()`;
  /// engines that already hold a workspace pass it explicitly (see the
  /// threading contract in workspace.hpp).
  [[nodiscard]] static PiecewiseDensity convolve(const PiecewiseDensity& a,
                                                 const PiecewiseDensity& b);
  [[nodiscard]] static PiecewiseDensity convolve(const PiecewiseDensity& a,
                                                 const PiecewiseDensity& b,
                                                 Workspace& ws);

  /// Density of X+G for independent X ~ a and Gaussian G; semi-analytic
  /// (each sample convolved with the exact Gaussian kernel). When
  /// `g.var == 0` this reduces to a shift by `g.mean`. The short form
  /// borrows `Workspace::local()`.
  [[nodiscard]] static PiecewiseDensity convolve_gaussian(const PiecewiseDensity& a,
                                                          const Gaussian& g,
                                                          double sigmas = 8.0);
  [[nodiscard]] static PiecewiseDensity convolve_gaussian(const PiecewiseDensity& a,
                                                          const Gaussian& g,
                                                          double sigmas,
                                                          Workspace& ws);

  /// Density of MAX(X, Y) for independent X ~ a, Y ~ b. Operands should be
  /// normalized pdfs; the result is exact up to discretization:
  ///   h = a * CDF_b + b * CDF_a.
  [[nodiscard]] static PiecewiseDensity max_independent(const PiecewiseDensity& a,
                                                        const PiecewiseDensity& b);

  /// Density of MIN(X, Y) for independent X ~ a, Y ~ b (normalized pdfs):
  ///   h = a * (1 - CDF_b) + b * (1 - CDF_a).
  [[nodiscard]] static PiecewiseDensity min_independent(const PiecewiseDensity& a,
                                                        const PiecewiseDensity& b);

 private:
  GridSpec grid_{};
  std::vector<double> values_;
};

}  // namespace spsta::stats
