#include "stats/conv_kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "stats/normal.hpp"
#include "stats/workspace.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SPSTA_RESTRICT __restrict__
#else
#define SPSTA_RESTRICT
#endif

namespace spsta::stats {

namespace {

/// Default direct->FFT crossover on the padded output length, measured by
/// bench/conv_kernels_bench on the CI-class hardware this repo targets
/// (see DESIGN.md §12): at 512 output points the radix-2 FFT already beats
/// the direct loop ~1.7x (8us vs 14us) and the gap widens monotonically;
/// below ~256 the direct loop's cache friendliness wins.
constexpr std::size_t kDefaultCrossover = 512;

std::atomic<std::size_t>& crossover_override() noexcept {
  static std::atomic<std::size_t> v{0};  // 0 = use env/default
  return v;
}

std::size_t env_crossover() noexcept {
  // Read once: the knob must be stable for a process lifetime so the
  // kernel choice stays a pure function of sizes.
  static const std::size_t value = [] {
    const char* s = std::getenv("SPSTA_CONV_CROSSOVER");
    if (s == nullptr || *s == '\0') return kDefaultCrossover;
    std::size_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(s, s + std::strlen(s), parsed);
    if (ec != std::errc{} || *ptr != '\0' || parsed == 0) return kDefaultCrossover;
    return parsed;
  }();
  return value;
}

obs::Counter& fft_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.fft");
  return c;
}
obs::Counter& direct_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.direct");
  return c;
}
obs::Counter& shift_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.shift");
  return c;
}
obs::Counter& clip_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.clipped");
  return c;
}

/// Iterative radix-2 Cooley-Tukey on split re/im lanes; the plan supplies
/// bit-reversal and forward twiddles (inverse conjugates them). No output
/// scaling — callers of the inverse fold 1/N into their final write.
void fft_inplace(const Workspace::FftPlan& p, double* SPSTA_RESTRICT re,
                 double* SPSTA_RESTRICT im, bool inverse) {
  const std::size_t n = p.n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = p.bitrev[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;
    for (std::size_t start = 0; start < n; start += len) {
      std::size_t tw = 0;
      for (std::size_t k = 0; k < half; ++k, tw += step) {
        const double wr = p.wre[tw];
        const double wi = inverse ? -p.wim[tw] : p.wim[tw];
        const std::size_t u = start + k;
        const std::size_t v = u + half;
        const double tr = re[v] * wr - im[v] * wi;
        const double ti = re[v] * wi + im[v] * wr;
        re[v] = re[u] - tr;
        im[v] = im[u] - ti;
        re[u] += tr;
        im[u] += ti;
      }
    }
  }
}

/// FFT linear convolution with the real-pack trick: one forward transform
/// of z = a + i*b yields both spectra (A(k) = (Z(k) + conj(Z(N-k)))/2,
/// B(k) = (Z(k) - conj(Z(N-k)))/(2i)); their product inverts to the
/// convolution in the real lane.
void conv_fft(std::span<const double> a, std::span<const double> b, double scale,
              std::span<double> out, Workspace& ws) {
  const std::size_t len = a.size() + b.size() - 1;
  const std::size_t n = std::bit_ceil(len);
  const Workspace::FftPlan& plan = ws.fft_plan(n);
  const std::span<double> re = ws.fft_re(n);
  const std::span<double> im = ws.fft_im(n);
  std::copy(a.begin(), a.end(), re.begin());
  std::fill(re.begin() + static_cast<std::ptrdiff_t>(a.size()), re.end(), 0.0);
  std::copy(b.begin(), b.end(), im.begin());
  std::fill(im.begin() + static_cast<std::ptrdiff_t>(b.size()), im.end(), 0.0);

  fft_inplace(plan, re.data(), im.data(), /*inverse=*/false);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const std::size_t k2 = (n - k) & (n - 1);
    const double zr1 = re[k], zi1 = im[k];
    const double zr2 = re[k2], zi2 = im[k2];
    const double ar = 0.5 * (zr1 + zr2), ai = 0.5 * (zi1 - zi2);
    const double br = 0.5 * (zi1 + zi2), bi = 0.5 * (zr2 - zr1);
    const double cr = ar * br - ai * bi;
    const double ci = ar * bi + ai * br;
    re[k] = cr;
    im[k] = ci;
    re[k2] = cr;
    im[k2] = -ci;
  }
  fft_inplace(plan, re.data(), im.data(), /*inverse=*/true);

  const double norm = scale / static_cast<double>(n);
  for (std::size_t k = 0; k < len; ++k) {
    // Round-off can leave tiny negative values; densities stay >= 0.
    out[k] = std::max(0.0, re[k] * norm);
  }
}

void conv_direct(std::span<const double> a, std::span<const double> b, double scale,
                 std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  const double* SPSTA_RESTRICT bp = b.data();
  const std::size_t nb = b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double w = scale * a[i];
    if (w == 0.0) continue;
    double* SPSTA_RESTRICT o = out.data() + i;
    for (std::size_t j = 0; j < nb; ++j) o[j] += w * bp[j];
  }
}

}  // namespace

std::size_t conv_crossover() noexcept {
  const std::size_t v = crossover_override().load(std::memory_order_relaxed);
  return v != 0 ? v : env_crossover();
}

void set_conv_crossover(std::size_t points) noexcept {
  crossover_override().store(points, std::memory_order_relaxed);
}

ConvKernelChoice select_conv_kernel(std::size_t na, std::size_t nb) noexcept {
  if (na == 0 || nb == 0) return ConvKernelChoice::Direct;
  if (std::min(na, nb) < kMinFftOperand) return ConvKernelChoice::Direct;
  return (na + nb - 1) >= conv_crossover() ? ConvKernelChoice::Fft
                                           : ConvKernelChoice::Direct;
}

void conv_full(std::span<const double> a, std::span<const double> b, double scale,
               std::span<double> out, Workspace& ws) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("conv_full: empty operand");
  }
  if (out.size() != a.size() + b.size() - 1) {
    throw std::invalid_argument("conv_full: out must have size na + nb - 1");
  }
  const auto all_zero = [](std::span<const double> v) {
    return std::all_of(v.begin(), v.end(), [](double x) { return x == 0.0; });
  };
  if (scale == 0.0 || all_zero(a) || all_zero(b)) {
    // Exact zero for a zero operand: the FFT pack trick would otherwise
    // leak ~1e-15 of the other operand's round-off into the result.
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  if (select_conv_kernel(a.size(), b.size()) == ConvKernelChoice::Fft) {
    fft_counter().add();
    conv_fft(a, b, scale, out, ws);
  } else {
    direct_counter().add();
    conv_direct(a, b, scale, out);
  }
}

DelayKernel make_delay_kernel(const Gaussian& g, double dt, double sigmas) {
  if (!(dt > 0.0)) throw std::invalid_argument("make_delay_kernel: dt must be > 0");
  DelayKernel k;
  const double sd = g.stddev();
  const double pad = sigmas * sd;
  if (sd == 0.0 || pad < dt) {
    // Degenerate (or sub-grid) delay: an exact fractional shift preserves
    // mass and shape where a near-delta sampled kernel would alias.
    k.exact_shift = true;
    const double pos = g.mean / dt;
    const double base = std::floor(pos);
    k.shift = static_cast<std::ptrdiff_t>(base);
    k.frac = std::clamp(pos - base, 0.0, 1.0);
    if (k.frac == 1.0) {  // pos rounded up against floor's result
      ++k.shift;
      k.frac = 0.0;
    }
    return k;
  }
  k.first = static_cast<std::ptrdiff_t>(std::ceil((g.mean - pad) / dt));
  const auto last = static_cast<std::ptrdiff_t>(std::floor((g.mean + pad) / dt));
  k.taps.resize(static_cast<std::size_t>(last - k.first + 1));
  for (std::size_t m = 0; m < k.taps.size(); ++m) {
    const double t = static_cast<double>(k.first + static_cast<std::ptrdiff_t>(m)) * dt;
    k.taps[m] = dt * normal_pdf(t, g.mean, sd);
  }
  return k;
}

namespace {

/// out[i + offset] += w * in[i], folding out-of-range contributions into
/// the nearest edge bin. Returns the folded mass (in density-value units).
double axpy_shifted(std::span<const double> in, double w, std::ptrdiff_t offset,
                    std::span<double> out) {
  if (w == 0.0) return 0.0;
  const auto n_in = static_cast<std::ptrdiff_t>(in.size());
  const auto n_out = static_cast<std::ptrdiff_t>(out.size());
  const std::ptrdiff_t i_lo = std::clamp<std::ptrdiff_t>(-offset, 0, n_in);
  const std::ptrdiff_t i_hi = std::clamp<std::ptrdiff_t>(n_out - offset, i_lo, n_in);
  double folded = 0.0;
  double head = 0.0, tail = 0.0;
  for (std::ptrdiff_t i = 0; i < i_lo; ++i) head += in[static_cast<std::size_t>(i)];
  for (std::ptrdiff_t i = i_hi; i < n_in; ++i) tail += in[static_cast<std::size_t>(i)];
  if (head != 0.0) {
    out[0] += w * head;
    folded += w * head;
  }
  if (tail != 0.0) {
    out[out.size() - 1] += w * tail;
    folded += w * tail;
  }
  const double* SPSTA_RESTRICT ip = in.data();
  double* SPSTA_RESTRICT op = out.data() + offset;
  for (std::ptrdiff_t i = i_lo; i < i_hi; ++i) op[i] += w * ip[i];
  return folded;
}

}  // namespace

void apply_delay_kernel(std::span<const double> in, const DelayKernel& k,
                        std::span<double> out, Workspace& ws) {
  if (in.empty() || out.empty()) return;
  if (std::all_of(in.begin(), in.end(), [](double v) { return v == 0.0; })) return;

  double folded = 0.0;
  if (k.exact_shift) {
    shift_counter().add();
    folded += axpy_shifted(in, 1.0 - k.frac, k.shift, out);
    if (k.frac != 0.0) folded += axpy_shifted(in, k.frac, k.shift + 1, out);
  } else if (select_conv_kernel(in.size(), k.taps.size()) == ConvKernelChoice::Fft) {
    fft_counter().add();
    const std::size_t len = in.size() + k.taps.size() - 1;
    const std::span<double> tmp = ws.conv_tmp(len);
    conv_fft(in, k.taps, 1.0, tmp, ws);
    folded += axpy_shifted(tmp, 1.0, k.first, out);
  } else {
    direct_counter().add();
    const auto n_out = static_cast<std::ptrdiff_t>(out.size());
    const auto taps = static_cast<std::ptrdiff_t>(k.taps.size());
    const double* SPSTA_RESTRICT tp = k.taps.data();
    for (std::size_t i = 0; i < in.size(); ++i) {
      const double w = in[i];
      if (w == 0.0) continue;
      const std::ptrdiff_t base = static_cast<std::ptrdiff_t>(i) + k.first;
      const std::ptrdiff_t m_lo = std::clamp<std::ptrdiff_t>(-base, 0, taps);
      const std::ptrdiff_t m_hi = std::clamp<std::ptrdiff_t>(n_out - base, m_lo, taps);
      double head = 0.0, tail = 0.0;
      for (std::ptrdiff_t m = 0; m < m_lo; ++m) head += tp[m];
      for (std::ptrdiff_t m = m_hi; m < taps; ++m) tail += tp[m];
      if (head != 0.0) {
        out[0] += w * head;
        folded += w * head;
      }
      if (tail != 0.0) {
        out[out.size() - 1] += w * tail;
        folded += w * tail;
      }
      double* SPSTA_RESTRICT op = out.data() + base;
      for (std::ptrdiff_t m = m_lo; m < m_hi; ++m) op[m] += w * tp[m];
    }
  }
  if (folded > 0.0) clip_counter().add();
}

}  // namespace spsta::stats
