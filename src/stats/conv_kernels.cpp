#include "stats/conv_kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "stats/normal.hpp"
#include "stats/simd.hpp"
#include "stats/workspace.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SPSTA_RESTRICT __restrict__
#else
#define SPSTA_RESTRICT
#endif

namespace spsta::stats {

namespace {

/// Default direct->FFT crossover on the padded output length, measured by
/// bench/conv_kernels_bench on the CI-class hardware this repo targets
/// (see DESIGN.md §12): at 512 output points the radix-2 FFT already beats
/// the direct loop ~1.7x (8us vs 14us) and the gap widens monotonically;
/// below ~256 the direct loop's cache friendliness wins.
constexpr std::size_t kDefaultCrossover = 512;

std::atomic<std::size_t>& crossover_override() noexcept {
  static std::atomic<std::size_t> v{0};  // 0 = use env/default
  return v;
}

std::size_t env_crossover() noexcept {
  // Read once: the knob must be stable for a process lifetime so the
  // kernel choice stays a pure function of sizes. A malformed value is
  // rejected loudly (once) instead of silently shadow-defaulting.
  static const std::size_t value = [] {
    const char* s = std::getenv("SPSTA_CONV_CROSSOVER");
    if (s == nullptr || *s == '\0') return kDefaultCrossover;
    if (const std::optional<std::size_t> parsed = parse_conv_crossover(s)) {
      return *parsed;
    }
    std::fprintf(stderr,
                 "spsta: invalid SPSTA_CONV_CROSSOVER=\"%s\" "
                 "(want a positive integer); using default %zu\n",
                 s, kDefaultCrossover);
    obs::registry().counter("stats.conv.crossover_invalid").add();
    return kDefaultCrossover;
  }();
  return value;
}

obs::Counter& fft_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.fft");
  return c;
}
obs::Counter& direct_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.direct");
  return c;
}
obs::Counter& shift_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.shift");
  return c;
}
obs::Counter& clip_counter() {
  static obs::Counter& c = obs::registry().counter("stats.conv.clipped");
  return c;
}

/// Iterative radix-2 Cooley-Tukey on split re/im lanes. Stage twiddles
/// come from the plan's unit-stride per-stage tables (bitwise copies of
/// the master table, so results match the legacy strided walk exactly);
/// the butterflies go through the dispatched SIMD tier. No output
/// scaling — callers of the inverse fold 1/N into their final write.
void fft_inplace(const Workspace::FftPlan& p, double* SPSTA_RESTRICT re,
                 double* SPSTA_RESTRICT im, bool inverse) {
  const simd::Ops& v = simd::ops();
  const std::size_t n = p.n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = p.bitrev[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  const double sign = inverse ? -1.0 : 1.0;
  std::size_t s = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++s) {
    const std::size_t half = len >> 1;
    const double* wr = p.stage_wre.data() + Workspace::FftPlan::stage_offset(s);
    const double* wi = p.stage_wim.data() + Workspace::FftPlan::stage_offset(s);
    for (std::size_t start = 0; start < n; start += len) {
      v.butterfly(re + start, im + start, re + start + half, im + start + half,
                  wr, wi, sign, half);
    }
  }
}

/// Half-spectrum of real \p x zero-padded to size 2M (M = plan.n):
/// writes X[k] = DFT_{2M}(x)[k] for k = 0..M into (xr, xi), computing one
/// size-M complex FFT of the even/odd pack z[j] = x[2j] + i*x[2j+1] and
/// recombining with the plan's double-size twiddles. (zre, zim) are
/// length-M work lanes; (xr, xi) are length M+1 and must not alias them.
void rfft_forward(std::span<const double> x, const Workspace::FftPlan& plan,
                  double* SPSTA_RESTRICT zre, double* SPSTA_RESTRICT zim,
                  double* SPSTA_RESTRICT xr, double* SPSTA_RESTRICT xi) {
  const std::size_t m = plan.n;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t e = 2 * j;
    zre[j] = e < x.size() ? x[e] : 0.0;
    zim[j] = e + 1 < x.size() ? x[e + 1] : 0.0;
  }
  fft_inplace(plan, zre, zim, /*inverse=*/false);
  const std::size_t mask = m - 1;
  for (std::size_t k = 0; k <= m; ++k) {
    const std::size_t ka = k & mask;
    const std::size_t kb = (m - k) & mask;
    const double ar = zre[ka], ai = zim[ka];
    const double br = zre[kb], bi = -zim[kb];
    // Even/odd sample spectra: Ze = (Z(k) + conj(Z(M-k)))/2,
    // Zo = -i * (Z(k) - conj(Z(M-k)))/2; X(k) = Ze + w_{2M}^k * Zo.
    const double zer = 0.5 * (ar + br), zei = 0.5 * (ai + bi);
    const double zor = 0.5 * (ai - bi), zoi = -0.5 * (ar - br);
    const double wr = plan.half_wre[k], wi = plan.half_wim[k];
    xr[k] = zer + (wr * zor - wi * zoi);
    xi[k] = zei + (wr * zoi + wi * zor);
  }
}

/// Inverse of `rfft_forward`: consumes the half-spectrum (yr, yi) of
/// length M+1 and leaves the 2M real samples interleaved in (zre, zim) —
/// sample 2j in zre[j], sample 2j+1 in zim[j] — scaled by M (the caller
/// folds 1/M into its final write, like the dense path folds 1/N).
void rfft_inverse(const Workspace::FftPlan& plan, const double* SPSTA_RESTRICT yr,
                  const double* SPSTA_RESTRICT yi, double* SPSTA_RESTRICT zre,
                  double* SPSTA_RESTRICT zim) {
  const std::size_t m = plan.n;
  for (std::size_t k = 0; k < m; ++k) {
    const double ar = yr[k], ai = yi[k];
    const double br = yr[m - k], bi = -yi[m - k];
    const double yer = 0.5 * (ar + br), yei = 0.5 * (ai + bi);
    const double dr = 0.5 * (ar - br), di = 0.5 * (ai - bi);
    const double wr = plan.half_wre[k], wi = plan.half_wim[k];
    // Zo = w_{2M}^{-k} * (Y(k) - conj(Y(M-k)))/2; pack Z' = Ze + i*Zo.
    const double yor = dr * wr + di * wi;
    const double yoi = di * wr - dr * wi;
    zre[k] = yer - yoi;
    zim[k] = yei + yor;
  }
  fft_inplace(plan, zre, zim, /*inverse=*/true);
}

/// FFT linear convolution with the real-pack trick: one forward transform
/// of z = a + i*b yields both spectra (A(k) = (Z(k) + conj(Z(N-k)))/2,
/// B(k) = (Z(k) - conj(Z(N-k)))/(2i)); their product inverts to the
/// convolution in the real lane. (The dense form's two operands are both
/// fresh per call, so the pack trick — not the half-size rfft — is the
/// cheapest transform count here.)
void conv_fft(std::span<const double> a, std::span<const double> b, double scale,
              std::span<double> out, Workspace& ws) {
  const std::size_t len = a.size() + b.size() - 1;
  const std::size_t n = std::bit_ceil(len);
  const Workspace::FftPlan& plan = ws.fft_plan(n);
  const std::span<double> re = ws.fft_re(n);
  const std::span<double> im = ws.fft_im(n);
  std::copy(a.begin(), a.end(), re.begin());
  std::fill(re.begin() + static_cast<std::ptrdiff_t>(a.size()), re.end(), 0.0);
  std::copy(b.begin(), b.end(), im.begin());
  std::fill(im.begin() + static_cast<std::ptrdiff_t>(b.size()), im.end(), 0.0);

  fft_inplace(plan, re.data(), im.data(), /*inverse=*/false);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const std::size_t k2 = (n - k) & (n - 1);
    const double zr1 = re[k], zi1 = im[k];
    const double zr2 = re[k2], zi2 = im[k2];
    const double ar = 0.5 * (zr1 + zr2), ai = 0.5 * (zi1 - zi2);
    const double br = 0.5 * (zi1 + zi2), bi = 0.5 * (zr2 - zr1);
    const double cr = ar * br - ai * bi;
    const double ci = ar * bi + ai * br;
    re[k] = cr;
    im[k] = ci;
    re[k2] = cr;
    im[k2] = -ci;
  }
  fft_inplace(plan, re.data(), im.data(), /*inverse=*/true);

  const double norm = scale / static_cast<double>(n);
  for (std::size_t k = 0; k < len; ++k) {
    // Round-off can leave tiny negative values; densities stay >= 0.
    out[k] = std::max(0.0, re[k] * norm);
  }
}

void conv_direct(std::span<const double> a, std::span<const double> b, double scale,
                 std::span<double> out) {
  const simd::Ops& v = simd::ops();
  std::fill(out.begin(), out.end(), 0.0);
  const double* SPSTA_RESTRICT bp = b.data();
  const std::size_t nb = b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double w = scale * a[i];
    if (w == 0.0) continue;
    v.axpy(bp, w, out.data() + i, nb);
  }
}

[[nodiscard]] bool all_zero(std::span<const double> v) noexcept {
  return std::all_of(v.begin(), v.end(), [](double x) { return x == 0.0; });
}

/// out[i + offset] += w * in[i], folding out-of-range contributions into
/// the nearest edge bin. Returns the folded mass (in density-value units).
double axpy_shifted(std::span<const double> in, double w, std::ptrdiff_t offset,
                    std::span<double> out) {
  if (w == 0.0) return 0.0;
  const auto n_in = static_cast<std::ptrdiff_t>(in.size());
  const auto n_out = static_cast<std::ptrdiff_t>(out.size());
  const std::ptrdiff_t i_lo = std::clamp<std::ptrdiff_t>(-offset, 0, n_in);
  const std::ptrdiff_t i_hi = std::clamp<std::ptrdiff_t>(n_out - offset, i_lo, n_in);
  double folded = 0.0;
  double head = 0.0, tail = 0.0;
  for (std::ptrdiff_t i = 0; i < i_lo; ++i) head += in[static_cast<std::size_t>(i)];
  for (std::ptrdiff_t i = i_hi; i < n_in; ++i) tail += in[static_cast<std::size_t>(i)];
  if (head != 0.0) {
    out[0] += w * head;
    folded += w * head;
  }
  if (tail != 0.0) {
    out[out.size() - 1] += w * tail;
    folded += w * tail;
  }
  simd::ops().axpy(in.data() + i_lo, w, out.data() + offset + i_lo,
                   static_cast<std::size_t>(i_hi - i_lo));
  return folded;
}

/// SUM-with-delay via the half-size real FFT: forward-transform the
/// input, multiply by the kernel's half-spectrum (precomputed when the
/// kernel carries one for this size, else computed here with the very
/// same function — bit-identical either way), invert, clamp round-off
/// negatives, and edge-fold into `out` at the kernel's grid offset.
/// `spec_cache` carries the last on-the-fly spectrum across the columns
/// of one batched call so a repeated kernel transforms once.
struct SpectrumCache {
  const DelayKernel* kernel = nullptr;
  std::size_t fft_n = 0;
};

double conv_delay_fft(std::span<const double> in, const DelayKernel& k,
                      std::span<double> out, Workspace& ws,
                      SpectrumCache& spec_cache) {
  const std::size_t full = in.size() + k.taps.size() - 1;
  const std::size_t n = std::bit_ceil(full);
  const std::size_t m = n / 2;
  const Workspace::FftPlan& plan = ws.fft_plan(m);
  const std::span<double> zre = ws.fft_re(m);
  const std::span<double> zim = ws.fft_im(m);
  const std::span<double> xr = ws.fft_re2(m + 1);
  const std::span<double> xi = ws.fft_im2(m + 1);

  const double* hr;
  const double* hi;
  if (k.spec_n == n) {
    hr = k.spec_re.data();
    hi = k.spec_im.data();
  } else {
    const std::span<double> sr = ws.spec_re(m + 1);
    const std::span<double> si = ws.spec_im(m + 1);
    if (spec_cache.kernel != &k || spec_cache.fft_n != n) {
      rfft_forward(k.taps, plan, zre.data(), zim.data(), sr.data(), si.data());
      spec_cache.kernel = &k;
      spec_cache.fft_n = n;
    }
    hr = sr.data();
    hi = si.data();
  }

  rfft_forward(in, plan, zre.data(), zim.data(), xr.data(), xi.data());
  for (std::size_t q = 0; q <= m; ++q) {
    const double a = xr[q], b = xi[q];
    xr[q] = a * hr[q] - b * hi[q];
    xi[q] = a * hi[q] + b * hr[q];
  }
  rfft_inverse(plan, xr.data(), xi.data(), zre.data(), zim.data());

  const double norm = 1.0 / static_cast<double>(m);
  const std::span<double> tmp = ws.conv_tmp(full);
  for (std::size_t j = 0; j < full; ++j) {
    const double v = (j & 1u) ? zim[j >> 1] : zre[j >> 1];
    // Round-off can leave tiny negative values; densities stay >= 0.
    tmp[j] = std::max(0.0, v * norm);
  }
  return axpy_shifted(tmp, 1.0, k.first, out);
}

/// One Delay column: exact shift / FFT / direct, per the size dispatch.
/// Returns the edge-folded mass.
double apply_delay_column(std::span<const double> in, const DelayKernel& k,
                          std::span<double> out, Workspace& ws,
                          SpectrumCache& spec_cache) {
  double folded = 0.0;
  if (k.exact_shift) {
    shift_counter().add();
    folded += axpy_shifted(in, 1.0 - k.frac, k.shift, out);
    if (k.frac != 0.0) folded += axpy_shifted(in, k.frac, k.shift + 1, out);
  } else if (select_conv_kernel(in.size(), k.taps.size()) == ConvKernelChoice::Fft) {
    fft_counter().add();
    folded += conv_delay_fft(in, k, out, ws, spec_cache);
  } else {
    direct_counter().add();
    const simd::Ops& v = simd::ops();
    const auto n_out = static_cast<std::ptrdiff_t>(out.size());
    const auto taps = static_cast<std::ptrdiff_t>(k.taps.size());
    const double* SPSTA_RESTRICT tp = k.taps.data();
    for (std::size_t i = 0; i < in.size(); ++i) {
      const double w = in[i];
      if (w == 0.0) continue;
      const std::ptrdiff_t base = static_cast<std::ptrdiff_t>(i) + k.first;
      const std::ptrdiff_t m_lo = std::clamp<std::ptrdiff_t>(-base, 0, taps);
      const std::ptrdiff_t m_hi = std::clamp<std::ptrdiff_t>(n_out - base, m_lo, taps);
      double head = 0.0, tail = 0.0;
      for (std::ptrdiff_t m = 0; m < m_lo; ++m) head += tp[m];
      for (std::ptrdiff_t m = m_hi; m < taps; ++m) tail += tp[m];
      if (head != 0.0) {
        out[0] += w * head;
        folded += w * head;
      }
      if (tail != 0.0) {
        out[out.size() - 1] += w * tail;
        folded += w * tail;
      }
      v.axpy(tp + m_lo, w, out.data() + base + m_lo,
             static_cast<std::size_t>(m_hi - m_lo));
    }
  }
  return folded;
}

[[noreturn]] void bad_exec(const char* what) {
  throw std::invalid_argument(std::string("conv_execute: ") + what);
}

}  // namespace

std::size_t conv_crossover() noexcept {
  const std::size_t v = crossover_override().load(std::memory_order_relaxed);
  return v != 0 ? v : env_crossover();
}

void set_conv_crossover(std::size_t points) noexcept {
  crossover_override().store(points, std::memory_order_relaxed);
}

std::optional<std::size_t> parse_conv_crossover(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return std::nullopt;
  std::size_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(text, text + std::strlen(text), parsed);
  if (ec != std::errc{} || *ptr != '\0' || parsed == 0) return std::nullopt;
  return parsed;
}

ConvKernelChoice select_conv_kernel(std::size_t na, std::size_t nb) noexcept {
  if (na == 0 || nb == 0) return ConvKernelChoice::Direct;
  if (std::min(na, nb) < kMinFftOperand) return ConvKernelChoice::Direct;
  return (na + nb - 1) >= conv_crossover() ? ConvKernelChoice::Fft
                                           : ConvKernelChoice::Direct;
}

DelayKernel make_delay_kernel(const Gaussian& g, double dt, double sigmas) {
  if (!(dt > 0.0)) throw std::invalid_argument("make_delay_kernel: dt must be > 0");
  DelayKernel k;
  const double sd = g.stddev();
  const double pad = sigmas * sd;
  if (sd == 0.0 || pad < dt) {
    // Degenerate (or sub-grid) delay: an exact fractional shift preserves
    // mass and shape where a near-delta sampled kernel would alias.
    k.exact_shift = true;
    const double pos = g.mean / dt;
    const double base = std::floor(pos);
    k.shift = static_cast<std::ptrdiff_t>(base);
    k.frac = std::clamp(pos - base, 0.0, 1.0);
    if (k.frac == 1.0) {  // pos rounded up against floor's result
      ++k.shift;
      k.frac = 0.0;
    }
    return k;
  }
  k.first = static_cast<std::ptrdiff_t>(std::ceil((g.mean - pad) / dt));
  const auto last = static_cast<std::ptrdiff_t>(std::floor((g.mean + pad) / dt));
  k.taps.resize(static_cast<std::size_t>(last - k.first + 1));
  for (std::size_t m = 0; m < k.taps.size(); ++m) {
    const double t = static_cast<double>(k.first + static_cast<std::ptrdiff_t>(m)) * dt;
    k.taps[m] = dt * normal_pdf(t, g.mean, sd);
  }
  return k;
}

std::size_t delay_fft_size(std::size_t n_in, const DelayKernel& k) noexcept {
  if (k.exact_shift || n_in == 0 || k.taps.empty()) return 0;
  if (select_conv_kernel(n_in, k.taps.size()) != ConvKernelChoice::Fft) return 0;
  return std::bit_ceil(n_in + k.taps.size() - 1);
}

void precompute_kernel_spectrum(DelayKernel& k, std::size_t fft_n, Workspace& ws) {
  if (k.exact_shift || k.taps.empty() || fft_n == 0) return;
  if (!std::has_single_bit(fft_n) || fft_n < 2 * kMinFftOperand) {
    throw std::invalid_argument(
        "precompute_kernel_spectrum: fft_n must be a power of two >= 32");
  }
  if (k.taps.size() > fft_n) {
    throw std::invalid_argument("precompute_kernel_spectrum: taps exceed fft_n");
  }
  const std::size_t m = fft_n / 2;
  const Workspace::FftPlan& plan = ws.fft_plan(m);
  k.spec_re.resize(m + 1);
  k.spec_im.resize(m + 1);
  rfft_forward(k.taps, plan, ws.fft_re(m).data(), ws.fft_im(m).data(),
               k.spec_re.data(), k.spec_im.data());
  k.spec_n = fft_n;
}

void conv_execute(const ConvExec& ex) {
  if (ex.ws == nullptr) bad_exec("null workspace");
  if (ex.cols == 0 || ex.cols > ConvExec::kMaxCols) bad_exec("bad column count");
  Workspace& ws = *ex.ws;

  if (ex.form == ConvExec::Form::Dense) {
    if (ex.dense.empty()) bad_exec("empty dense operand");
    for (std::size_t c = 0; c < ex.cols; ++c) {
      if (ex.src[c].empty()) bad_exec("empty source column");
      if (ex.dst[c].size() != ex.src[c].size() + ex.dense.size() - 1) {
        bad_exec("dst must have size n_src + n_dense - 1");
      }
    }
    const bool dense_zero = all_zero(ex.dense);
    for (std::size_t c = 0; c < ex.cols; ++c) {
      const std::span<const double> a = ex.src[c];
      const std::span<double> out = ex.dst[c];
      if (ex.scale == 0.0 || dense_zero || all_zero(a)) {
        // Exact zero for a zero operand: the FFT pack trick would
        // otherwise leak ~1e-15 of the other operand's round-off.
        std::fill(out.begin(), out.end(), 0.0);
        continue;
      }
      if (select_conv_kernel(a.size(), ex.dense.size()) == ConvKernelChoice::Fft) {
        fft_counter().add();
        conv_fft(a, ex.dense, ex.scale, out, ws);
      } else {
        direct_counter().add();
        conv_direct(a, ex.dense, ex.scale, out);
      }
    }
    return;
  }

  // Delay form.
  for (std::size_t c = 0; c < ex.cols; ++c) {
    if (ex.kernel[c] == nullptr) bad_exec("null delay kernel");
  }
  SpectrumCache spec_cache;
  double folded = 0.0;
  for (std::size_t c = 0; c < ex.cols; ++c) {
    const std::span<const double> in = ex.src[c];
    const std::span<double> out = ex.dst[c];
    if (in.empty() || out.empty()) continue;
    if (all_zero(in)) continue;
    folded += apply_delay_column(in, *ex.kernel[c], out, ws, spec_cache);
  }
  if (folded > 0.0) clip_counter().add();
}

}  // namespace spsta::stats
