#include "stats/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "stats/simd_detail.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

// This translation unit holds the scalar reference tier (and the NEON
// tier, whose intrinsics are explicit about every multiply/add). It is
// compiled with -ffp-contract=off (src/CMakeLists.txt) so the compiler
// cannot fuse a*b+c into an FMA the vector tiers don't perform — the
// bit-identity contract of simd.hpp depends on it.

namespace spsta::stats::simd {

namespace {

void scalar_butterfly(double* ur, double* ui, double* vr, double* vi,
                      const double* wr, const double* wi, double sign,
                      std::size_t half) {
  for (std::size_t k = 0; k < half; ++k) {
    const double wrk = wr[k];
    const double wik = sign * wi[k];
    const double tr = vr[k] * wrk - vi[k] * wik;
    const double ti = vr[k] * wik + vi[k] * wrk;
    vr[k] = ur[k] - tr;
    vi[k] = ui[k] - ti;
    ur[k] += tr;
    ui[k] += ti;
  }
}

void scalar_mul_scale(const double* a, double s, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void scalar_axpy(const double* a, double w, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += w * a[i];
}

void scalar_cdf_mix_max(double* f, const double* c, const double* ca,
                        const double* cb, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) f[i] = f[i] * cb[i] + c[i] * ca[i];
}

void scalar_cdf_mix_min(double* f, const double* c, const double* ca,
                        const double* cb, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = f[i] * (1.0 - cb[i]) + c[i] * (1.0 - ca[i]);
  }
}

constexpr Ops kScalarOps{
    "scalar",          scalar_butterfly,   scalar_mul_scale,
    scalar_axpy,       scalar_cdf_mix_max, scalar_cdf_mix_min,
};

#if defined(__aarch64__)

void neon_butterfly(double* ur, double* ui, double* vr, double* vi,
                    const double* wr, const double* wi, double sign,
                    std::size_t half) {
  const float64x2_t vsign = vdupq_n_f64(sign);
  std::size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const float64x2_t wrk = vld1q_f64(wr + k);
    const float64x2_t wik = vmulq_f64(vsign, vld1q_f64(wi + k));
    const float64x2_t xvr = vld1q_f64(vr + k);
    const float64x2_t xvi = vld1q_f64(vi + k);
    const float64x2_t tr = vsubq_f64(vmulq_f64(xvr, wrk), vmulq_f64(xvi, wik));
    const float64x2_t ti = vaddq_f64(vmulq_f64(xvr, wik), vmulq_f64(xvi, wrk));
    const float64x2_t xur = vld1q_f64(ur + k);
    const float64x2_t xui = vld1q_f64(ui + k);
    vst1q_f64(vr + k, vsubq_f64(xur, tr));
    vst1q_f64(vi + k, vsubq_f64(xui, ti));
    vst1q_f64(ur + k, vaddq_f64(xur, tr));
    vst1q_f64(ui + k, vaddq_f64(xui, ti));
  }
  scalar_butterfly(ur + k, ui + k, vr + k, vi + k, wr + k, wi + k, sign,
                   half - k);
}

void neon_mul_scale(const double* a, double s, double* out, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vs));
  scalar_mul_scale(a + i, s, out + i, n - i);
}

void neon_axpy(const double* a, double w, double* out, std::size_t n) {
  const float64x2_t vw = vdupq_n_f64(w);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(out + i),
                                 vmulq_f64(vw, vld1q_f64(a + i))));
  }
  scalar_axpy(a + i, w, out + i, n - i);
}

void neon_cdf_mix_max(double* f, const double* c, const double* ca,
                      const double* cb, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t t = vaddq_f64(vmulq_f64(vld1q_f64(f + i), vld1q_f64(cb + i)),
                                    vmulq_f64(vld1q_f64(c + i), vld1q_f64(ca + i)));
    vst1q_f64(f + i, t);
  }
  scalar_cdf_mix_max(f + i, c + i, ca + i, cb + i, n - i);
}

void neon_cdf_mix_min(double* f, const double* c, const double* ca,
                      const double* cb, std::size_t n) {
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t t = vaddq_f64(
        vmulq_f64(vld1q_f64(f + i), vsubq_f64(one, vld1q_f64(cb + i))),
        vmulq_f64(vld1q_f64(c + i), vsubq_f64(one, vld1q_f64(ca + i))));
    vst1q_f64(f + i, t);
  }
  scalar_cdf_mix_min(f + i, c + i, ca + i, cb + i, n - i);
}

constexpr Ops kNeonOps{
    "neon",      neon_butterfly,   neon_mul_scale,
    neon_axpy,   neon_cdf_mix_max, neon_cdf_mix_min,
};

#endif  // __aarch64__

/// The best tier this CPU supports (cached after the first probe).
const Ops* best_ops() noexcept {
  static const Ops* const best = [] {
#if defined(__aarch64__)
    return &kNeonOps;  // NEON is baseline on aarch64
#elif defined(__x86_64__) || defined(_M_X64)
    if (detail::avx2_ops() != nullptr && __builtin_cpu_supports("avx2")) {
      return detail::avx2_ops();
    }
    return &kScalarOps;
#else
    return &kScalarOps;
#endif
  }();
  return best;
}

std::atomic<const Ops*>& active() noexcept {
  static std::atomic<const Ops*> a{nullptr};
  return a;
}

const Ops* resolve() noexcept {
  const char* env = std::getenv("SPSTA_FORCE_SCALAR");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
    return &kScalarOps;
  }
  return best_ops();
}

}  // namespace

const Ops& ops() noexcept {
  const Ops* p = active().load(std::memory_order_acquire);
  if (p == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    p = resolve();
    active().store(p, std::memory_order_release);
  }
  return *p;
}

void set_force_scalar(bool force) noexcept {
  active().store(force ? &kScalarOps : best_ops(), std::memory_order_release);
}

const char* tier_name() noexcept { return ops().name; }

}  // namespace spsta::stats::simd
