/// \file compare.hpp
/// Distribution-distance metrics between piecewise densities: the
/// quantitative "same shape?" checks behind the t.o.p.-vs-Monte-Carlo
/// validations (moments alone can't distinguish a skewed MAX output from
/// a Gaussian with matched mean/sigma — these can).

#pragma once

#include "stats/piecewise.hpp"

namespace spsta::stats {

/// Kolmogorov–Smirnov distance: max_t |F_a(t) - F_b(t)| over both grids'
/// union. Operands are normalized first; two zero-mass densities compare
/// equal (0).
[[nodiscard]] double ks_distance(const PiecewiseDensity& a, const PiecewiseDensity& b);

/// 1-Wasserstein (earth mover's) distance: integral |F_a - F_b| dt over
/// the union grid, operands normalized. For a pure shift of d time units
/// this equals |d|.
[[nodiscard]] double wasserstein_distance(const PiecewiseDensity& a,
                                          const PiecewiseDensity& b);

/// Total variation distance: 0.5 * integral |f_a - f_b| dt, operands
/// normalized. 0 = identical, 1 = disjoint supports.
[[nodiscard]] double total_variation_distance(const PiecewiseDensity& a,
                                              const PiecewiseDensity& b);

}  // namespace spsta::stats
