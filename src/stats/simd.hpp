/// \file simd.hpp
/// Runtime-dispatched SIMD kernels for the numeric layer's fused span
/// loops (DESIGN.md §16): radix-2 FFT butterflies, scaled copies, axpy
/// accumulation, and the CDF-product MAX/MIN folds.
///
/// Dispatch model: one function table (`Ops`) per tier — scalar always,
/// AVX2 on x86-64 when the CPU reports it, NEON on aarch64 — resolved
/// once per process from `SPSTA_FORCE_SCALAR` plus CPU detection, and
/// switchable at runtime through `set_force_scalar()` for tests and
/// benchmarks.
///
/// Bit-identity contract: every vector implementation computes the SAME
/// per-element operation DAG as the scalar reference — multiplies, adds
/// and subtracts only, no fused multiply-add, no reassociation, no
/// cross-lane reductions — so scalar and SIMD tiers produce bit-identical
/// doubles for identical inputs. The scalar reference is compiled with
/// contraction disabled (see src/CMakeLists.txt) so the compiler cannot
/// fuse what the intrinsics keep separate. determinism_test and
/// stats_conv_kernels_test assert the equality exactly.

#pragma once

#include <cstddef>

namespace spsta::stats::simd {

/// The dispatchable span kernels. All pointers are non-null; regions do
/// not alias unless a parameter is documented in-place. `n`/`half` may be
/// any size — implementations handle tails internally.
struct Ops {
  const char* name;  ///< "scalar", "avx2", or "neon"

  /// One radix-2 FFT stage's butterflies over one block of `half` pairs,
  /// with unit-stride twiddles (the per-stage tables in
  /// `Workspace::FftPlan`). For each k < half:
  ///   t  = (vr[k], vi[k]) * (wr[k], sign * wi[k])
  ///   (vr[k], vi[k]) = (ur[k], ui[k]) - t
  ///   (ur[k], ui[k]) += t
  /// `sign` is +1 for the forward transform, -1 for the inverse.
  void (*butterfly)(double* ur, double* ui, double* vr, double* vi,
                    const double* wr, const double* wi, double sign,
                    std::size_t half);

  /// out[i] = a[i] * s
  void (*mul_scale)(const double* a, double s, double* out, std::size_t n);

  /// out[i] += w * a[i]
  void (*axpy)(const double* a, double w, double* out, std::size_t n);

  /// Independent-MAX CDF fold (in place on f):
  ///   f[i] = f[i] * cb[i] + c[i] * ca[i]
  void (*cdf_mix_max)(double* f, const double* c, const double* ca,
                      const double* cb, std::size_t n);

  /// Independent-MIN CDF fold (in place on f):
  ///   f[i] = f[i] * (1 - cb[i]) + c[i] * (1 - ca[i])
  void (*cdf_mix_min)(double* f, const double* c, const double* ca,
                      const double* cb, std::size_t n);
};

/// The active tier. First call resolves it: `SPSTA_FORCE_SCALAR` set to a
/// non-empty value other than "0" pins the scalar reference; otherwise the
/// best tier the CPU supports wins.
[[nodiscard]] const Ops& ops() noexcept;

/// Runtime override for tests/benchmarks: `true` pins the scalar tier,
/// `false` restores the auto-detected best tier (regardless of the
/// environment knob). Takes effect for subsequent `ops()` calls; not
/// intended to race in-flight kernels.
void set_force_scalar(bool force) noexcept;

/// Name of the tier `ops()` currently returns.
[[nodiscard]] const char* tier_name() noexcept;

}  // namespace spsta::stats::simd
