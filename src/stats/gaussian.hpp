/// \file gaussian.hpp
/// A Gaussian random-variable value type and the SSTA SUM / Clark MAX/MIN
/// operations on it (paper Sec. 2.1, Eq. 2 and Eq. 4).

#pragma once

namespace spsta::stats {

/// A (possibly degenerate) Gaussian random variable described by its first
/// two moments. `var == 0` denotes a deterministic value.
struct Gaussian {
  double mean = 0.0;
  double var = 0.0;

  [[nodiscard]] double stddev() const noexcept;

  /// Density at \p x; a degenerate Gaussian returns +inf at its mean.
  [[nodiscard]] double pdf(double x) const noexcept;
  /// Cumulative probability at \p x.
  [[nodiscard]] double cdf(double x) const noexcept;
  /// Quantile for p in (0,1).
  [[nodiscard]] double quantile(double p) const noexcept;

  friend bool operator==(const Gaussian&, const Gaussian&) = default;
};

/// SSTA SUM (paper Eq. 2): the distribution of `a + b` where `a` and `b`
/// are jointly Gaussian with covariance \p cov.
[[nodiscard]] Gaussian sum(const Gaussian& a, const Gaussian& b, double cov = 0.0) noexcept;

/// Scale-and-shift: the distribution of `k*a + c`.
[[nodiscard]] Gaussian affine(const Gaussian& a, double k, double c) noexcept;

/// Result of a Clark MAX/MIN: matched moments plus the "tightness"
/// probability Q = P(first operand is the larger/smaller one).
struct ClarkResult {
  Gaussian moments;
  double tightness = 0.5;
};

/// Clark's moment matching for MAX(a, b) of jointly Gaussian operands with
/// covariance \p cov (paper Eq. 4). Handles the degenerate theta == 0 case
/// (perfectly correlated equal-variance operands) exactly.
[[nodiscard]] ClarkResult clark_max(const Gaussian& a, const Gaussian& b, double cov = 0.0) noexcept;

/// Clark's moment matching for MIN(a, b) via MIN(a,b) = -MAX(-a,-b).
/// The returned tightness is P(a < b), i.e. P(a is the minimum).
[[nodiscard]] ClarkResult clark_min(const Gaussian& a, const Gaussian& b, double cov = 0.0) noexcept;

/// Exact mean of MAX(a,b) for *independent* Gaussians, used as an oracle in
/// tests (for independent operands Clark is exact in the first two moments).
[[nodiscard]] double exact_max_mean(const Gaussian& a, const Gaussian& b) noexcept;

}  // namespace spsta::stats
