/// \file welford.hpp
/// Numerically stable running-moment accumulators (Welford / Pébay update
/// formulas) used by the Monte Carlo simulator to collect arrival-time
/// statistics, plus a two-variable covariance accumulator.

#pragma once

#include <cstdint>

namespace spsta::stats {

/// Single-variable running moments up to fourth order.
class RunningMoments {
 public:
  /// Incorporates one observation.
  void add(double x) noexcept;
  /// Merges another accumulator (parallel/chunked accumulation).
  void merge(const RunningMoments& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance (divides by n); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divides by n-1); 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standardized third moment; 0 if the variance vanishes.
  [[nodiscard]] double skewness() const noexcept;
  /// Excess kurtosis (normal == 0); 0 if the variance vanishes.
  [[nodiscard]] double excess_kurtosis() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

/// Running covariance between paired observations (x, y).
class RunningCovariance {
 public:
  void add(double x, double y) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean_x() const noexcept { return mean_x_; }
  [[nodiscard]] double mean_y() const noexcept { return mean_y_; }
  /// Population covariance; 0 for fewer than 2 samples.
  [[nodiscard]] double covariance() const noexcept;
  /// Pearson correlation; 0 if either variance vanishes.
  [[nodiscard]] double correlation() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2x_ = 0.0;
  double m2y_ = 0.0;
  double cxy_ = 0.0;
};

}  // namespace spsta::stats
