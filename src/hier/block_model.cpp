#include "hier/block_model.hpp"

#include <cstring>
#include <stdexcept>

namespace spsta::hier {

std::uint64_t hash_bytes(const void* data, std::size_t size, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) noexcept {
  return hash_bytes(&v, sizeof v, h);
}

std::uint64_t hash_double(std::uint64_t h, double v) noexcept {
  // Bit pattern, not value: the signature must distinguish -0.0/0.0 the
  // same way the engines' arithmetic would not — exactness over cleverness.
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return hash_u64(h, bits);
}

}  // namespace

std::uint64_t model_signature(std::uint64_t block_hash, Engine engine,
                              const core::SpstaOptions& options,
                              std::span<const netlist::SourceStats> normalized_sources) noexcept {
  std::uint64_t h = hash_u64(0xcbf29ce484222325ull, block_hash);
  h = hash_u64(h, static_cast<std::uint64_t>(engine));
  if (engine == Engine::SpstaNumeric) {
    h = hash_double(h, options.grid_dt);
    h = hash_double(h, options.grid_pad_sigma);
    h = hash_u64(h, options.max_grid_points);
  }
  for (const netlist::SourceStats& s : normalized_sources) {
    h = hash_double(h, s.probs.p0);
    h = hash_double(h, s.probs.p1);
    h = hash_double(h, s.probs.pr);
    h = hash_double(h, s.probs.pf);
    h = hash_double(h, s.rise_arrival.mean);
    h = hash_double(h, s.rise_arrival.var);
    h = hash_double(h, s.fall_arrival.mean);
    h = hash_double(h, s.fall_arrival.var);
  }
  return h;
}

BlockTimingModel extract_block_model(const core::CompiledDesign& plan, Engine engine,
                                     std::span<const netlist::SourceStats> sources,
                                     const core::SpstaOptions& options) {
  BlockTimingModel model;
  const auto& outputs = plan.design().primary_outputs();
  model.outputs.reserve(outputs.size());
  switch (engine) {
    case Engine::SpstaMoment: {
      const core::SpstaResult result = core::run_spsta_moment(plan, sources, options);
      for (const netlist::NodeId out : outputs) {
        const core::NodeTop& top = result.node[out];
        model.outputs.push_back({top.probs, top.rise, top.fall});
      }
      break;
    }
    case Engine::SpstaNumeric: {
      const core::SpstaNumericResult result = core::run_spsta_numeric(plan, sources, options);
      for (const netlist::NodeId out : outputs) {
        const core::NodeTopDensity& top = result.node[out];
        PortTop port;
        port.probs = top.probs;
        // Boundary Gaussianization: the density's (mass, mean, variance)
        // is all that crosses the interface — the kNumericAbsEps term of
        // the accuracy contract.
        port.rise.mass = top.rise.mass();
        if (port.rise.mass > 0.0) {
          port.rise.arrival = {top.rise.mean(), top.rise.variance()};
        }
        port.fall.mass = top.fall.mass();
        if (port.fall.mass > 0.0) {
          port.fall.arrival = {top.fall.mean(), top.fall.variance()};
        }
        model.outputs.push_back(std::move(port));
      }
      break;
    }
    default:
      throw std::invalid_argument(
          "extract_block_model: only spsta_moment and spsta_numeric extract block models");
  }
  return model;
}

}  // namespace spsta::hier
