/// \file block_model.hpp
/// Block timing-model extraction (DESIGN.md §14): the compact per-port
/// abstraction a hierarchical analysis passes between blocks instead of
/// flattening, after "Timing Model Extraction for Sequential Circuits
/// Considering Process Variations" (Li/Chen/Schlichtmann — see PAPERS.md).
///
/// A BlockTimingModel is one engine run over a block's CompiledDesign,
/// keeping only the primary-output boundary state: four-value signal
/// probabilities plus rise/fall transition t.o.p. summaries (mass, mean,
/// variance). Numeric-engine runs are summarized to the same moment form
/// at the boundary (mass/mean/variance of the piecewise density).
///
/// Accuracy contract vs flat analysis (asserted by tests/hier_model_test):
///  * Signal probabilities and transition masses compose EXACTLY: block
///    output probabilities depend only on block input probabilities, and
///    the boundary hand-off is the same (probs, mass=pr/pf) seeding a flat
///    source performs. Differences are limited to the one normalized()
///    renormalization at each boundary — within kProbEps.
///  * Moment-engine arrival mean/variance also compose exactly in the
///    mathematical sense: the engine's source seeding carries precisely
///    (mass, mean, var), which is what the model keeps. Differences are
///    floating-point only (reassociation + the mean-shift reuse below) —
///    within kMomentRelEps relative.
///  * Third central moments are NOT carried across boundaries (the flat
///    moment engine seeds sources with zero third moment and never feeds
///    it back into downstream mean/var, so only reported skewness at
///    block-internal depth is affected, not composed mean/var).
///  * Numeric-engine compositions Gaussianize each boundary (density ->
///    moment summary -> Gaussian source). This is a real approximation;
///    the declared bound on composed-vs-flat endpoint mean/stddev is
///    kNumericAbsEps in the analysis' time unit (one mean gate delay).
///
/// Models are reusable across arrival shifts: extraction normalizes input
/// arrival means by their minimum (base shift), so a block fed the same
/// relative arrival pattern at a different absolute time hits the same
/// model — MAX/MIN and weighted sums commute with a common time shift.
/// Blocks containing DFFs opt out (DFF sources carry absolute stats).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/compiled_design.hpp"
#include "core/spsta.hpp"
#include "netlist/four_value.hpp"
#include "spsta_api.hpp"

namespace spsta::hier {

/// Boundary state of one port: what crosses a block interface.
struct PortTop {
  netlist::FourValueProbs probs;
  core::TransitionTop rise;
  core::TransitionTop fall;
};

/// Declared composed-vs-flat tolerance on signal probabilities and
/// transition masses (renormalization rounding only).
inline constexpr double kProbEps = 1e-12;
/// Declared relative tolerance on moment-engine composed arrival mean /
/// stddev (floating-point reassociation only).
inline constexpr double kMomentRelEps = 1e-9;
/// Declared absolute tolerance on numeric-engine composed endpoint arrival
/// mean / stddev, in time units (boundary Gaussianization error).
inline constexpr double kNumericAbsEps = 0.1;

/// Compact port-to-port timing abstraction of one analyzed block
/// configuration (block x engine x options x normalized input stats).
struct BlockTimingModel {
  std::uint64_t signature = 0;  ///< the cache key this model was built under
  /// Boundary state per block primary output, in primary_outputs() order.
  /// Arrival means are relative to the extraction's base shift; apply()
  /// adds the instance's own shift back.
  std::vector<PortTop> outputs;

  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(BlockTimingModel) + outputs.size() * sizeof(PortTop);
  }
};

/// FNV-1a over arbitrary bytes; hier's content/signature hash primitive
/// (same constants as the service's fnv1a64 — stable across platforms).
[[nodiscard]] std::uint64_t hash_bytes(const void* data, std::size_t size,
                                       std::uint64_t seed = 0xcbf29ce484222325ull) noexcept;

/// The exact-match model cache key: block content hash, engine, the
/// engine's grid options (numeric only), and the bit patterns of every
/// normalized source statistic. Bitwise matching keeps a cache hit
/// bit-identical to re-extraction — the same philosophy as the exact-key
/// switch-pattern cache.
[[nodiscard]] std::uint64_t model_signature(
    std::uint64_t block_hash, Engine engine, const core::SpstaOptions& options,
    std::span<const netlist::SourceStats> normalized_sources) noexcept;

/// Extracts a block model: one engine run (moment or numeric) over the
/// compiled block plan with the given per-source stats. \p engine must be
/// Engine::SpstaMoment or Engine::SpstaNumeric; anything else throws
/// std::invalid_argument.
[[nodiscard]] BlockTimingModel extract_block_model(
    const core::CompiledDesign& plan, Engine engine,
    std::span<const netlist::SourceStats> sources, const core::SpstaOptions& options);

}  // namespace spsta::hier
