/// \file block_cache.hpp
/// The block-model cache and the compiled-block library — the two sharing
/// layers that make hierarchical analysis cheap at scale (DESIGN.md §14):
///
///  * BlockLibrary interns compiled blocks by content hash, so a daemon
///    serving many variants of a design compiles each unique block netlist
///    ONCE (the hierarchical counterpart of the service's session/plan
///    store, §13).
///  * BlockModelCache holds extracted BlockTimingModels keyed by the exact
///    model_signature (block x engine x options x normalized input stats),
///    LRU-evicted against an entry/byte budget like the session store.
///
/// Both are internally synchronized and safe to share across sessions and
/// worker threads. Counters surface through obs ("hier.block_cache.*") and
/// the service `stats` command.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/compiled_design.hpp"
#include "hier/block_model.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/netlist.hpp"

namespace spsta::hier {

/// Entry/byte budget for BlockModelCache eviction. 0 = unlimited.
struct BlockCacheBudget {
  std::size_t max_models = 0;
  std::size_t max_bytes = 0;
};

/// LRU cache of extracted block timing models, keyed by model_signature.
/// Exact-bitwise keys keep a hit bit-identical to re-extraction.
class BlockModelCache {
 public:
  /// The model for \p signature, refreshing its LRU position; nullptr on
  /// miss. Counts a hit or miss.
  [[nodiscard]] std::shared_ptr<const BlockTimingModel> find(std::uint64_t signature);

  /// Inserts (or refreshes) a model under model->signature and enforces
  /// the budget. Concurrent extractors of the same signature may both
  /// insert; the models are bit-identical, so last-writer-wins is benign.
  void insert(std::shared_ptr<const BlockTimingModel> model);

  void set_budget(BlockCacheBudget budget);
  [[nodiscard]] BlockCacheBudget budget() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t approx_bytes() const;
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  void enforce_budget_locked();

  mutable std::mutex mutex_;
  struct Entry {
    std::shared_ptr<const BlockTimingModel> model;
    std::list<std::uint64_t>::iterator lru;
  };
  std::unordered_map<std::uint64_t, Entry> models_;
  std::list<std::uint64_t> lru_;  ///< front = least recently used
  BlockCacheBudget budget_;
  std::size_t bytes_ = 0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// One interned block: the netlist, its delay model and the CompiledDesign
/// plan built over them. Heap-pinned (shared_ptr) so the plan's reference
/// to the netlist stays valid for the entry's whole lifetime.
struct CompiledBlock {
  netlist::Netlist design;
  netlist::DelayModel delays;
  std::unique_ptr<core::CompiledDesign> plan;
  std::uint64_t hash = 0;  ///< plan content hash (netlist + delays)

  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return 4096 + design.node_count() * 1024;
  }
};

/// Content-hash-interned compiled blocks: two hierarchies (or two service
/// sessions) whose blocks serialize identically share ONE plan and one
/// switch-pattern cache. Never evicts on its own — entries die when the
/// last hierarchy using them releases its shared_ptr.
class BlockLibrary {
 public:
  /// Interns \p block under its serialized content (unit delay model).
  /// Compiles only on first sight of the content.
  [[nodiscard]] std::shared_ptr<const CompiledBlock> intern(const netlist::Netlist& block);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  /// Weak entries: the library never keeps a block alive by itself.
  std::unordered_map<std::uint64_t, std::weak_ptr<const CompiledBlock>> blocks_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace spsta::hier
