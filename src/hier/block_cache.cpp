#include "hier/block_cache.hpp"

#include "netlist/bench_io.hpp"
#include "obs/metrics.hpp"

namespace spsta::hier {

std::shared_ptr<const BlockTimingModel> BlockModelCache::find(std::uint64_t signature) {
  std::shared_ptr<const BlockTimingModel> found;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(signature);
    if (it != models_.end()) {
      lru_.splice(lru_.end(), lru_, it->second.lru);  // most recently used
      found = it->second.model;
    }
  }
  if (found) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("hier.block_cache.hits").add();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("hier.block_cache.misses").add();
  }
  return found;
}

void BlockModelCache::insert(std::shared_ptr<const BlockTimingModel> model) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t signature = model->signature;
  const auto it = models_.find(signature);
  if (it != models_.end()) {
    // Concurrent extraction raced us; the models are bit-identical, keep
    // the newcomer and refresh recency.
    bytes_ -= it->second.model->approx_bytes();
    bytes_ += model->approx_bytes();
    it->second.model = std::move(model);
    lru_.splice(lru_.end(), lru_, it->second.lru);
  } else {
    const auto lru = lru_.insert(lru_.end(), signature);
    bytes_ += model->approx_bytes();
    models_.emplace(signature, Entry{std::move(model), lru});
  }
  enforce_budget_locked();
  obs::registry().gauge("hier.block_cache.bytes").set(static_cast<double>(bytes_));
}

void BlockModelCache::set_budget(BlockCacheBudget budget) {
  const std::lock_guard<std::mutex> lock(mutex_);
  budget_ = budget;
  enforce_budget_locked();
}

BlockCacheBudget BlockModelCache::budget() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

std::size_t BlockModelCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

std::size_t BlockModelCache::approx_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void BlockModelCache::enforce_budget_locked() {
  const auto over = [&] {
    return (budget_.max_models != 0 && models_.size() > budget_.max_models) ||
           (budget_.max_bytes != 0 && bytes_ > budget_.max_bytes);
  };
  // Never evict the most recently touched entry, even over budget — the
  // same keep-the-trigger rule as the session store.
  while (over() && models_.size() > 1) {
    const std::uint64_t victim = lru_.front();
    lru_.pop_front();
    const auto it = models_.find(victim);
    bytes_ -= it->second.model->approx_bytes();
    models_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("hier.block_cache.evictions").add();
  }
}

std::shared_ptr<const CompiledBlock> BlockLibrary::intern(const netlist::Netlist& block) {
  // Content key: the canonical serialized form, independent of how the
  // netlist object was built (parser, generator, flatten).
  const std::string text = netlist::write_bench(block);
  const std::uint64_t key = hash_bytes(text.data(), text.size());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      if (auto alive = it->second.lock()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs::registry().counter("hier.block_library.hits").add();
        return alive;
      }
    }
  }

  // Compile outside the lock: interning must not stall other hierarchies.
  netlist::Netlist design = block;
  netlist::DelayModel delays = netlist::DelayModel::unit(design);
  auto entry = std::make_shared<CompiledBlock>(
      CompiledBlock{std::move(design), std::move(delays), nullptr, 0});
  entry->plan = std::make_unique<core::CompiledDesign>(entry->design, entry->delays);
  entry->hash = entry->plan->content_hash();

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    if (auto alive = it->second.lock()) {
      // A concurrent intern won the compile race; share its plan (and its
      // warm pattern cache) rather than keeping a duplicate.
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::registry().counter("hier.block_library.hits").add();
      return alive;
    }
  }
  blocks_[key] = entry;
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter("hier.block_library.compiles").add();
  return entry;
}

std::size_t BlockLibrary::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size();
}

}  // namespace spsta::hier
