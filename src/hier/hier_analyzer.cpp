#include "hier/hier_analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace spsta::hier {

const PortTop* HierReport::find(std::string_view name) const {
  const auto it = std::find(signal_names.begin(), signal_names.end(), name);
  if (it == signal_names.end()) return nullptr;
  return &signals[static_cast<std::size_t>(it - signal_names.begin())];
}

HierAnalyzer::HierAnalyzer(netlist::HierDesign design, HierAnalyzerOptions options)
    : design_(std::move(design)), options_(options) {
  design_.validate();
  if (options_.shared_models != nullptr) {
    models_ = options_.shared_models;
  } else {
    own_models_ = std::make_unique<BlockModelCache>();
    models_ = own_models_.get();
  }
  if (options_.shared_blocks != nullptr) {
    library_ = options_.shared_blocks;
  } else {
    own_library_ = std::make_unique<BlockLibrary>();
    library_ = own_library_.get();
  }

  // Compile (or re-find) every unique block through the library.
  compiled_.reserve(design_.blocks().size());
  for (const netlist::Netlist& block : design_.blocks()) {
    compiled_.push_back(library_->intern(block));
  }

  topo_ = design_.topo_instances();

  // Top-level signal layout: top inputs first, then each instance's output
  // ports in instance declaration order.
  const auto& instances = design_.instances();
  signal_names_ = design_.top_inputs();
  instance_output_base_.resize(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const netlist::Netlist& block = design_.blocks()[instances[i].block];
    instance_output_base_[i] = signal_names_.size();
    for (const netlist::NodeId out : block.primary_outputs()) {
      signal_names_.push_back(instances[i].name + "." + block.node(out).name);
    }
  }
  signal_count_ = signal_names_.size();

  instance_inputs_.resize(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    instance_inputs_[i].reserve(instances[i].inputs.size());
    for (const std::string& sig : instances[i].inputs) {
      const auto ref = design_.resolve(sig);  // validate() guarantees success
      instance_inputs_[i].push_back(ref->is_top_input()
                                        ? ref->index
                                        : instance_output_base_[ref->instance] + ref->index);
    }
  }
  output_signals_.reserve(design_.top_outputs().size());
  for (const std::string& out : design_.top_outputs()) {
    const auto ref = design_.resolve(out);
    output_signals_.push_back(ref->is_top_input()
                                  ? ref->index
                                  : instance_output_base_[ref->instance] + ref->index);
  }
}

void HierAnalyzer::validate(const AnalysisRequest& request) {
  Analyzer::validate(request);
  if (request.engine != Engine::SpstaMoment && request.engine != Engine::SpstaNumeric) {
    throw std::invalid_argument(
        "hier: only spsta_moment and spsta_numeric support block-model composition");
  }
}

std::size_t HierAnalyzer::approx_bytes() const noexcept {
  std::size_t total = 4096;
  for (const auto& block : compiled_) total += block->approx_bytes();
  total += signal_count_ * (sizeof(PortTop) + 32);
  total += design_.instances().size() * 64;
  return total;
}

HierReport HierAnalyzer::run(const AnalysisRequest& request) {
  const netlist::SourceStats scenario = netlist::scenario_I();
  return run(request, std::span<const netlist::SourceStats>(&scenario, 1));
}

HierReport HierAnalyzer::run(const AnalysisRequest& request,
                             std::span<const netlist::SourceStats> top_sources) {
  validate(request);
  if (top_sources.size() != 1 && top_sources.size() != design_.top_inputs().size()) {
    throw std::invalid_argument(
        "hier: top_sources must have one entry (broadcast) or one per top input");
  }
  core::SpstaOptions opts;
  opts.threads = request.threads.value_or(options_.threads);
  if (request.grid_dt) opts.grid_dt = *request.grid_dt;
  if (request.grid_pad_sigma) opts.grid_pad_sigma = *request.grid_pad_sigma;
  if (request.max_grid_points) opts.max_grid_points = *request.max_grid_points;

  const auto t0 = std::chrono::steady_clock::now();
  HierReport report;
  report.engine = request.engine;
  report.signal_names = signal_names_;
  report.signals.assign(signal_count_, PortTop{});
  report.outputs = output_signals_;

  // Seed top inputs exactly the way the flat engines seed timing sources:
  // normalized probs, transition masses = pr/pf, source arrival Gaussians.
  for (std::size_t t = 0; t < design_.top_inputs().size(); ++t) {
    const netlist::SourceStats& st =
        top_sources.size() == 1 ? top_sources[0] : top_sources[t];
    PortTop& top = report.signals[t];
    top.probs = st.probs.normalized();
    top.rise = {top.probs.pr, st.rise_arrival, 0.0};
    top.fall = {top.probs.pf, st.fall_arrival, 0.0};
  }

  std::vector<netlist::SourceStats> sources;
  for (const std::size_t i : topo_) {
    const netlist::HierInstance& inst = design_.instances()[i];
    const CompiledBlock& block = *compiled_[inst.block];
    const std::size_t ports = block.design.primary_inputs().size();
    const std::size_t nsources = block.plan->timing_sources().size();

    // Block sources are primary inputs first, then DFF outputs (the
    // Netlist::timing_sources order the engines require).
    sources.assign(nsources, top_sources[0]);
    for (std::size_t j = 0; j < ports; ++j) {
      const PortTop& driver = report.signals[instance_inputs_[i][j]];
      sources[j].probs = driver.probs;
      sources[j].rise_arrival = driver.rise.arrival;
      sources[j].fall_arrival = driver.fall.arrival;
    }

    // Mean-shift normalization (moment engine, register-free blocks): the
    // weighted-sum recursion and Clark MAX/MIN commute with a common time
    // shift, so the model is extracted at relative arrivals and shifted
    // back — one cache entry serves every congruent instance.
    double shift = 0.0;
    const bool shiftable =
        request.engine == Engine::SpstaMoment && block.design.dffs().empty();
    if (shiftable) {
      bool any = false;
      for (std::size_t j = 0; j < ports; ++j) {
        const netlist::SourceStats& s = sources[j];
        if (s.probs.pr > 0.0) {
          shift = any ? std::min(shift, s.rise_arrival.mean) : s.rise_arrival.mean;
          any = true;
        }
        if (s.probs.pf > 0.0) {
          shift = any ? std::min(shift, s.fall_arrival.mean) : s.fall_arrival.mean;
          any = true;
        }
      }
      if (shift != 0.0) {
        for (std::size_t j = 0; j < ports; ++j) {
          sources[j].rise_arrival.mean -= shift;
          sources[j].fall_arrival.mean -= shift;
        }
      }
    }

    const std::uint64_t signature =
        model_signature(block.hash, request.engine, opts, sources);
    std::shared_ptr<const BlockTimingModel> model = models_->find(signature);
    if (model == nullptr) {
      auto fresh = std::make_shared<BlockTimingModel>(
          extract_block_model(*block.plan, request.engine, sources, opts));
      fresh->signature = signature;
      models_->insert(fresh);
      model = std::move(fresh);
      ++report.models_extracted;
    } else {
      ++report.model_cache_hits;
    }

    const std::size_t base = instance_output_base_[i];
    for (std::size_t p = 0; p < model->outputs.size(); ++p) {
      PortTop out = model->outputs[p];
      if (shift != 0.0) {
        out.rise.arrival.mean += shift;
        out.fall.arrival.mean += shift;
      }
      report.signals[base + p] = std::move(out);
    }
  }

  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  obs::registry().counter("hier.analyses").add();
  return report;
}

}  // namespace spsta::hier
