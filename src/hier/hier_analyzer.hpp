/// \file hier_analyzer.hpp
/// Hierarchical analysis by block-model composition (DESIGN.md §14): the
/// counterpart of the flat `Analyzer` for a `HierDesign`. Instead of
/// flattening, each instance is analyzed through its block's compiled plan
/// exactly once per distinct boundary condition — every further instance
/// with the same (block, engine, options, normalized input stats) is a
/// BlockModelCache hit that costs a hash lookup, not an engine run.
///
/// Composition walks instances in topological order carrying PortTop
/// boundary state per top-level signal; block inputs are seeded from the
/// driving signals' state precisely the way the flat engines seed timing
/// sources, which is what makes the composition exact for probabilities
/// and moment-engine moments (accuracy contract in block_model.hpp).
///
/// Moment-engine extractions are keyed on mean-normalized input arrivals
/// (minimum input mean subtracted), so a block seeing the same relative
/// arrival pattern later in the clock cycle reuses the same model shifted
/// — the key that collapses a regular W-wide grid level to ONE extraction.
/// Blocks containing DFFs skip normalization (register stats are absolute);
/// numeric-engine extractions are keyed absolutely (their grid choice is
/// not shift-invariant).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hier/block_cache.hpp"
#include "hier/block_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/hier.hpp"
#include "spsta_api.hpp"

namespace spsta::hier {

/// Result of one hierarchical run: boundary state for every top-level
/// signal (top inputs, then every instance output port in instance order).
struct HierReport {
  Engine engine = Engine::SpstaMoment;
  std::vector<std::string> signal_names;
  std::vector<PortTop> signals;        ///< parallel to signal_names
  std::vector<std::size_t> outputs;    ///< signal index per top output, in order
  double elapsed_seconds = 0.0;
  std::uint64_t models_extracted = 0;  ///< engine runs this analysis paid
  std::uint64_t model_cache_hits = 0;  ///< instances served from the cache

  /// Boundary state of a named signal; nullptr when unknown.
  [[nodiscard]] const PortTop* find(std::string_view name) const;
};

struct HierAnalyzerOptions {
  /// Default worker threads for block engine runs when a request leaves
  /// `threads` unset.
  unsigned threads = 1;
  /// Shared model cache (e.g. the service's process-wide one); when null
  /// the analyzer uses a private cache.
  BlockModelCache* shared_models = nullptr;
  /// Shared compiled-block library; when null a private library is used.
  BlockLibrary* shared_blocks = nullptr;
};

/// Compiled hierarchical design + composition engine. Construction interns
/// and compiles every unique block (through the library) and resolves the
/// top-level signal graph; `run` is the warm path.
class HierAnalyzer {
 public:
  explicit HierAnalyzer(netlist::HierDesign design, HierAnalyzerOptions options = {});

  [[nodiscard]] const netlist::HierDesign& design() const noexcept { return design_; }

  /// Throws std::invalid_argument unless the request is valid (Analyzer
  /// rules) AND its engine is spsta_moment or spsta_numeric — the engines
  /// block models exist for.
  static void validate(const AnalysisRequest& request);

  /// Composes the hierarchy under scenario-I statistics on every top input
  /// (and every block-internal DFF).
  [[nodiscard]] HierReport run(const AnalysisRequest& request);

  /// Composes with explicit top-input statistics: one entry broadcasts,
  /// otherwise exactly one per top input. Block-internal DFF sources
  /// receive \p top_sources[0] (use broadcast for flat-equivalence).
  [[nodiscard]] HierReport run(const AnalysisRequest& request,
                               std::span<const netlist::SourceStats> top_sources);

  /// The model cache in use (shared or private) — cache counters for
  /// stats/tests.
  [[nodiscard]] BlockModelCache& models() noexcept { return *models_; }
  [[nodiscard]] const BlockLibrary& library() const noexcept { return *library_; }

  /// Flattened-equivalent gate count (the size this design's budget/report
  /// lines should cite).
  [[nodiscard]] std::size_t expanded_gates() const noexcept {
    return design_.expanded_gate_count();
  }

  /// Resident footprint estimate: unique compiled blocks + composition
  /// tables (NOT the expanded design — that is the point).
  [[nodiscard]] std::size_t approx_bytes() const noexcept;

 private:
  netlist::HierDesign design_;
  HierAnalyzerOptions options_;

  std::unique_ptr<BlockModelCache> own_models_;
  std::unique_ptr<BlockLibrary> own_library_;
  BlockModelCache* models_ = nullptr;
  BlockLibrary* library_ = nullptr;

  std::vector<std::shared_ptr<const CompiledBlock>> compiled_;  ///< per block index
  std::vector<std::size_t> topo_;                               ///< instance order
  std::size_t signal_count_ = 0;
  std::vector<std::size_t> instance_output_base_;        ///< per instance
  std::vector<std::vector<std::size_t>> instance_inputs_;  ///< resolved signal ids
  std::vector<std::string> signal_names_;
  std::vector<std::size_t> output_signals_;  ///< per top output
};

}  // namespace spsta::hier
