#include "report/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spsta::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::string underline;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    underline += std::string(width[c], '-');
    if (c + 1 < headers_.size()) underline += "  ";
  }
  os << underline << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace spsta::report
