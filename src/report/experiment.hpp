/// \file experiment.hpp
/// The paper's Section 4 experiment pipeline, packaged so tests, examples
/// and every bench binary share one implementation: run SPSTA, SSTA and
/// N-run Monte Carlo on a circuit, report the rise/fall arrival statistics
/// at the most critical endpoint (Table 2), wall-clock runtimes (Table 3),
/// and the aggregate error metrics behind the paper's headline numbers
/// (SPSTA mean/sigma within 6.2%/18.6% vs SSTA 13.4%/64.3% of MC).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/spsta.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "spsta_api.hpp"
#include "ssta/ssta.hpp"

namespace spsta::report {

/// One Table 2 row: statistics of one transition direction at the most
/// critical endpoint.
struct DirectionRow {
  std::string circuit;
  bool rising = true;
  netlist::NodeId endpoint = netlist::kInvalidNode;
  double spsta_mu = 0.0, spsta_sigma = 0.0, spsta_p = 0.0;
  double ssta_mu = 0.0, ssta_sigma = 0.0;
  double mc_mu = 0.0, mc_sigma = 0.0, mc_p = 0.0;
};

/// One Table 3 row: wall-clock seconds per analysis.
struct RuntimeRow {
  std::string circuit;
  double spsta_seconds = 0.0;
  double ssta_seconds = 0.0;
  double mc_seconds = 0.0;
};

/// Configuration of one experiment run.
struct ExperimentConfig {
  netlist::SourceStats scenario = netlist::scenario_I();
  std::uint64_t mc_runs = 10000;
  std::uint64_t mc_seed = 1;
};

/// Everything measured on one circuit.
struct CircuitExperiment {
  DirectionRow rise;
  DirectionRow fall;
  RuntimeRow runtime;
  /// Mean absolute signal-probability error of the four-value propagation
  /// vs Monte Carlo, over all nodes (the paper's 14.28% metric).
  double signal_prob_error = 0.0;
  /// Raw engine results for further inspection.
  core::SpstaResult spsta;
  ssta::SstaResult ssta;
  mc::MonteCarloResult mc;
};

/// Runs the full pipeline through an existing `Analyzer`: every engine
/// dispatches via the unified API and reuses the analyzer's compiled plan,
/// so repeated experiments against one analyzer pay levelization and
/// pattern precomputation once. The analyzer's own delay model and source
/// statistics govern; only `config.mc_runs` / `config.mc_seed` are read.
/// The critical endpoint of each direction is the timing endpoint with the
/// largest SSTA mean arrival in that direction among endpoints the input
/// statistics actually exercise (SPSTA transition probability >= 0.5%);
/// never-transitioning endpoints are false paths with no MC statistics —
/// the exclusion the paper's Fig. 1 caption calls for. Falls back to the
/// unrestricted maximum when no endpoint clears the floor.
[[nodiscard]] CircuitExperiment run_paper_experiment(Analyzer& analyzer,
                                                     const ExperimentConfig& config);

/// Same pipeline on \p design with unit gate delays and `config.scenario`
/// on every timing source: compiles a throwaway Analyzer and delegates.
[[nodiscard]] CircuitExperiment run_paper_experiment(const netlist::Netlist& design,
                                                     const ExperimentConfig& config);

/// Aggregate mean absolute relative errors versus Monte Carlo over a set
/// of rows. Rows whose MC reference magnitude is below \p floor are
/// skipped for that metric (relative error is meaningless at ~0).
struct ErrorSummary {
  double spsta_mu = 0.0, spsta_sigma = 0.0, spsta_p = 0.0;
  double ssta_mu = 0.0, ssta_sigma = 0.0;
  std::size_t rows_mu = 0, rows_sigma = 0, rows_p = 0;
};
[[nodiscard]] ErrorSummary summarize_errors(std::span<const DirectionRow> rows,
                                            double floor = 1e-6);

}  // namespace spsta::report
