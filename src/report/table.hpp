/// \file table.hpp
/// Minimal ASCII table / CSV formatting for the benchmark harness — every
/// bench binary prints its table or figure series through this.

#pragma once

#include <string>
#include <vector>

namespace spsta::report {

/// Column-aligned plain-text table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; missing cells print empty, extra cells are rejected.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  /// Renders with a header underline and two-space column gaps.
  [[nodiscard]] std::string to_string() const;
  /// Renders as CSV (no quoting of commas needed for our content).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spsta::report
