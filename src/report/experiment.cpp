#include "report/experiment.hpp"

#include <cmath>
#include <utility>

#include "netlist/delay_model.hpp"
#include "sigprob/four_value_prop.hpp"

namespace spsta::report {

using netlist::NodeId;

namespace {

// The most critical endpoint by SSTA mean arrival, restricted to
// endpoints the input statistics actually exercise (SPSTA transition
// probability above a small floor). An endpoint that never transitions is
// a false path — exactly what the paper says STA/SSTA should exclude
// (Fig. 1 caption) — and carries no Monte Carlo arrival statistics to
// compare against. Falls back to the unrestricted maximum when nothing
// clears the floor.
NodeId critical_endpoint(const netlist::Netlist& design, const ssta::SstaResult& ssta,
                         const core::SpstaResult& spsta, bool rising,
                         double min_transition_probability = 5e-3) {
  NodeId best = netlist::kInvalidNode;
  double best_mean = -1e300;
  NodeId fallback = netlist::kInvalidNode;
  double fallback_mean = -1e300;
  for (NodeId ep : design.timing_endpoints()) {
    const stats::Gaussian& g = rising ? ssta.arrival[ep].rise : ssta.arrival[ep].fall;
    const double p = rising ? spsta.node[ep].probs.pr : spsta.node[ep].probs.pf;
    if (g.mean > fallback_mean) {
      fallback_mean = g.mean;
      fallback = ep;
    }
    if (p >= min_transition_probability && g.mean > best_mean) {
      best_mean = g.mean;
      best = ep;
    }
  }
  return best != netlist::kInvalidNode ? best : fallback;
}

}  // namespace

CircuitExperiment run_paper_experiment(Analyzer& analyzer,
                                       const ExperimentConfig& config) {
  CircuitExperiment out;
  const netlist::Netlist& design = analyzer.design();

  {
    AnalysisRequest request;
    request.engine = Engine::SpstaMoment;
    AnalysisReport report = analyzer.run(request);
    out.runtime.spsta_seconds = report.elapsed_seconds;
    out.spsta = std::get<core::SpstaResult>(std::move(report.result));
  }
  {
    AnalysisRequest request;
    request.engine = Engine::Ssta;
    AnalysisReport report = analyzer.run(request);
    out.runtime.ssta_seconds = report.elapsed_seconds;
    out.ssta = std::get<ssta::SstaResult>(std::move(report.result));
  }
  {
    AnalysisRequest request;
    request.engine = Engine::Mc;
    request.runs = config.mc_runs;
    request.seed = config.mc_seed;
    AnalysisReport report = analyzer.run(request);
    out.runtime.mc_seconds = report.elapsed_seconds;
    out.mc = std::get<mc::MonteCarloResult>(std::move(report.result));
  }

  out.runtime.circuit = design.name();

  for (const bool rising : {true, false}) {
    DirectionRow& row = rising ? out.rise : out.fall;
    row.circuit = design.name();
    row.rising = rising;
    const NodeId ep = critical_endpoint(design, out.ssta, out.spsta, rising);
    row.endpoint = ep;
    if (ep == netlist::kInvalidNode) continue;

    const core::NodeTop& sp = out.spsta.node[ep];
    const core::TransitionTop& top = rising ? sp.rise : sp.fall;
    row.spsta_mu = top.arrival.mean;
    row.spsta_sigma = top.arrival.stddev();
    row.spsta_p = rising ? sp.probs.pr : sp.probs.pf;

    const stats::Gaussian& sa = rising ? out.ssta.arrival[ep].rise : out.ssta.arrival[ep].fall;
    row.ssta_mu = sa.mean;
    row.ssta_sigma = sa.stddev();

    const mc::NodeEstimate& est = out.mc.node[ep];
    const stats::RunningMoments& m = rising ? est.rise_time : est.fall_time;
    row.mc_mu = m.mean();
    row.mc_sigma = m.stddev();
    row.mc_p = rising ? est.rise_probability() : est.fall_probability();
  }

  // Signal-probability accuracy: mean absolute error of SPSTA's final-one
  // probability vs the Monte Carlo estimate, over all combinational nodes.
  double err = 0.0;
  std::size_t count = 0;
  for (NodeId id = 0; id < design.node_count(); ++id) {
    if (!netlist::is_combinational(design.node(id).type)) continue;
    const double sp = out.spsta.node[id].probs.final_one();
    const double mc_p = out.mc.node[id].probs().final_one();
    err += std::abs(sp - mc_p);
    ++count;
  }
  out.signal_prob_error = count > 0 ? err / static_cast<double>(count) : 0.0;
  return out;
}

CircuitExperiment run_paper_experiment(const netlist::Netlist& design,
                                       const ExperimentConfig& config) {
  Analyzer analyzer(design, netlist::DelayModel::unit(design), {config.scenario});
  return run_paper_experiment(analyzer, config);
}

ErrorSummary summarize_errors(std::span<const DirectionRow> rows, double floor) {
  ErrorSummary s;
  for (const DirectionRow& r : rows) {
    if (std::abs(r.mc_mu) > floor) {
      s.spsta_mu += std::abs(r.spsta_mu - r.mc_mu) / std::abs(r.mc_mu);
      s.ssta_mu += std::abs(r.ssta_mu - r.mc_mu) / std::abs(r.mc_mu);
      ++s.rows_mu;
    }
    if (std::abs(r.mc_sigma) > floor) {
      s.spsta_sigma += std::abs(r.spsta_sigma - r.mc_sigma) / r.mc_sigma;
      s.ssta_sigma += std::abs(r.ssta_sigma - r.mc_sigma) / r.mc_sigma;
      ++s.rows_sigma;
    }
    if (std::abs(r.mc_p) > floor) {
      s.spsta_p += std::abs(r.spsta_p - r.mc_p) / r.mc_p;
      ++s.rows_p;
    }
  }
  if (s.rows_mu) {
    s.spsta_mu /= static_cast<double>(s.rows_mu);
    s.ssta_mu /= static_cast<double>(s.rows_mu);
  }
  if (s.rows_sigma) {
    s.spsta_sigma /= static_cast<double>(s.rows_sigma);
    s.ssta_sigma /= static_cast<double>(s.rows_sigma);
  }
  if (s.rows_p) s.spsta_p /= static_cast<double>(s.rows_p);
  return s;
}

}  // namespace spsta::report
