#include "report/experiment.hpp"

#include <chrono>
#include <cmath>

#include "netlist/delay_model.hpp"
#include "sigprob/four_value_prop.hpp"

namespace spsta::report {

using netlist::NodeId;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// The most critical endpoint by SSTA mean arrival, restricted to
// endpoints the input statistics actually exercise (SPSTA transition
// probability above a small floor). An endpoint that never transitions is
// a false path — exactly what the paper says STA/SSTA should exclude
// (Fig. 1 caption) — and carries no Monte Carlo arrival statistics to
// compare against. Falls back to the unrestricted maximum when nothing
// clears the floor.
NodeId critical_endpoint(const netlist::Netlist& design, const ssta::SstaResult& ssta,
                         const core::SpstaResult& spsta, bool rising,
                         double min_transition_probability = 5e-3) {
  NodeId best = netlist::kInvalidNode;
  double best_mean = -1e300;
  NodeId fallback = netlist::kInvalidNode;
  double fallback_mean = -1e300;
  for (NodeId ep : design.timing_endpoints()) {
    const stats::Gaussian& g = rising ? ssta.arrival[ep].rise : ssta.arrival[ep].fall;
    const double p = rising ? spsta.node[ep].probs.pr : spsta.node[ep].probs.pf;
    if (g.mean > fallback_mean) {
      fallback_mean = g.mean;
      fallback = ep;
    }
    if (p >= min_transition_probability && g.mean > best_mean) {
      best_mean = g.mean;
      best = ep;
    }
  }
  return best != netlist::kInvalidNode ? best : fallback;
}

}  // namespace

CircuitExperiment run_paper_experiment(const netlist::Netlist& design,
                                       const ExperimentConfig& config) {
  CircuitExperiment out;
  const netlist::DelayModel delays = netlist::DelayModel::unit(design);
  const std::vector<netlist::SourceStats> stats_vec{config.scenario};

  auto t0 = std::chrono::steady_clock::now();
  out.spsta = core::run_spsta_moment(design, delays, stats_vec);
  out.runtime.spsta_seconds = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  out.ssta = ssta::run_ssta(design, delays, stats_vec);
  out.runtime.ssta_seconds = seconds_since(t0);

  mc::MonteCarloConfig mc_config;
  mc_config.runs = config.mc_runs;
  mc_config.seed = config.mc_seed;
  t0 = std::chrono::steady_clock::now();
  out.mc = mc::run_monte_carlo(design, delays, stats_vec, mc_config);
  out.runtime.mc_seconds = seconds_since(t0);

  out.runtime.circuit = design.name();

  for (const bool rising : {true, false}) {
    DirectionRow& row = rising ? out.rise : out.fall;
    row.circuit = design.name();
    row.rising = rising;
    const NodeId ep = critical_endpoint(design, out.ssta, out.spsta, rising);
    row.endpoint = ep;
    if (ep == netlist::kInvalidNode) continue;

    const core::NodeTop& sp = out.spsta.node[ep];
    const core::TransitionTop& top = rising ? sp.rise : sp.fall;
    row.spsta_mu = top.arrival.mean;
    row.spsta_sigma = top.arrival.stddev();
    row.spsta_p = rising ? sp.probs.pr : sp.probs.pf;

    const stats::Gaussian& sa = rising ? out.ssta.arrival[ep].rise : out.ssta.arrival[ep].fall;
    row.ssta_mu = sa.mean;
    row.ssta_sigma = sa.stddev();

    const mc::NodeEstimate& est = out.mc.node[ep];
    const stats::RunningMoments& m = rising ? est.rise_time : est.fall_time;
    row.mc_mu = m.mean();
    row.mc_sigma = m.stddev();
    row.mc_p = rising ? est.rise_probability() : est.fall_probability();
  }

  // Signal-probability accuracy: mean absolute error of SPSTA's final-one
  // probability vs the Monte Carlo estimate, over all combinational nodes.
  double err = 0.0;
  std::size_t count = 0;
  for (NodeId id = 0; id < design.node_count(); ++id) {
    if (!netlist::is_combinational(design.node(id).type)) continue;
    const double sp = out.spsta.node[id].probs.final_one();
    const double mc_p = out.mc.node[id].probs().final_one();
    err += std::abs(sp - mc_p);
    ++count;
  }
  out.signal_prob_error = count > 0 ? err / static_cast<double>(count) : 0.0;
  return out;
}

ErrorSummary summarize_errors(std::span<const DirectionRow> rows, double floor) {
  ErrorSummary s;
  for (const DirectionRow& r : rows) {
    if (std::abs(r.mc_mu) > floor) {
      s.spsta_mu += std::abs(r.spsta_mu - r.mc_mu) / std::abs(r.mc_mu);
      s.ssta_mu += std::abs(r.ssta_mu - r.mc_mu) / std::abs(r.mc_mu);
      ++s.rows_mu;
    }
    if (std::abs(r.mc_sigma) > floor) {
      s.spsta_sigma += std::abs(r.spsta_sigma - r.mc_sigma) / r.mc_sigma;
      s.ssta_sigma += std::abs(r.ssta_sigma - r.mc_sigma) / r.mc_sigma;
      ++s.rows_sigma;
    }
    if (std::abs(r.mc_p) > floor) {
      s.spsta_p += std::abs(r.spsta_p - r.mc_p) / r.mc_p;
      ++s.rows_p;
    }
  }
  if (s.rows_mu) {
    s.spsta_mu /= static_cast<double>(s.rows_mu);
    s.ssta_mu /= static_cast<double>(s.rows_mu);
  }
  if (s.rows_sigma) {
    s.spsta_sigma /= static_cast<double>(s.rows_sigma);
    s.ssta_sigma /= static_cast<double>(s.rows_sigma);
  }
  if (s.rows_p) s.spsta_p /= static_cast<double>(s.rows_p);
  return s;
}

}  // namespace spsta::report
