/// \file path_report.hpp
/// PrimeTime-style textual path reports: per-point arrival breakdown along
/// a path, for deterministic STA and for the statistical engines (mean
/// +- sigma per point). The human-readable face of a timing run.

#pragma once

#include <string>

#include "core/spsta.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/graph.hpp"
#include "netlist/netlist.hpp"
#include "ssta/ssta.hpp"
#include "ssta/sta.hpp"

namespace spsta::report {

/// Deterministic path report against a clock period:
///
///   point            incr   arrival  slack
///   a (input)        0.00   0.00
///   g1 (NAND)        1.00   1.00
///   ...
///   endpoint         ...    5.00     -1.00 VIOLATED
[[nodiscard]] std::string sta_path_report(const netlist::Netlist& design,
                                          const netlist::DelayModel& delays,
                                          const netlist::Path& path, double period);

/// Statistical path report: SSTA rise arrival mean/sigma plus SPSTA's
/// rise transition probability and arrival at every point of the path.
[[nodiscard]] std::string statistical_path_report(const netlist::Netlist& design,
                                                  const netlist::Path& path,
                                                  const ssta::SstaResult& ssta,
                                                  const core::SpstaResult& spsta);

/// Convenience: report the most critical endpoint path of a design.
[[nodiscard]] std::string critical_path_report(const netlist::Netlist& design,
                                               const netlist::DelayModel& delays,
                                               double period);

}  // namespace spsta::report
