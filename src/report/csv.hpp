/// \file csv.hpp
/// CSV export of analysis artifacts for external plotting: t.o.p. density
/// series, yield curves, and whole-circuit node summaries.

#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "core/spsta.hpp"
#include "core/yield.hpp"
#include "netlist/netlist.hpp"
#include "stats/piecewise.hpp"

namespace spsta::report {

/// RFC 4180 field quoting: returns \p text unchanged unless it contains a
/// comma, double quote, CR or LF, in which case it is wrapped in double
/// quotes with embedded quotes doubled. Netlist node names are free-form
/// (Verilog escaped identifiers may hold almost anything), so every name
/// column goes through this.
[[nodiscard]] std::string csv_field(std::string_view text);

/// Locale-independent shortest round-trip rendering of a double
/// (std::to_chars): parsing the field back recovers the exact bits, and a
/// comma-decimal global locale cannot corrupt the column separator.
/// Non-finite values render as "nan"/"inf"/"-inf".
[[nodiscard]] std::string csv_number(double value);

/// Writes "t,<name0>,<name1>,..." rows sampling each density on the first
/// density's grid. All spans must be equal length.
void write_density_csv(std::ostream& out, std::span<const std::string> names,
                       std::span<const stats::PiecewiseDensity> densities);

/// Convenience: densities to a CSV string.
[[nodiscard]] std::string density_csv(std::span<const std::string> names,
                                      std::span<const stats::PiecewiseDensity> densities);

/// Writes "period,yield" rows.
void write_yield_csv(std::ostream& out, std::span<const core::YieldPoint> curve);

/// Per-node summary of a numeric SPSTA result:
/// name,p0,p1,pr,pf,rise_mu,rise_sigma,fall_mu,fall_sigma.
void write_node_summary_csv(std::ostream& out, const netlist::Netlist& design,
                            const core::SpstaNumericResult& result);

}  // namespace spsta::report
