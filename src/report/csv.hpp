/// \file csv.hpp
/// CSV export of analysis artifacts for external plotting: t.o.p. density
/// series, yield curves, and whole-circuit node summaries.

#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/spsta.hpp"
#include "core/yield.hpp"
#include "netlist/netlist.hpp"
#include "stats/piecewise.hpp"

namespace spsta::report {

/// Writes "t,<name0>,<name1>,..." rows sampling each density on the first
/// density's grid. All spans must be equal length.
void write_density_csv(std::ostream& out, std::span<const std::string> names,
                       std::span<const stats::PiecewiseDensity> densities);

/// Convenience: densities to a CSV string.
[[nodiscard]] std::string density_csv(std::span<const std::string> names,
                                      std::span<const stats::PiecewiseDensity> densities);

/// Writes "period,yield" rows.
void write_yield_csv(std::ostream& out, std::span<const core::YieldPoint> curve);

/// Per-node summary of a numeric SPSTA result:
/// name,p0,p1,pr,pf,rise_mu,rise_sigma,fall_mu,fall_sigma.
void write_node_summary_csv(std::ostream& out, const netlist::Netlist& design,
                            const core::SpstaNumericResult& result);

}  // namespace spsta::report
