#include "report/path_report.hpp"

#include <sstream>

#include "report/table.hpp"

namespace spsta::report {

using netlist::NodeId;

std::string sta_path_report(const netlist::Netlist& design,
                            const netlist::DelayModel& delays,
                            const netlist::Path& path, double period) {
  Table table({"point", "incr", "arrival"});
  double arrival = 0.0;
  for (NodeId id : path.nodes) {
    const netlist::Node& n = design.node(id);
    const double incr = netlist::is_combinational(n.type) ? delays.delay(id).mean : 0.0;
    arrival += incr;
    table.add_row({n.name + " (" + std::string(netlist::to_string(n.type)) + ")",
                   Table::num(incr), Table::num(arrival)});
  }
  const double slack = period - arrival;
  std::ostringstream out;
  out << table.to_string();
  out << "data arrival time   " << Table::num(arrival) << "\n";
  out << "data required time  " << Table::num(period) << "\n";
  out << "slack               " << Table::num(slack)
      << (slack < 0.0 ? "  (VIOLATED)" : "  (MET)") << "\n";
  return out.str();
}

std::string statistical_path_report(const netlist::Netlist& design,
                                    const netlist::Path& path,
                                    const ssta::SstaResult& ssta,
                                    const core::SpstaResult& spsta) {
  Table table({"point", "SSTA rise mu", "sigma", "SPSTA P(r)", "SPSTA mu", "sigma"});
  for (NodeId id : path.nodes) {
    const netlist::Node& n = design.node(id);
    const stats::Gaussian& g = ssta.arrival[id].rise;
    const core::NodeTop& t = spsta.node[id];
    table.add_row({n.name + " (" + std::string(netlist::to_string(n.type)) + ")",
                   Table::num(g.mean), Table::num(g.stddev()),
                   Table::num(t.probs.pr, 3), Table::num(t.rise.arrival.mean),
                   Table::num(t.rise.arrival.stddev())});
  }
  return table.to_string();
}

std::string critical_path_report(const netlist::Netlist& design,
                                 const netlist::DelayModel& delays, double period) {
  const auto paths = netlist::critical_paths(design, delays.means(), 1);
  if (paths.empty()) return "no timing endpoints\n";
  std::ostringstream out;
  out << "critical path to " << design.node(paths[0].nodes.back()).name << ":\n";
  out << sta_path_report(design, delays, paths[0], period);
  return out.str();
}

}  // namespace spsta::report
