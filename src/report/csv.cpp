#include "report/csv.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spsta::report {

void write_density_csv(std::ostream& out, std::span<const std::string> names,
                       std::span<const stats::PiecewiseDensity> densities) {
  if (names.size() != densities.size()) {
    throw std::invalid_argument("write_density_csv: name/density count mismatch");
  }
  out << "t";
  for (const std::string& n : names) out << ',' << n;
  out << '\n';
  if (densities.empty() || densities[0].empty()) return;
  const stats::GridSpec& grid = densities[0].grid();
  for (std::size_t i = 0; i < grid.n; ++i) {
    const double t = grid.time_at(i);
    out << t;
    for (const stats::PiecewiseDensity& d : densities) out << ',' << d.value_at(t);
    out << '\n';
  }
}

std::string density_csv(std::span<const std::string> names,
                        std::span<const stats::PiecewiseDensity> densities) {
  std::ostringstream out;
  write_density_csv(out, names, densities);
  return out.str();
}

void write_yield_csv(std::ostream& out, std::span<const core::YieldPoint> curve) {
  out << "period,yield\n";
  for (const core::YieldPoint& p : curve) out << p.period << ',' << p.yield << '\n';
}

void write_node_summary_csv(std::ostream& out, const netlist::Netlist& design,
                            const core::SpstaNumericResult& result) {
  out << "name,p0,p1,pr,pf,rise_mu,rise_sigma,fall_mu,fall_sigma\n";
  for (netlist::NodeId id = 0; id < design.node_count(); ++id) {
    const core::NodeTopDensity& n = result.node[id];
    out << design.node(id).name << ',' << n.probs.p0 << ',' << n.probs.p1 << ','
        << n.probs.pr << ',' << n.probs.pf << ',' << n.rise.mean() << ','
        << n.rise.stddev() << ',' << n.fall.mean() << ',' << n.fall.stddev() << '\n';
  }
}

}  // namespace spsta::report
