#include "report/csv.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spsta::report {

std::string csv_field(std::string_view text) {
  const bool needs_quoting =
      text.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(text);
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_number(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value < 0 ? "-inf" : "inf";
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;  // 40 bytes covers every shortest-round-trip double
  return std::string(buf, end);
}

void write_density_csv(std::ostream& out, std::span<const std::string> names,
                       std::span<const stats::PiecewiseDensity> densities) {
  if (names.size() != densities.size()) {
    throw std::invalid_argument("write_density_csv: name/density count mismatch");
  }
  out << "t";
  for (const std::string& n : names) out << ',' << csv_field(n);
  out << '\n';
  if (densities.empty() || densities[0].empty()) return;
  const stats::GridSpec& grid = densities[0].grid();
  for (std::size_t i = 0; i < grid.n; ++i) {
    const double t = grid.time_at(i);
    out << csv_number(t);
    for (const stats::PiecewiseDensity& d : densities) {
      out << ',' << csv_number(d.value_at(t));
    }
    out << '\n';
  }
}

std::string density_csv(std::span<const std::string> names,
                        std::span<const stats::PiecewiseDensity> densities) {
  std::ostringstream out;
  write_density_csv(out, names, densities);
  return out.str();
}

void write_yield_csv(std::ostream& out, std::span<const core::YieldPoint> curve) {
  out << "period,yield\n";
  for (const core::YieldPoint& p : curve) {
    out << csv_number(p.period) << ',' << csv_number(p.yield) << '\n';
  }
}

void write_node_summary_csv(std::ostream& out, const netlist::Netlist& design,
                            const core::SpstaNumericResult& result) {
  out << "name,p0,p1,pr,pf,rise_mu,rise_sigma,fall_mu,fall_sigma\n";
  for (netlist::NodeId id = 0; id < design.node_count(); ++id) {
    const core::NodeTopDensity& n = result.node[id];
    out << csv_field(design.node(id).name) << ',' << csv_number(n.probs.p0) << ','
        << csv_number(n.probs.p1) << ',' << csv_number(n.probs.pr) << ','
        << csv_number(n.probs.pf) << ',' << csv_number(n.rise.mean()) << ','
        << csv_number(n.rise.stddev()) << ',' << csv_number(n.fall.mean()) << ','
        << csv_number(n.fall.stddev()) << '\n';
  }
}

}  // namespace spsta::report
