#include "service/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

namespace spsta::service {

JsonParseError::JsonParseError(std::size_t offset, const std::string& message)
    : std::runtime_error("json:" + std::to_string(offset) + ": " + message),
      offset_(offset) {}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw std::logic_error("Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) throw std::logic_error("Json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw std::logic_error("Json: not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::Array) throw std::logic_error("Json: not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::Object) throw std::logic_error("Json: not an object");
  return object_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Json::push_back(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) throw std::logic_error("Json: push_back on non-array");
  array_.push_back(std::move(value));
}

void Json::set(std::string_view key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) throw std::logic_error("Json: set on non-object");
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t max_depth;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(pos, message);
  }

  [[nodiscard]] bool done() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const {
    if (done()) fail("unexpected end of input");
    return text[pos];
  }

  void skip_ws() {
    while (!done()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  void expect(char c) {
    if (done() || text[pos] != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool try_consume(char c) {
    if (!done() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  void literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) fail("bad literal");
    pos += word.size();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (done()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c < 0x20) fail("control character in string");
      if (c == '\\') {
        ++pos;
        if (done()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (done()) fail("truncated \\u escape");
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point; surrogate pairs are passed
            // through as two 3-byte sequences (protocol strings are
            // netlist/file names, not emoji — lossless is enough).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("unknown escape");
        }
        continue;
      }
      out.push_back(static_cast<char>(c));
      ++pos;
    }
  }

  double parse_number() {
    const std::size_t start = pos;
    if (try_consume('-')) {}
    if (done() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      fail("bad number");
    }
    if (text[pos] == '0' && pos + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[pos + 1]))) {
      fail("bad number: leading zero");
    }
    while (!done() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (try_consume('.')) {
      if (done() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        fail("bad number: digits required after '.'");
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (!done() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!done() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (done() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        fail("bad number: exponent digits required");
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    // std::from_chars: locale-independent, unlike strtod, which would
    // reject "1.5" under a comma-decimal LC_NUMERIC.
    const std::string_view token = text.substr(start, pos - start);
    double value = 0.0;
    const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range) {
      // Grammar guarantees the magnitude is the issue: a negative decimal
      // exponent means underflow (reads as zero, like strtod); otherwise
      // the value exceeds double range.
      if (decimal_exponent_is_negative(token)) {
        return token.front() == '-' ? -0.0 : 0.0;
      }
      fail("number out of range");
    }
    if (ec != std::errc() || end != token.data() + token.size()) fail("bad number");
    return value;
  }

  /// Sign of the scale of an out-of-range numeric token: true when the
  /// combined decimal exponent (significant integer digits + explicit
  /// exponent) is negative, i.e. the value underflowed toward zero.
  [[nodiscard]] static bool decimal_exponent_is_negative(std::string_view token) {
    std::size_t i = token.front() == '-' ? 1 : 0;
    long long int_digits = 0;  // significant digits before the '.'
    bool leading = true;
    for (; i < token.size() && token[i] >= '0' && token[i] <= '9'; ++i) {
      if (leading && token[i] == '0') continue;
      leading = false;
      ++int_digits;
    }
    long long frac_leading_zeros = 0;
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (int_digits == 0) {
        for (; i < token.size() && token[i] == '0'; ++i) ++frac_leading_zeros;
      }
      while (i < token.size() && token[i] >= '0' && token[i] <= '9') ++i;
    }
    long long exponent = 0;
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      bool neg = false;
      if (token[i] == '+' || token[i] == '-') neg = token[i++] == '-';
      for (; i < token.size(); ++i) {
        exponent = std::min<long long>(exponent * 10 + (token[i] - '0'), 1000000);
      }
      if (neg) exponent = -exponent;
    }
    // Decimal magnitude ~ 10^(int_digits - frac_leading_zeros + exponent).
    return int_digits - frac_leading_zeros + exponent < 0;
  }

  Json parse_value(std::size_t depth) {
    if (depth > max_depth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': {
        ++pos;
        Json::Object members;
        skip_ws();
        if (try_consume('}')) return Json(std::move(members));
        while (true) {
          skip_ws();
          std::string key = parse_string();
          for (const Json::Member& m : members) {
            if (m.first == key) fail("duplicate key '" + key + "'");
          }
          skip_ws();
          expect(':');
          members.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (try_consume(',')) continue;
          expect('}');
          return Json(std::move(members));
        }
      }
      case '[': {
        ++pos;
        Json::Array items;
        skip_ws();
        if (try_consume(']')) return Json(std::move(items));
        while (true) {
          items.push_back(parse_value(depth + 1));
          skip_ws();
          if (try_consume(',')) continue;
          expect(']');
          return Json(std::move(items));
        }
      }
      case '"': return Json(parse_string());
      case 't': literal("true"); return Json(true);
      case 'f': literal("false"); return Json(false);
      case 'n': literal("null"); return Json(nullptr);
      default: return Json(parse_number());
    }
  }
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string json_number(double value) {
  if (!std::isfinite(value)) throw NonFiniteNumberError();
  char buf[40];
  // Integers up to 2^53 print without an exponent or decimal point.
  // std::to_chars is locale-independent (snprintf "%g" would emit "1,5"
  // under a comma-decimal LC_NUMERIC) and the plain overload produces the
  // shortest string that parses back to the same bits.
  const auto [end, ec] =
      value == std::floor(value) && std::abs(value) < 9.007199254740992e15
          ? std::to_chars(buf, buf + sizeof buf, value, std::chars_format::fixed, 0)
          : std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;  // 40 bytes always suffice for a double
  return std::string(buf, end);
}

Json Json::number_or_null(double value) {
  return std::isfinite(value) ? Json(value) : Json(nullptr);
}

Json Json::parse(std::string_view text, std::size_t max_depth) {
  Parser p{text, 0, max_depth};
  Json value = p.parse_value(0);
  p.skip_ws();
  if (!p.done()) p.fail("trailing characters after document");
  return value;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: out += json_number(number_); return;
    case Type::String: append_escaped(out, string_); return;
    case Type::Array: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out.push_back(',');
        array_[i].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::Object: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out.push_back(',');
        append_escaped(out, object_[i].first);
        out.push_back(':');
        object_[i].second.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace spsta::service
