/// \file daemon.hpp
/// The JSON-lines serve loop shared by `spsta_serviced` (over real
/// stdin/stdout) and the in-process client / tests (over string streams).
///
/// Reads one request per line, greedily draining whatever further whole
/// lines are already buffered into the same batch (so piped scripts get
/// genuine batch scheduling), hands the batch to the BatchScheduler and
/// writes one response line per request, in order. Returns after a
/// `shutdown` request or at end of input. No input can make it throw.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "service/scheduler.hpp"
#include "service/service.hpp"

namespace spsta::service {

struct ServeOptions {
  unsigned threads = 0;          ///< scheduler pool size (0 = hardware)
  std::size_t max_batch = 256;   ///< cap on greedily drained batch size
  bool greedy_batch = true;      ///< drain buffered lines into one batch
  /// When non-empty, append one JSON trace line per served request
  /// (trace_id, cmd, ok, queue/execute/serialize ms) to this file.
  std::string trace_path;

  /// > 0 selects the sharded worker-pool runtime (DESIGN.md §13): that
  /// many affinity-routed worker shards, each with a bounded queue of
  /// `queue_capacity`, admission control answering `overloaded` when a
  /// shard is full. 0 keeps the deterministic batch scheduler.
  unsigned workers = 0;
  std::size_t queue_capacity = 256;  ///< per-shard queue bound (pool mode)
};

struct ServeReport {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  bool shutdown = false;  ///< true when stopped by a shutdown request
};

/// Serves requests from \p in to \p out until shutdown or EOF.
ServeReport serve(std::istream& in, std::ostream& out, AnalysisService& service,
                  const ServeOptions& options = {});

}  // namespace spsta::service
