#include "service/scheduler.hpp"

#include <utility>
#include <variant>

namespace spsta::service {

namespace {

/// A request parsed once up front, so classification (mutating or not)
/// does not re-parse inside the pool job.
struct Slot {
  std::variant<Request, Response> parsed;
  std::chrono::steady_clock::time_point enqueued;

  [[nodiscard]] bool is_barrier() const {
    const Request* req = std::get_if<Request>(&parsed);
    return req != nullptr && is_mutating_command(req->cmd);
  }
};

}  // namespace

BatchScheduler::BatchScheduler(AnalysisService& service, unsigned threads)
    : service_(service), pool_(threads) {}

std::vector<Response> BatchScheduler::run(const std::vector<Incoming>& batch) {
  ++stats_.batches;
  stats_.requests += batch.size();

  std::vector<Slot> slots;
  slots.reserve(batch.size());
  for (const Incoming& incoming : batch) {
    slots.push_back({parse_request(incoming.line), incoming.enqueued});
  }

  std::vector<Response> responses(batch.size());
  // Written from pool threads; each slot touches only its own entry, so
  // the counters can be summed race-free after the batch.
  std::vector<unsigned char> expired(batch.size(), 0);
  const auto execute_slot = [&](std::size_t i) {
    Slot& slot = slots[i];
    if (Response* early = std::get_if<Response>(&slot.parsed)) {
      responses[i] = std::move(*early);  // envelope error, nothing to execute
      return;
    }
    const Request& request = std::get<Request>(slot.parsed);
    if (request.deadline_ms >= 0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - slot.enqueued)
              .count();
      if (elapsed_ms > request.deadline_ms) {
        expired[i] = 1;
        responses[i] = Response::failure(
            request.id, ErrorCode::DeadlineExceeded,
            "deadline of " + json_number(request.deadline_ms) + " ms exceeded (" +
                json_number(elapsed_ms) + " ms in queue)");
        return;
      }
    }
    responses[i] = service_.execute(request);
  };

  std::size_t i = 0;
  while (i < slots.size()) {
    if (slots[i].is_barrier()) {
      ++stats_.barriers;
      execute_slot(i);
      ++i;
      continue;
    }
    // Maximal run of parallel-safe requests -> one pool job.
    std::size_t end = i;
    while (end < slots.size() && !slots[end].is_barrier()) ++end;
    if (end - i == 1) {
      execute_slot(i);
    } else {
      ++stats_.parallel_groups;
      pool_.for_each_index(end - i,
                           [&](std::size_t k) { execute_slot(i + k); });
    }
    i = end;
  }
  for (const unsigned char e : expired) stats_.deadline_expired += e;
  return responses;
}

Response BatchScheduler::run_one(std::string line) {
  std::vector<Response> responses = run({Incoming{std::move(line)}});
  return std::move(responses.front());
}

}  // namespace spsta::service
