#include "service/scheduler.hpp"

#include <utility>
#include <variant>

#include "obs/metrics.hpp"

namespace spsta::service {

namespace {

/// A request parsed once up front, so classification (mutating or not)
/// does not re-parse inside the pool job.
struct Slot {
  std::variant<Request, Response> parsed;
  std::chrono::steady_clock::time_point enqueued;
  std::uint64_t trace_id = 0;  ///< assigned in request order (deterministic)

  [[nodiscard]] bool is_barrier() const {
    const Request* req = std::get_if<Request>(&parsed);
    return req != nullptr && is_mutating_command(req->cmd);
  }
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

}  // namespace

BatchScheduler::BatchScheduler(AnalysisService& service, unsigned threads)
    : service_(service), pool_(threads),
      global_queue_hist_(obs::registry().histogram("service.queue_wait")),
      global_execute_hist_(obs::registry().histogram("service.execute")) {}

std::vector<Response> BatchScheduler::run(const std::vector<Incoming>& batch) {
  ++stats_.batches;
  stats_.requests += batch.size();

  std::vector<Slot> slots;
  slots.reserve(batch.size());
  for (const Incoming& incoming : batch) {
    // Trace ids are handed out here, in request order, NOT inside the
    // pool job — so the id a request gets never depends on thread timing.
    slots.push_back({parse_request(incoming.line), incoming.enqueued,
                     trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1});
    if (Request* request = std::get_if<Request>(&slots.back().parsed)) {
      // The deadline origin is wire arrival, not parse time: queue wait
      // counts against the budget, here and in the handlers' re-check.
      request->enqueued = incoming.enqueued;
    }
  }

  std::vector<Response> responses(batch.size());
  // Written from pool threads; each slot touches only its own entry, so
  // the counters can be summed race-free after the batch.
  enum : unsigned char { kRan = 0, kShedQueue = 1, kShedExecute = 2 };
  std::vector<unsigned char> expired(batch.size(), kRan);
  const auto execute_slot = [&](std::size_t i) {
    Slot& slot = slots[i];
    const double queue_ms = ms_since(slot.enqueued);
    queue_hist_.record_ns(static_cast<std::uint64_t>(queue_ms * 1e6));
    global_queue_hist_.record_ns(static_cast<std::uint64_t>(queue_ms * 1e6));
    if (Response* early = std::get_if<Response>(&slot.parsed)) {
      responses[i] = std::move(*early);  // envelope error, nothing to execute
      responses[i].span = {slot.trace_id, "", queue_ms, 0.0};
      return;
    }
    const Request& request = std::get<Request>(slot.parsed);
    if (request.deadline_ms >= 0 && queue_ms > request.deadline_ms) {
      expired[i] = kShedQueue;
      responses[i] = Response::failure(
          request.id, ErrorCode::DeadlineExceeded,
          "deadline of " + json_number(request.deadline_ms) + " ms exceeded (" +
              json_number(queue_ms) + " ms in queue)");
      responses[i].span = {slot.trace_id, request.cmd, queue_ms, 0.0};
      return;
    }
    const auto exec_start = std::chrono::steady_clock::now();
    responses[i] = service_.execute(request);
    const double execute_ms = ms_since(exec_start);
    execute_hist_.record_ns(static_cast<std::uint64_t>(execute_ms * 1e6));
    global_execute_hist_.record_ns(static_cast<std::uint64_t>(execute_ms * 1e6));
    responses[i].span = {slot.trace_id, request.cmd, queue_ms, execute_ms};
    // The handlers re-check the deadline after winning the session mutex;
    // count that second shed point separately from the queue one.
    if (!responses[i].ok && responses[i].error_code() == "deadline_exceeded") {
      expired[i] = kShedExecute;
    }
  };

  std::size_t i = 0;
  while (i < slots.size()) {
    if (slots[i].is_barrier()) {
      ++stats_.barriers;
      execute_slot(i);
      ++i;
      continue;
    }
    // Maximal run of parallel-safe requests -> one pool job.
    std::size_t end = i;
    while (end < slots.size() && !slots[end].is_barrier()) ++end;
    if (end - i == 1) {
      execute_slot(i);
    } else {
      ++stats_.parallel_groups;
      pool_.for_each_index(end - i,
                           [&](std::size_t k) { execute_slot(i + k); });
    }
    i = end;
  }
  for (const unsigned char e : expired) {
    stats_.deadline_expired_queue += e == kShedQueue;
    stats_.deadline_expired_execute += e == kShedExecute;
    stats_.deadline_expired += e != kRan;
  }
  return responses;
}

Response BatchScheduler::run_one(std::string line) {
  std::vector<Response> responses = run({Incoming{std::move(line)}});
  return std::move(responses.front());
}

}  // namespace spsta::service
