#include "service/session.hpp"

#include <cstdio>
#include <utility>

namespace spsta::service {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hash_key(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

Session::Session(std::string key_, netlist::Netlist design_,
                 core::PatternCache* shared_pattern_cache)
    : key(std::move(key_)), display_name(design_.name()) {
  // Built in the body, not the init list: the delay model and the expanded
  // source vector both read `design_` before it is moved into the Analyzer.
  netlist::DelayModel delays = netlist::DelayModel::unit(design_);
  std::vector<netlist::SourceStats> sources(design_.timing_sources().size(),
                                            netlist::scenario_I());
  AnalyzerOptions options;
  options.shared_pattern_cache = shared_pattern_cache;
  analyzer = std::make_unique<Analyzer>(std::move(design_), std::move(delays),
                                        std::move(sources), options);
}

core::IncrementalSpsta& Session::warm_incremental() {
  if (!incremental) {
    // Exact settlement: every update sequence stays bit-identical to a
    // fresh full moment-engine run. Seeded from the compiled plan so the
    // levelization is not re-derived.
    incremental = std::make_unique<core::IncrementalSpsta>(
        analyzer->plan(), analyzer->sources(), /*settle_eps=*/0.0);
  }
  return *incremental;
}

void Session::apply_set_delay(netlist::NodeId id, const stats::Gaussian& delay) {
  // Build the warm engine from the pre-edit state, so the edit itself is a
  // cone-limited update rather than a full re-analysis.
  core::IncrementalSpsta& inc = warm_incremental();
  analyzer->set_delay(id, delay);
  inc.set_delay(id, delay);
  ++eco_version;
  ++eco_edits;
  cache.clear();
}

void Session::apply_set_source(std::size_t source_index,
                               const netlist::SourceStats& stats) {
  core::IncrementalSpsta& inc = warm_incremental();
  analyzer->set_source(source_index, stats);
  inc.set_source_stats(source_index, stats);
  ++eco_version;
  ++eco_edits;
  cache.clear();
}

std::pair<Session*, bool> SessionStore::load(std::uint64_t content_hash,
                                             netlist::Netlist design,
                                             core::PatternCache* shared_pattern_cache) {
  const std::string key = hash_key(content_hash);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = sessions_.find(key); it != sessions_.end()) {
    return {it->second.get(), false};
  }
  auto session =
      std::make_unique<Session>(key, std::move(design), shared_pattern_cache);
  Session* raw = session.get();
  sessions_.emplace(key, std::move(session));
  order_.push_back(key);
  return {raw, true};
}

Session* SessionStore::find(std::string_view key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(std::string(key));
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool SessionStore::unload(std::string_view key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(std::string(key));
  if (it == sessions_.end()) return false;
  sessions_.erase(it);
  std::erase(order_, std::string(key));
  return true;
}

std::size_t SessionStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::vector<std::string> SessionStore::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

}  // namespace spsta::service
