#include "service/session.hpp"

#include <charconv>
#include <cstdio>
#include <utility>

#include "obs/metrics.hpp"

namespace spsta::service {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hash_key(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::optional<std::uint64_t> parse_hash_key(std::string_view key) noexcept {
  if (key.size() != 16) return std::nullopt;
  std::uint64_t h = 0;
  const auto [end, ec] = std::from_chars(key.data(), key.data() + key.size(), h, 16);
  if (ec != std::errc{} || end != key.data() + key.size()) return std::nullopt;
  return h;
}

Session::Session(std::string key_, netlist::Netlist design_,
                 core::PatternCache* shared_pattern_cache)
    : key(std::move(key_)), display_name(design_.name()) {
  // Built in the body, not the init list: the delay model and the expanded
  // source vector both read `design_` before it is moved into the Analyzer.
  netlist::DelayModel delays = netlist::DelayModel::unit(design_);
  std::vector<netlist::SourceStats> sources(design_.timing_sources().size(),
                                            netlist::scenario_I());
  AnalyzerOptions options;
  options.shared_pattern_cache = shared_pattern_cache;
  analyzer = std::make_unique<Analyzer>(std::move(design_), std::move(delays),
                                        std::move(sources), options);
  // Eager compile: the plan is the expensive, shareable artifact — build it
  // here, outside any store lock, so every analyze (from any client of this
  // content hash) starts warm.
  (void)analyzer->plan();
  // Footprint estimate: levelization/adjacency arenas, delay span, pattern
  // cache share and one resident result all scale with node count.
  approx_bytes = 4096 + design().node_count() * 1024;
}

Session::Session(std::string key_, netlist::HierDesign design_,
                 const hier::HierAnalyzerOptions& hier_options)
    : key(std::move(key_)), display_name(design_.name()) {
  // Compiles every unique block (through the shared library) and resolves
  // the composition graph — the hierarchical analogue of the eager plan
  // compile above, likewise latch-protected by the store.
  hier_analyzer = std::make_unique<hier::HierAnalyzer>(std::move(design_), hier_options);
  approx_bytes = hier_analyzer->approx_bytes();
}

core::IncrementalSpsta& Session::warm_incremental() {
  if (!incremental) {
    // Exact settlement: every update sequence stays bit-identical to a
    // fresh full moment-engine run. Seeded from the compiled plan so the
    // levelization is not re-derived.
    incremental = std::make_unique<core::IncrementalSpsta>(
        analyzer->plan(), analyzer->sources(), /*settle_eps=*/0.0);
  }
  return *incremental;
}

core::IncrementalSpsta::CommitStats Session::apply_eco(
    std::span<const core::IncrementalSpsta::EcoEdit> edits) {
  // Build the warm engine from the pre-edit state, so the batch is a
  // cone-limited update rather than a full re-analysis. One transaction:
  // N edits merge into a single dirty frontier and one propagation wave.
  core::IncrementalSpsta& inc = warm_incremental();
  inc.begin_eco();
  core::IncrementalSpsta::CommitStats stats;
  try {
    for (const core::IncrementalSpsta::EcoEdit& edit : edits) {
      if (edit.kind == core::IncrementalSpsta::EcoEdit::Kind::kDelay) {
        analyzer->set_delay(edit.node, edit.delay);
        inc.set_delay(edit.node, edit.delay);
      } else {
        analyzer->set_source(edit.source_index, edit.source);
        inc.set_source_stats(edit.source_index, edit.source);
      }
    }
    stats = inc.commit();
  } catch (...) {
    // Never leave the transaction open: a poisoned engine would turn every
    // later read on this session into a logic_error.
    if (inc.in_transaction()) (void)inc.commit();
    throw;
  }
  ++eco_version;
  eco_edits += edits.size();
  cache.clear();
  return stats;
}

core::IncrementalSpsta::ProbeResult Session::probe_eco(
    std::span<const core::IncrementalSpsta::EcoEdit> edits,
    std::span<const netlist::NodeId> targets) {
  return warm_incremental().probe(edits, targets);
}

core::IncrementalSpsta::CommitStats Session::apply_set_delay(
    netlist::NodeId id, const stats::Gaussian& delay) {
  const core::IncrementalSpsta::EcoEdit edit =
      core::IncrementalSpsta::EcoEdit::delay_edit(id, delay);
  return apply_eco({&edit, 1});
}

core::IncrementalSpsta::CommitStats Session::apply_set_source(
    std::size_t source_index, const netlist::SourceStats& stats) {
  const core::IncrementalSpsta::EcoEdit edit =
      core::IncrementalSpsta::EcoEdit::source_edit(source_index, stats);
  return apply_eco({&edit, 1});
}

std::pair<std::shared_ptr<Session>, bool> SessionStore::load(
    std::uint64_t content_hash, const DesignFactory& make_design,
    core::PatternCache* shared_pattern_cache) {
  return load(content_hash,
              [&make_design, shared_pattern_cache](const std::string& key) {
                return std::make_shared<Session>(key, make_design(),
                                                 shared_pattern_cache);
              });
}

std::pair<std::shared_ptr<Session>, bool> SessionStore::load(
    std::uint64_t content_hash, const SessionFactory& make_session) {
  const std::string key = hash_key(content_hash);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const auto it = sessions_.find(key);
      if (it == sessions_.end()) break;  // absent: this thread builds
      if (it->second != nullptr) {
        // Ready: the cross-session plan-cache hit path.
        touch_lru(key);
        plan_hits_.fetch_add(1, std::memory_order_relaxed);
        obs::registry().counter("service.store.plan_hits").add();
        return {it->second, false};
      }
      // In flight: another loader is compiling this very design. Wait on
      // the latch, NOT the builder's work — the store mutex is released
      // while we sleep, so unrelated find/load/unload proceed.
      latch_waits_.fetch_add(1, std::memory_order_relaxed);
      ready_cv_.wait(lock);
      // Re-check from scratch: the build may have succeeded (return it),
      // failed (entry erased — we become the builder), or the session may
      // even have been unloaded already.
    }
    sessions_.emplace(key, nullptr);  // in-flight marker
  }

  // The expensive part — parse (factory) + Analyzer + eager plan compile —
  // runs with NO store lock held.
  std::shared_ptr<Session> session;
  try {
    session = make_session(key);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(key);
    ready_cv_.notify_all();  // waiters retry; one becomes the next builder
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sessions_[key] = session;
    order_.push_back(key);
    bytes_ += session->approx_bytes;
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("service.store.plan_misses").add();
    obs::registry().gauge("service.store.bytes").set(static_cast<double>(bytes_));
    enforce_budget(key);
    ready_cv_.notify_all();
  }
  return {session, true};
}

std::shared_ptr<Session> SessionStore::find(std::string_view key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(std::string(key));
  if (it == sessions_.end() || it->second == nullptr) return nullptr;
  touch_lru(it->first);
  return it->second;
}

bool SessionStore::unload(std::string_view key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(std::string(key));
  if (it == sessions_.end() || it->second == nullptr) return false;
  bytes_ -= it->second->approx_bytes;
  sessions_.erase(it);
  std::erase(order_, std::string(key));
  obs::registry().gauge("service.store.bytes").set(static_cast<double>(bytes_));
  return true;
}

std::size_t SessionStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

std::vector<std::string> SessionStore::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

void SessionStore::set_budget(StoreBudget budget) {
  const std::lock_guard<std::mutex> lock(mutex_);
  budget_ = budget;
  enforce_budget(order_.empty() ? std::string() : order_.back());
}

StoreBudget SessionStore::budget() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

std::size_t SessionStore::approx_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t SessionStore::loading() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size() - order_.size();
}

void SessionStore::touch_lru(const std::string& key) const {
  if (!order_.empty() && order_.back() == key) return;
  std::erase(order_, key);
  order_.push_back(key);
}

void SessionStore::enforce_budget(const std::string& keep) {
  const auto over = [&] {
    return (budget_.max_sessions != 0 && order_.size() > budget_.max_sessions) ||
           (budget_.max_bytes != 0 && bytes_ > budget_.max_bytes);
  };
  std::size_t i = 0;
  while (over() && i < order_.size()) {
    if (order_[i] == keep) {
      ++i;  // never evict the entry that triggered enforcement
      continue;
    }
    const std::string victim = order_[i];
    const auto it = sessions_.find(victim);
    bytes_ -= it->second->approx_bytes;
    sessions_.erase(it);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("service.store.evictions").add();
  }
  obs::registry().gauge("service.store.bytes").set(static_cast<double>(bytes_));
}

}  // namespace spsta::service
