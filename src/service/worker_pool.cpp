#include "service/worker_pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace spsta::service {

namespace {

unsigned resolve_shards(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 16u);
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

WorkerPool::WorkerPool(AnalysisService& service, WorkerPoolOptions options)
    : service_(service), options_(options) {
  options_.shards = resolve_shards(options_.shards);
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  shards_.reserve(options_.shards);
  for (unsigned i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Threads start only after every shard exists: worker_loop never sees a
  // half-built shards_ vector.
  for (const auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
}

WorkerPool::~WorkerPool() {
  stopping_.store(true, std::memory_order_release);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cv.notify_all();
  }
  for (const auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

WorkerPoolStats WorkerPool::stats() const noexcept {
  return {submitted_.load(std::memory_order_relaxed),
          executed_.load(std::memory_order_relaxed),
          rejected_.load(std::memory_order_relaxed),
          deadline_shed_.load(std::memory_order_relaxed),
          parse_errors_.load(std::memory_order_relaxed),
          shutdown_shed_.load(std::memory_order_relaxed)};
}

void WorkerPool::stop_accepting() {
  stopping_.store(true, std::memory_order_release);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cv.notify_all();
  }
}

unsigned WorkerPool::route_shard(const Request& request) const {
  const unsigned n = shards();
  // A request naming a session routes on the session key — which IS the
  // content hash, so it lands where the design's plan is warm.
  if (const Json* key = request.body.find("session");
      key != nullptr && key->is_string()) {
    if (const auto h = parse_hash_key(key->as_string())) {
      return static_cast<unsigned>(*h % n);
    }
    return static_cast<unsigned>(fnv1a64(key->as_string()) % n);
  }
  if (request.cmd == "load") {
    // Route a load on the content hash of what it loads, reproducing
    // handle_load's key derivation — identical designs submitted by
    // different clients converge on one shard and one compiled plan.
    const Json* circuit = request.body.find("circuit");
    if (circuit != nullptr && circuit->is_string()) {
      return static_cast<unsigned>(
          load_content_hash("circuit", circuit->as_string()) % n);
    }
    const Json* text = request.body.find("text");
    const Json* format = request.body.find("format");
    if (text != nullptr && text->is_string() && format != nullptr &&
        format->is_string()) {
      return static_cast<unsigned>(
          load_content_hash(format->as_string(), text->as_string()) % n);
    }
    // Path loads route on the path string: the content is not in hand
    // yet, so identical paths share a shard and the parse/compile is still
    // deduplicated by the session store's latch. KNOWN MISS: the session a
    // path load creates is keyed on the *content* hash, so every later
    // request on that session routes on fnv1a64(content) — generally a
    // DIFFERENT shard than fnv1a64(path). A path-loaded design therefore
    // splits its load traffic and its analyze traffic across two shards
    // (the compiled plan itself is shared either way — the store is
    // process-wide; only the per-design FIFO/affinity property is lost).
    // service_worker_pool_test quantifies the split; clients that care
    // should load by text or circuit name.
    const Json* path = request.body.find("path");
    if (path != nullptr && path->is_string()) {
      return static_cast<unsigned>(fnv1a64(path->as_string()) % n);
    }
  }
  // No routing key (ping, stats, shutdown, malformed loads): spread.
  return static_cast<unsigned>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                               n);
}

void WorkerPool::update_depth_gauge() const {
  obs::registry().gauge("service.pool.queue_depth")
      .set(static_cast<double>(total_depth_.load(std::memory_order_relaxed)));
}

std::future<Response> WorkerPool::submit(
    std::string line, std::chrono::steady_clock::time_point enqueued,
    bool binary_frames) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const std::uint64_t trace_id =
      trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1;

  std::variant<Request, Response> parsed = parse_request(line);
  if (Response* error = std::get_if<Response>(&parsed)) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    error->span = {trace_id, "", 0.0, 0.0};
    promise.set_value(std::move(*error));
    return future;
  }
  Request request = std::move(std::get<Request>(parsed));
  request.enqueued = enqueued;
  request.binary_frames = binary_frames;

  if (stopping_.load(std::memory_order_acquire)) {
    shutdown_shed_.fetch_add(1, std::memory_order_relaxed);
    Response r = Response::failure(request.id, ErrorCode::Overloaded,
                                   "service is shutting down");
    r.span = {trace_id, request.cmd, request.age_ms(), 0.0};
    promise.set_value(std::move(r));
    return future;
  }

  Shard& shard = *shards_[route_shard(request)];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    // Re-check under the shard lock: a worker only exits after observing
    // stopping_ with this mutex held, so a submit that reaches the lock
    // afterwards is guaranteed to see stopping_ too (mutex ordering plus
    // read coherence) and never enqueues onto a dead shard.
    if (stopping_.load(std::memory_order_acquire)) {
      shutdown_shed_.fetch_add(1, std::memory_order_relaxed);
      Response r = Response::failure(request.id, ErrorCode::Overloaded,
                                     "service is shutting down");
      r.span = {trace_id, request.cmd, request.age_ms(), 0.0};
      promise.set_value(std::move(r));
      return future;
    }
    if (shard.queue.size() >= options_.queue_capacity) {
      // Admission control: shed NOW, with a hint, rather than queueing
      // without bound. The hint is how long the backlog ahead would take
      // at this shard's recent mean service time.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::registry().counter("service.pool.overloaded").add();
      const double backlog_ms =
          static_cast<double>(shard.queue.size() + 1) *
          static_cast<double>(shard.avg_execute_ns.load(std::memory_order_relaxed)) *
          1e-6;
      Response r = Response::failure(
          request.id, ErrorCode::Overloaded,
          "shard queue full (" + std::to_string(shard.queue.size()) +
              " queued); retry later");
      r.body.set("retry_after_ms", Json(backlog_ms));
      r.span = {trace_id, request.cmd, request.age_ms(), 0.0};
      promise.set_value(std::move(r));
      return future;
    }
    shard.queue.push_back(Job{std::move(request), std::move(promise), trace_id});
    total_depth_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    shard.cv.notify_one();
  }
  update_depth_gauge();
  return future;
}

void WorkerPool::worker_loop(Shard& shard) {
  obs::LatencyHistogram& queue_hist = obs::registry().histogram("service.queue_wait");
  obs::LatencyHistogram& execute_hist = obs::registry().histogram("service.execute");
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&] {
        return !shard.queue.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (shard.queue.empty()) return;  // stopping and fully drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    total_depth_.fetch_sub(1, std::memory_order_relaxed);
    update_depth_gauge();

    const double queue_ms = job.request.age_ms();
    queue_hist.record_ns(static_cast<std::uint64_t>(queue_ms * 1e6));
    Response response;
    if (job.request.expired()) {
      // Stale at dequeue: its whole budget was burned in the queue.
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      response = Response::failure(
          job.request.id, ErrorCode::DeadlineExceeded,
          "deadline of " + json_number(job.request.deadline_ms) +
              " ms exceeded (" + json_number(queue_ms) + " ms in queue)");
      response.span = {job.trace_id, job.request.cmd, queue_ms, 0.0};
    } else {
      const auto exec_start = std::chrono::steady_clock::now();
      response = service_.execute(job.request);
      const auto exec_end = std::chrono::steady_clock::now();
      const double execute_ms = ms_between(exec_start, exec_end);
      execute_hist.record_ns(static_cast<std::uint64_t>(execute_ms * 1e6));
      executed_.fetch_add(1, std::memory_order_relaxed);
      // EWMA (α = 1/8) of service time, the retry-after currency.
      const auto ns = static_cast<std::uint64_t>(execute_ms * 1e6);
      std::uint64_t avg = shard.avg_execute_ns.load(std::memory_order_relaxed);
      shard.avg_execute_ns.store(avg - avg / 8 + ns / 8, std::memory_order_relaxed);
      response.span = {job.trace_id, job.request.cmd, queue_ms, execute_ms};
    }
    job.promise.set_value(std::move(response));
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    {
      // Notify under the mutex: a drain() that read a non-zero count is
      // guaranteed to be waiting (or about to re-check) when this fires.
      const std::lock_guard<std::mutex> lock(drain_mutex_);
      drain_cv_.notify_all();
    }
  }
}

void WorkerPool::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock,
                 [&] { return inflight_.load(std::memory_order_relaxed) == 0; });
}

}  // namespace spsta::service
