/// \file client.hpp
/// Socket client for the analysis service (DESIGN.md §15): connects to a
/// SocketServer (or `spsta_serviced --listen`), speaks either JSON lines
/// or the length-prefixed binary frame protocol, and hands back responses
/// in submission order together with any waveform sidecar frames.
///
/// Threading contract: one thread may send() while another thread recv()s
/// (the socket is full duplex and the send/receive paths share no state);
/// neither side is safe for two concurrent callers.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/frame.hpp"
#include "service/transport/socket.hpp"

namespace spsta::service::transport {

/// One received response: the JSON document (no trailing newline) plus
/// any binary waveform sidecars that followed it (frame mode only; the
/// JSON's `waveform_frames` field says how many to expect).
struct ClientReply {
  std::string line;
  std::vector<std::vector<double>> waveforms;
};

class SocketClient {
 public:
  /// Not yet connected; call connect().
  SocketClient() = default;

  /// Connects to host:port. \p binary_frames negotiates frame mode by
  /// sending kFrameMagic as the first bytes. False + error() on failure.
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port,
                             bool binary_frames);

  /// Sends one request document (a JSON line WITHOUT the newline; the
  /// client adds the newline or the frame header as the mode requires).
  [[nodiscard]] bool send(std::string_view request);

  /// Receives the next response in order. nullopt on EOF or a transport
  /// error (error() distinguishes them: orderly EOF leaves it empty).
  [[nodiscard]] std::optional<ClientReply> recv();

  /// Half-closes the send side so the server sees EOF and drains; recv()
  /// keeps working for the responses still in flight.
  void finish_sending();

  void close() { fd_.reset(); }
  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
  [[nodiscard]] bool binary_frames() const noexcept { return binary_frames_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  /// Reads until the decoder yields a frame (frame mode). nullopt on EOF.
  [[nodiscard]] std::optional<Frame> next_frame();

  ScopedFd fd_;
  bool binary_frames_ = false;
  std::string error_;
  std::string line_buffer_;  ///< line mode: bytes past the last newline
  FrameDecoder decoder_;     ///< frame mode
};

/// Extracts the `waveform_frames` sidecar count from a response document
/// (0 when absent). Exposed for the transport tests.
[[nodiscard]] std::size_t waveform_frame_count(std::string_view response_line);

}  // namespace spsta::service::transport
