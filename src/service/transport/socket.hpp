/// \file socket.hpp
/// Minimal POSIX TCP plumbing shared by the socket server, the socket
/// client and the load harness (DESIGN.md §15). Everything here is
/// robustness-first: partial reads/writes are handled, EINTR is retried,
/// SIGPIPE is never raised (writes use MSG_NOSIGNAL and ignore_sigpipe()
/// is belt-and-braces for platforms without it), and every failure is
/// reported as a value, not an exception — a vanished peer is a normal
/// event for a server.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <utility>

namespace spsta::service::transport {

/// Installs SIG_IGN for SIGPIPE once per process (idempotent, thread-safe).
/// A write to a half-closed socket must surface as EPIPE, never kill the
/// daemon.
void ignore_sigpipe();

/// "HOST:PORT" (e.g. "127.0.0.1:9000", ":0" for any-port loopback,
/// "[::1]:9000" for IPv6 literals). nullopt when the spec does not parse.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};
[[nodiscard]] std::optional<HostPort> parse_host_port(std::string_view spec);

/// RAII file descriptor.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }
  ScopedFd(ScopedFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens on host:port (SO_REUSEADDR). Returns the listening fd
/// and the bound port (useful with port 0). On failure the fd is invalid
/// and \p error describes why.
[[nodiscard]] ScopedFd tcp_listen(const std::string& host, std::uint16_t port,
                                  std::uint16_t* bound_port, std::string* error);

/// Connects to host:port. Invalid fd + \p error on failure.
[[nodiscard]] ScopedFd tcp_connect(const std::string& host, std::uint16_t port,
                                   std::string* error);

/// Writes all of \p data, looping over partial writes. False on any
/// unrecoverable error (EPIPE, ECONNRESET, ...).
[[nodiscard]] bool write_all(int fd, const void* data, std::size_t size);

/// One read(2) with EINTR retry. >0 bytes, 0 on orderly EOF, -1 on error.
[[nodiscard]] ssize_t read_some(int fd, void* buffer, std::size_t size);

}  // namespace spsta::service::transport
