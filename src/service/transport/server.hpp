/// \file server.hpp
/// Multi-connection socket front end of the analysis service (ROADMAP
/// item 1, DESIGN.md §15): a TCP listener in front of WorkerPool::submit.
///
/// Every connection gets a reader and a writer thread; all connections
/// share ONE sharded worker pool, so the affinity routing, bounded queues
/// and admission control of DESIGN.md §13 apply across clients exactly as
/// they do within one stdio stream. Per connection:
///
///   * the protocol mode is negotiated from the first bytes: the 5-byte
///     kFrameMagic switches to length-prefixed binary frames (frame.hpp),
///     anything else is plain JSON lines — one daemon serves both kinds
///     of client at once;
///   * responses are written strictly in that connection's submission
///     order (the serve_pooled future-deque pattern), even though shards
///     complete out of order;
///   * backpressure is end-to-end: the reorder deque is bounded, a full
///     deque stops the reader, a full socket send buffer blocks the
///     writer — a slow client throttles only itself;
///   * oversized lines/frames are rejected from the header alone (the
///     8 MiB kMaxRequestBytes cap holds BEFORE any payload allocation)
///     with a structured `bad_request`, and malformed frames never kill
///     the daemon;
///   * a vanished client (write error, EOF mid-frame) sheds only its own
///     connection: its in-flight requests still execute, their responses
///     are discarded, every other connection is untouched;
///   * shutdown (a `shutdown` request or stop()) is a graceful drain:
///     the listener closes, reads stop, every already-submitted request
///     is answered, then connections close.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "service/transport/socket.hpp"
#include "service/worker_pool.hpp"

namespace spsta::service::transport {

struct SocketServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;            ///< 0 = ephemeral (see SocketServer::port)
  unsigned workers = 0;              ///< pool shards (0 = hardware)
  std::size_t queue_capacity = 256;  ///< per-shard bounded queue
  /// Per-connection reorder-deque bound (0 = 2 * shards * queue_capacity
  /// + 64, the serve_pooled backstop).
  std::size_t max_pending = 0;
};

struct SocketServerReport {
  std::uint64_t connections = 0;       ///< accepted over the lifetime
  std::uint64_t frame_connections = 0; ///< of which negotiated binary frames
  std::uint64_t requests = 0;          ///< responses written or shed
  bool shutdown = false;               ///< stopped by a `shutdown` request
};

class SocketServer {
 public:
  SocketServer(AnalysisService& service, SocketServerOptions options = {});
  /// Joins everything; equivalent to stop() + the tail of serve().
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens. Throws std::runtime_error when the address is
  /// unusable. Returns the bound port (resolves port 0).
  std::uint16_t listen();

  /// Accept loop: serves until a `shutdown` request or stop(), then
  /// drains every connection and returns. Call listen() first.
  SocketServerReport serve();

  /// Requests a graceful stop from any thread (idempotent).
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const WorkerPool& pool() const noexcept { return pool_; }
  [[nodiscard]] WorkerPool& pool() noexcept { return pool_; }

 private:
  struct Connection;

  void serve_connection(const std::shared_ptr<Connection>& conn);
  void write_loop(const std::shared_ptr<Connection>& conn);
  /// Joins finished connection threads; \p all also joins live ones
  /// (after shutting their reads down for a graceful drain).
  void reap_connections(bool all);

  AnalysisService& service_;
  SocketServerOptions options_;
  WorkerPool pool_;
  std::size_t max_pending_ = 0;
  ScopedFd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> frame_connections_{0};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace spsta::service::transport
