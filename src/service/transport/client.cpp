#include "service/transport/client.hpp"

#include <cctype>
#include <charconv>
#include <cstring>

#include <sys/socket.h>

namespace spsta::service::transport {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

bool SocketClient::connect(const std::string& host, std::uint16_t port,
                           bool binary_frames) {
  error_.clear();
  line_buffer_.clear();
  fd_ = tcp_connect(host, port, &error_);
  if (!fd_.valid()) return false;
  binary_frames_ = binary_frames;
  if (binary_frames_ &&
      !write_all(fd_.get(), kFrameMagic, sizeof(kFrameMagic))) {
    error_ = "cannot send frame magic";
    fd_.reset();
    return false;
  }
  return true;
}

bool SocketClient::send(std::string_view request) {
  if (!fd_.valid()) {
    error_ = "not connected";
    return false;
  }
  std::string wire;
  if (binary_frames_) {
    append_frame(wire, FrameKind::Json, request);
  } else {
    wire.assign(request);
    wire.push_back('\n');
  }
  if (!write_all(fd_.get(), wire.data(), wire.size())) {
    error_ = "send failed: " + std::string(std::strerror(errno));
    return false;
  }
  return true;
}

void SocketClient::finish_sending() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

std::optional<Frame> SocketClient::next_frame() {
  char chunk[kReadChunk];
  Frame frame;
  for (;;) {
    const FrameDecoder::Status status = decoder_.next(frame);
    if (status == FrameDecoder::Status::Ready) return frame;
    if (status == FrameDecoder::Status::BadFrame) {
      error_ = "malformed frame from server: " + decoder_.error();
      return std::nullopt;
    }
    const ssize_t n = read_some(fd_.get(), chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0) {
        error_ = "recv failed: " + std::string(std::strerror(errno));
      } else if (decoder_.mid_frame()) {
        error_ = "connection closed mid-frame";
      }
      return std::nullopt;
    }
    decoder_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
}

std::optional<ClientReply> SocketClient::recv() {
  error_.clear();
  if (!fd_.valid()) {
    error_ = "not connected";
    return std::nullopt;
  }

  if (binary_frames_) {
    std::optional<Frame> frame = next_frame();
    if (!frame) return std::nullopt;
    if (frame->kind != FrameKind::Json) {
      error_ = "expected a JSON response frame, got a waveform frame";
      return std::nullopt;
    }
    ClientReply reply;
    reply.line = std::move(frame->payload);
    const std::size_t sidecars = waveform_frame_count(reply.line);
    reply.waveforms.reserve(sidecars);
    for (std::size_t i = 0; i < sidecars; ++i) {
      std::optional<Frame> sidecar = next_frame();
      if (!sidecar) {
        if (error_.empty()) error_ = "connection closed before sidecar frames";
        return std::nullopt;
      }
      if (sidecar->kind != FrameKind::Waveform) {
        error_ = "expected a waveform sidecar frame";
        return std::nullopt;
      }
      reply.waveforms.push_back(decode_waveform(sidecar->payload));
    }
    return reply;
  }

  char chunk[kReadChunk];
  for (;;) {
    const std::size_t nl = line_buffer_.find('\n');
    if (nl != std::string::npos) {
      ClientReply reply;
      reply.line = line_buffer_.substr(0, nl);
      line_buffer_.erase(0, nl + 1);
      if (!reply.line.empty() && reply.line.back() == '\r') {
        reply.line.pop_back();
      }
      return reply;
    }
    const ssize_t n = read_some(fd_.get(), chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0) {
        error_ = "recv failed: " + std::string(std::strerror(errno));
      } else if (!line_buffer_.empty()) {
        error_ = "connection closed mid-line";
      }
      return std::nullopt;
    }
    line_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::size_t waveform_frame_count(std::string_view response_line) {
  // The service emits compact JSON, so the sidecar count is findable
  // without a full parse — the key cannot appear inside any value the
  // service produces.
  static constexpr std::string_view kKey = "\"waveform_frames\":";
  const std::size_t at = response_line.find(kKey);
  if (at == std::string_view::npos) return 0;
  std::size_t pos = at + kKey.size();
  while (pos < response_line.size() &&
         std::isspace(static_cast<unsigned char>(response_line[pos]))) {
    ++pos;
  }
  std::size_t value = 0;
  const auto* begin = response_line.data() + pos;
  const auto* end = response_line.data() + response_line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc()) return 0;
  return value;
}

}  // namespace spsta::service::transport
