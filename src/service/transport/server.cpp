#include "service/transport/server.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/socket.h>

#include "obs/metrics.hpp"
#include "service/frame.hpp"

namespace spsta::service::transport {

namespace {

/// Accept-loop poll granularity: how quickly stop() / a shutdown request
/// served on another thread is noticed.
constexpr int kAcceptPollMs = 50;

/// Read chunk. Small enough to keep per-connection memory modest, large
/// enough that bulk frame payloads stream in few syscalls.
constexpr std::size_t kReadChunk = 64 * 1024;

bool blank_line(std::string_view line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// An already-resolved response as a future, so synthesized errors (bad
/// frames, oversized lines) slot into the in-order reorder deque like any
/// pooled response.
std::future<Response> ready_response(Response response) {
  std::promise<Response> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace

/// Per-connection state. The reader thread owns the receive side and the
/// negotiated mode; `mutex` guards the reorder deque and the eof/dead
/// flags shared with the writer thread.
struct SocketServer::Connection {
  ScopedFd fd;
  bool frame_mode = false;  ///< written by the reader before the writer starts

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::future<Response>> pending;
  bool eof = false;   ///< reader submitted its last request
  bool dead = false;  ///< write failed; responses are drained, not written

  std::thread reader;              ///< joined by reap_connections
  std::atomic<bool> done{false};   ///< reader (and writer) fully finished

  /// Stops the receive side so a blocked read returns: used by the writer
  /// on write failure and by the graceful drain. Takes the mutex because
  /// the drain path races the reader thread closing its own fd — without
  /// it a shutdown() could land on a recycled descriptor number.
  void shut_read() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (fd.valid()) ::shutdown(fd.get(), SHUT_RD);
  }
};

SocketServer::SocketServer(AnalysisService& service, SocketServerOptions options)
    : service_(service),
      options_(std::move(options)),
      pool_(service, {options_.workers, options_.queue_capacity}) {
  max_pending_ = options_.max_pending != 0
                     ? options_.max_pending
                     : 2 * pool_.shards() * pool_.queue_capacity() + 64;
}

SocketServer::~SocketServer() {
  stop();
  reap_connections(/*all=*/true);
}

std::uint16_t SocketServer::listen() {
  std::string error;
  listen_fd_ = tcp_listen(options_.host, options_.port, &port_, &error);
  if (!listen_fd_.valid()) {
    throw std::runtime_error("cannot listen on " + options_.host + ":" +
                             std::to_string(options_.port) + " (" + error + ")");
  }
  return port_;
}

void SocketServer::stop() { stop_.store(true, std::memory_order_release); }

void SocketServer::reap_connections(bool all) {
  std::vector<std::shared_ptr<Connection>> joinable;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      const bool take = all || (*it)->done.load(std::memory_order_acquire);
      if (take) {
        joinable.push_back(*it);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : joinable) {
    if (all) conn->shut_read();  // graceful: stop reads, drain writes
    if (conn->reader.joinable()) conn->reader.join();
  }
}

SocketServerReport SocketServer::serve() {
  while (!stop_.load(std::memory_order_acquire) && !service_.shutdown_requested()) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kAcceptPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reap_connections(/*all=*/false);
    if (rc == 0) continue;
    ScopedFd fd(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!fd.valid()) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("service.transport.connections").add();
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(fd);
    {
      const std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { serve_connection(conn); });
  }
  // Graceful drain: no new connections, no new requests, but every
  // already-submitted request is answered before connections close.
  listen_fd_.reset();
  reap_connections(/*all=*/true);
  pool_.drain();
  return {connections_.load(std::memory_order_relaxed),
          frame_connections_.load(std::memory_order_relaxed),
          requests_.load(std::memory_order_relaxed),
          service_.shutdown_requested()};
}

void SocketServer::write_loop(const std::shared_ptr<Connection>& conn) {
  obs::LatencyHistogram& serialize_hist =
      obs::registry().histogram("service.serialize");
  for (;;) {
    std::future<Response> next;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock, [&] { return !conn->pending.empty() || conn->eof; });
      if (conn->pending.empty()) return;  // eof and fully drained
      next = std::move(conn->pending.front());
      conn->pending.pop_front();
      conn->cv.notify_all();  // reader may be blocked on backpressure
    }
    // Block outside the lock: the response completes in shard order, the
    // deque order preserves the connection's submission order.
    const Response response = next.get();
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->dead) continue;  // drain without writing
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::string wire;
    if (conn->frame_mode) {
      append_frame(wire, FrameKind::Json, response.to_line());
      for (const std::vector<double>& waveform : response.waveforms) {
        append_waveform_frame(wire, waveform);
      }
    } else {
      wire = response.to_line();
      wire.push_back('\n');
    }
    const bool wrote = write_all(conn->fd.get(), wire.data(), wire.size());
    serialize_hist.record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    if (!wrote) {
      // The client is gone or unwritable: shed exactly this connection.
      // Remaining futures are drained (their work still completes and
      // resolves the pool's inflight accounting) but nothing is written.
      obs::registry().counter("service.transport.client_write_errors").add();
      {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        conn->dead = true;
        conn->cv.notify_all();
      }
      conn->shut_read();  // locks the mutex itself
    }
  }
}

void SocketServer::serve_connection(const std::shared_ptr<Connection>& conn) {
  std::thread writer([this, conn] { write_loop(conn); });

  /// Enqueues one response-to-be in submission order, honoring the
  /// reorder-deque bound (write backpressure: a full deque pauses reads).
  const auto enqueue = [&](std::future<Response> future) {
    std::unique_lock<std::mutex> lock(conn->mutex);
    conn->cv.wait(lock, [&] {
      return conn->pending.size() < max_pending_ || conn->dead;
    });
    if (conn->dead) return false;
    conn->pending.push_back(std::move(future));
    conn->cv.notify_all();
    requests_.fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  const auto enqueue_bad_request = [&](const std::string& message) {
    return enqueue(ready_response(
        Response::failure(Json(), ErrorCode::BadRequest, message)));
  };

  std::string buffer;
  bool negotiated = false;
  bool line_discarding = false;  ///< inside an over-cap line, pre-newline
  FrameDecoder decoder;
  std::vector<char> chunk(kReadChunk);

  for (;;) {
    const ssize_t n = read_some(conn->fd.get(), chunk.data(), chunk.size());
    if (n <= 0) break;  // EOF or error: stop reading, drain writes below
    std::string_view bytes(chunk.data(), static_cast<std::size_t>(n));

    if (!negotiated) {
      buffer.append(bytes);
      if (buffer.front() == kFrameMagic[0]) {
        if (buffer.size() < sizeof(kFrameMagic)) continue;  // magic incomplete
        if (std::memcmp(buffer.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
          enqueue_bad_request("unrecognized connection magic");
          break;
        }
        conn->frame_mode = true;
        frame_connections_.fetch_add(1, std::memory_order_relaxed);
        decoder.feed(std::string_view(buffer).substr(sizeof(kFrameMagic)));
        buffer.clear();
      }
      negotiated = true;
      bytes = {};  // already buffered / fed
    }

    bool conn_dead = false;
    if (conn->frame_mode) {
      decoder.feed(bytes);
      Frame frame;
      for (;;) {
        const FrameDecoder::Status status = decoder.next(frame);
        if (status == FrameDecoder::Status::NeedMore) break;
        if (status == FrameDecoder::Status::BadFrame) {
          // Malformed frame: structured answer, connection stays up (the
          // length prefix kept the stream in sync).
          if (!enqueue_bad_request(decoder.error())) conn_dead = true;
        } else if (frame.kind == FrameKind::Waveform) {
          if (!enqueue_bad_request(
                  "unexpected waveform frame (requests are JSON frames)")) {
            conn_dead = true;
          }
        } else {
          if (!enqueue(pool_.submit(std::move(frame.payload),
                                    std::chrono::steady_clock::now(),
                                    /*binary_frames=*/true))) {
            conn_dead = true;
          }
        }
        if (conn_dead) break;
      }
    } else {
      if (!bytes.empty()) buffer.append(bytes);
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        std::string_view line(buffer.data() + start, nl - start);
        start = nl + 1;
        if (line_discarding) {
          line_discarding = false;  // tail of an already-rejected line
          continue;
        }
        if (blank_line(line)) continue;
        if (!enqueue(pool_.submit(std::string(line),
                                  std::chrono::steady_clock::now(),
                                  /*binary_frames=*/false))) {
          conn_dead = true;
          break;
        }
      }
      buffer.erase(0, start);
      // Cap enforcement before the newline arrives: a partial line beyond
      // kMaxRequestBytes is rejected now and discarded as it streams in,
      // so a runaway client cannot balloon the connection buffer.
      if (!line_discarding && buffer.size() > kMaxRequestBytes) {
        if (!enqueue_bad_request(
                "request line exceeds the " + std::to_string(kMaxRequestBytes) +
                " byte limit")) {
          conn_dead = true;
        }
        buffer.clear();
        line_discarding = true;
      } else if (line_discarding) {
        buffer.clear();
      }
    }
    if (conn_dead) break;
    // Stop reading new requests once a shutdown was served; queued work
    // still drains through the writer.
    if (service_.shutdown_requested() || stop_.load(std::memory_order_acquire)) {
      break;
    }
  }

  {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    conn->eof = true;
    conn->cv.notify_all();
  }
  writer.join();
  {
    // Under the mutex: the drain path's shut_read may be inspecting the fd.
    const std::lock_guard<std::mutex> lock(conn->mutex);
    conn->fd.reset();
  }
  conn->done.store(true, std::memory_order_release);
}

}  // namespace spsta::service::transport
