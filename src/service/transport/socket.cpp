#include "service/transport/socket.hpp"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <mutex>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

namespace spsta::service::transport {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// getaddrinfo over (host, port); invokes \p try_fd on each candidate
/// until one yields a valid socket. \p passive selects AI_PASSIVE.
template <typename TryFd>
ScopedFd resolve_and(const std::string& host, std::uint16_t port, bool passive,
                     std::string* error, TryFd&& try_fd) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* list = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str.c_str(), &hints, &list);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    }
    return ScopedFd();
  }
  ScopedFd fd;
  std::string last_error = "no usable address for '" + host + "'";
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = try_fd(*ai, last_error);
    if (fd.valid()) break;
  }
  ::freeaddrinfo(list);
  if (!fd.valid() && error != nullptr) *error = std::move(last_error);
  return fd;
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

std::optional<HostPort> parse_host_port(std::string_view spec) {
  std::size_t colon;
  HostPort result;
  if (!spec.empty() && spec.front() == '[') {
    // Bracketed IPv6 literal: [::1]:9000.
    const std::size_t close = spec.find(']');
    if (close == std::string_view::npos || close + 1 >= spec.size() ||
        spec[close + 1] != ':') {
      return std::nullopt;
    }
    result.host = std::string(spec.substr(1, close - 1));
    colon = close + 1;
  } else {
    colon = spec.rfind(':');
    if (colon == std::string_view::npos) return std::nullopt;
    result.host = std::string(spec.substr(0, colon));
  }
  if (result.host.empty()) result.host = "127.0.0.1";
  const std::string_view port_str = spec.substr(colon + 1);
  unsigned port = 0;
  const auto [end, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(), port);
  if (ec != std::errc() || end != port_str.data() + port_str.size() ||
      port > 65535) {
    return std::nullopt;
  }
  result.port = static_cast<std::uint16_t>(port);
  return result;
}

void ScopedFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

ScopedFd tcp_listen(const std::string& host, std::uint16_t port,
                    std::uint16_t* bound_port, std::string* error) {
  ignore_sigpipe();
  ScopedFd fd = resolve_and(
      host, port, /*passive=*/true, error,
      [&](const addrinfo& ai, std::string& last_error) -> ScopedFd {
        ScopedFd candidate(::socket(ai.ai_family, ai.ai_socktype, ai.ai_protocol));
        if (!candidate.valid()) {
          last_error = errno_string("socket");
          return ScopedFd();
        }
        const int one = 1;
        ::setsockopt(candidate.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(candidate.get(), ai.ai_addr, ai.ai_addrlen) != 0) {
          last_error = errno_string("bind");
          return ScopedFd();
        }
        if (::listen(candidate.get(), SOMAXCONN) != 0) {
          last_error = errno_string("listen");
          return ScopedFd();
        }
        return candidate;
      });
  if (fd.valid() && bound_port != nullptr) {
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      if (addr.ss_family == AF_INET) {
        *bound_port = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
      } else if (addr.ss_family == AF_INET6) {
        *bound_port = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
      }
    }
  }
  return fd;
}

ScopedFd tcp_connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  ignore_sigpipe();
  return resolve_and(
      host, port, /*passive=*/false, error,
      [&](const addrinfo& ai, std::string& last_error) -> ScopedFd {
        ScopedFd candidate(::socket(ai.ai_family, ai.ai_socktype, ai.ai_protocol));
        if (!candidate.valid()) {
          last_error = errno_string("socket");
          return ScopedFd();
        }
        if (::connect(candidate.get(), ai.ai_addr, ai.ai_addrlen) != 0) {
          last_error = errno_string("connect");
          return ScopedFd();
        }
        const int one = 1;
        ::setsockopt(candidate.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return candidate;
      });
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t read_some(int fd, void* buffer, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

}  // namespace spsta::service::transport
