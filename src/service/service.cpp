#include "service/service.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "netlist/bench_io.hpp"
#include "netlist/graph.hpp"
#include "netlist/hier_bench_io.hpp"
#include "netlist/iscas89.hpp"
#include "netlist/verilog_io.hpp"
#include "obs/metrics.hpp"

namespace spsta::service {

namespace {

using netlist::NodeId;

/// Internal control-flow error: handlers throw it, execute() converts it
/// into a structured failure response.
struct ServiceError {
  ErrorCode code;
  std::string message;
};

[[noreturn]] void fail(ErrorCode code, std::string message) {
  throw ServiceError{code, std::move(message)};
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Engine require_engine(std::string_view name) {
  if (const std::optional<Engine> engine = spsta::parse_engine(name)) return *engine;
  fail(ErrorCode::UnknownEngine,
       "unknown engine '" + std::string(name) +
           "' (expected spsta_moment|spsta_numeric|canonical|ssta|mc)");
}

double number_field(const Json& object, std::string_view key, double fallback,
                    double lo, double hi) {
  const Json* v = object.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    fail(ErrorCode::BadParams, "'" + std::string(key) + "' must be a number");
  }
  const double x = v->as_number();
  if (!(x >= lo && x <= hi)) {
    fail(ErrorCode::BadParams, "'" + std::string(key) + "' out of range");
  }
  return x;
}

AnalyzeParams parse_params(const Json& body) {
  AnalyzeParams p;
  const Json* params = body.find("params");
  if (params == nullptr) return p;
  if (!params->is_object()) {
    fail(ErrorCode::BadParams, "'params' must be an object");
  }
  // Only client-supplied fields are set on the request: unset optionals
  // take the engine defaults, and a supplied field the engine cannot honor
  // is rejected by Analyzer::validate in ensure_analysis.
  if (params->find("threads") != nullptr) {
    p.request.threads =
        static_cast<unsigned>(number_field(*params, "threads", 1, 0, 1024));
  }
  if (params->find("grid_dt") != nullptr) {
    p.request.grid_dt = number_field(*params, "grid_dt", 0.05, 1e-6, 1e6);
  }
  if (params->find("grid_pad_sigma") != nullptr) {
    p.request.grid_pad_sigma = number_field(*params, "grid_pad_sigma", 8.0, 0, 64);
  }
  if (params->find("max_grid_points") != nullptr) {
    p.request.max_grid_points = static_cast<std::size_t>(
        number_field(*params, "max_grid_points", 4096, 2, 1 << 22));
  }
  if (params->find("runs") != nullptr) {
    p.request.runs =
        static_cast<std::uint64_t>(number_field(*params, "runs", 10000, 1, 1e9));
  }
  if (params->find("seed") != nullptr) {
    p.request.seed = static_cast<std::uint64_t>(
        number_field(*params, "seed", 1, 0, 9.007199254740992e15));
  }
  for (const Json::Member& m : params->as_object()) {
    if (m.first != "threads" && m.first != "grid_dt" && m.first != "grid_pad_sigma" &&
        m.first != "max_grid_points" && m.first != "runs" && m.first != "seed") {
      fail(ErrorCode::BadParams, "unknown parameter '" + m.first + "'");
    }
  }
  return p;
}

Engine engine_of(const Json& body, Engine fallback = Engine::SpstaMoment) {
  const Json* engine = body.find("engine");
  if (engine == nullptr) return fallback;
  if (!engine->is_string()) fail(ErrorCode::BadParams, "'engine' must be a string");
  return require_engine(engine->as_string());
}

/// Resolves a "node" field (name string or integer id) against the design.
NodeId resolve_node(const Session& session, const Json& value) {
  if (value.is_string()) {
    const NodeId id = session.design().find(value.as_string());
    if (id == netlist::kInvalidNode) {
      fail(ErrorCode::UnknownNode, "no node named '" + value.as_string() + "'");
    }
    return id;
  }
  if (value.is_number()) {
    const double x = value.as_number();
    if (x < 0 || x != std::floor(x) ||
        x >= static_cast<double>(session.design().node_count())) {
      fail(ErrorCode::UnknownNode,
           "node id " + json_number(x) + " out of range [0, " +
               std::to_string(session.design().node_count()) + ")");
    }
    return static_cast<NodeId>(x);
  }
  fail(ErrorCode::BadParams, "'node' must be a name or an integer id");
}

Json direction_json(double p, double mean, double stddev) {
  Json j = Json::object();
  j.set("p", Json(p));
  j.set("mean", Json(mean));
  j.set("std", Json(stddev));
  return j;
}

Json probs_json(const netlist::FourValueProbs& probs) {
  Json j = Json::object();
  j.set("p0", Json(probs.p0));
  j.set("p1", Json(probs.p1));
  j.set("pr", Json(probs.pr));
  j.set("pf", Json(probs.pf));
  return j;
}

/// Moment-engine node state as the engine-agnostic stats shape — shared by
/// the warm-query fast path and probe result rendering.
Json node_top_json(const core::NodeTop& top) {
  Json j = Json::object();
  j.set("probs", probs_json(top.probs));
  j.set("rise", direction_json(top.rise.mass, top.rise.arrival.mean,
                               top.rise.arrival.stddev()));
  j.set("fall", direction_json(top.fall.mass, top.fall.arrival.mean,
                               top.fall.arrival.stddev()));
  return j;
}

/// Per-node stats of a cached analysis, engine-agnostic shape:
/// {probs?, rise:{p,mean,std}, fall:{p,mean,std}}.
Json node_stats_json(const CachedAnalysis& analysis, NodeId id) {
  Json j = Json::object();
  if (const auto* moment = std::get_if<core::SpstaResult>(&analysis.result)) {
    const core::NodeTop& top = moment->node.at(id);
    j.set("probs", probs_json(top.probs));
    j.set("rise", direction_json(top.rise.mass, top.rise.arrival.mean,
                                 top.rise.arrival.stddev()));
    j.set("fall", direction_json(top.fall.mass, top.fall.arrival.mean,
                                 top.fall.arrival.stddev()));
  } else if (const auto* numeric =
                 std::get_if<core::SpstaNumericResult>(&analysis.result)) {
    const core::NodeTopDensity& top = numeric->node.at(id);
    j.set("probs", probs_json(top.probs));
    j.set("rise", direction_json(top.rise.mass(), top.rise.mean(), top.rise.stddev()));
    j.set("fall", direction_json(top.fall.mass(), top.fall.mean(), top.fall.stddev()));
  } else if (const auto* canonical =
                 std::get_if<core::SpstaCanonicalResult>(&analysis.result)) {
    const core::NodeCanonicalTop& top = canonical->node.at(id);
    j.set("probs", probs_json(top.probs));
    j.set("rise", direction_json(top.rise.mass, top.rise.arrival.mean(),
                                 std::sqrt(top.rise.arrival.variance())));
    j.set("fall", direction_json(top.fall.mass, top.fall.arrival.mean(),
                                 std::sqrt(top.fall.arrival.variance())));
  } else if (const auto* arrivals = std::get_if<ssta::SstaResult>(&analysis.result)) {
    const spsta::ssta::NodeArrival& a = arrivals->arrival.at(id);
    j.set("rise", direction_json(1.0, a.rise.mean, a.rise.stddev()));
    j.set("fall", direction_json(1.0, a.fall.mean, a.fall.stddev()));
  } else if (const auto* sampled = std::get_if<mc::MonteCarloResult>(&analysis.result)) {
    const spsta::mc::NodeEstimate& e = sampled->node.at(id);
    j.set("probs", probs_json(e.probs()));
    j.set("rise", direction_json(e.rise_probability(), e.rise_time.mean(),
                                 std::sqrt(e.rise_time.variance())));
    j.set("fall", direction_json(e.fall_probability(), e.fall_time.mean(),
                                 std::sqrt(e.fall_time.variance())));
  }
  return j;
}

/// Endpoint summary + worst endpoint (by mean arrival over both
/// directions, transitions with vanishing probability excluded).
Json endpoints_json(const Session& session, const CachedAnalysis& analysis) {
  Json endpoints = Json::array();
  double worst_mean = -1e300;
  Json worst;
  for (const NodeId ep : session.design().timing_endpoints()) {
    Json row = node_stats_json(analysis, ep);
    row.set("node", Json(static_cast<std::uint64_t>(ep)));
    row.set("name", Json(session.design().node(ep).name));
    for (const bool rising : {true, false}) {
      const Json* dir = row.find(rising ? "rise" : "fall");
      if (dir == nullptr) continue;
      const double p = dir->find("p")->as_number();
      const double mean = dir->find("mean")->as_number();
      if (p >= 1e-9 && mean > worst_mean) {
        worst_mean = mean;
        worst = Json::object();
        worst.set("node", Json(static_cast<std::uint64_t>(ep)));
        worst.set("name", Json(session.design().node(ep).name));
        worst.set("direction", Json(rising ? "rise" : "fall"));
        worst.set("p", Json(p));
        worst.set("mean", Json(mean));
        worst.set("std", *dir->find("std"));
      }
    }
    endpoints.push_back(std::move(row));
  }
  Json j = Json::object();
  j.set("endpoints", std::move(endpoints));
  if (!worst.is_null()) j.set("worst", std::move(worst));
  return j;
}

struct LoadedText {
  std::string format;  ///< "bench" | "verilog" | "circuit"
  std::string content; ///< text, or the builtin circuit name
};

std::string infer_format(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".bench") return "bench";
  if (ext == ".hbench") return "hier";
  if (ext == ".v" || ext == ".verilog") return "verilog";
  fail(ErrorCode::BadParams,
       "cannot infer format from '" + path + "'; pass \"format\"");
}

/// Boundary state of one hierarchical signal, the same engine-agnostic
/// shape node_stats_json renders for flat analyses.
Json port_top_json(const hier::PortTop& top) {
  Json j = Json::object();
  j.set("probs", probs_json(top.probs));
  j.set("rise", direction_json(top.rise.mass, top.rise.arrival.mean,
                               top.rise.arrival.stddev()));
  j.set("fall", direction_json(top.fall.mass, top.fall.arrival.mean,
                               top.fall.arrival.stddev()));
  return j;
}

/// Hierarchical counterpart of endpoints_json: one row per top output,
/// same worst-endpoint rule (max mean arrival, vanishing mass excluded).
Json hier_endpoints_json(const hier::HierReport& report) {
  Json endpoints = Json::array();
  double worst_mean = -1e300;
  Json worst;
  for (const std::size_t sig : report.outputs) {
    const hier::PortTop& top = report.signals.at(sig);
    const std::string& name = report.signal_names.at(sig);
    Json row = port_top_json(top);
    row.set("name", Json(name));
    for (const bool rising : {true, false}) {
      const core::TransitionTop& t = rising ? top.rise : top.fall;
      if (t.mass >= 1e-9 && t.arrival.mean > worst_mean) {
        worst_mean = t.arrival.mean;
        worst = Json::object();
        worst.set("name", Json(name));
        worst.set("direction", Json(rising ? "rise" : "fall"));
        worst.set("p", Json(t.mass));
        worst.set("mean", Json(t.arrival.mean));
        worst.set("std", Json(t.arrival.stddev()));
      }
    }
    endpoints.push_back(std::move(row));
  }
  Json j = Json::object();
  j.set("endpoints", std::move(endpoints));
  if (!worst.is_null()) j.set("worst", std::move(worst));
  return j;
}

/// Sheds a request whose deadline lapsed while it waited — called by the
/// heavy handlers right after they win the session mutex, the second shed
/// point the dispatch-time check cannot cover (ISSUE 6 satellite).
void check_deadline(const Request& request) {
  if (request.expired()) {
    fail(ErrorCode::DeadlineExceeded,
         "deadline of " + json_number(request.deadline_ms) +
             " ms exceeded at execute start (" + json_number(request.age_ms()) +
             " ms since enqueue)");
  }
}

}  // namespace

std::uint64_t load_content_hash(std::string_view format,
                                std::string_view content) noexcept {
  return fnv1a64(content, fnv1a64(format) * 0x9e3779b97f4a7c15ull + 1);
}

Json metrics_json() {
  const obs::Snapshot snap = obs::registry().snapshot();
  Json j = Json::object();
  j.set("enabled", Json(snap.enabled));
  Json counters = Json::object();
  for (const auto& c : snap.counters) counters.set(c.name, Json(c.value));
  j.set("counters", std::move(counters));
  if (!snap.gauges.empty()) {
    Json gauges = Json::object();
    for (const auto& g : snap.gauges) gauges.set(g.name, Json::number_or_null(g.value));
    j.set("gauges", std::move(gauges));
  }
  Json stages = Json::object();
  for (const auto& h : snap.histograms) {
    Json s = Json::object();
    s.set("count", Json(h.count));
    s.set("total_ms", Json(static_cast<double>(h.total_ns) * 1e-6));
    s.set("max_ms", Json(static_cast<double>(h.max_ns) * 1e-6));
    Json buckets = Json::array();
    for (const auto& b : h.buckets) {
      Json row = Json::object();
      // Overflow bucket: upper bound is unbounded -> null.
      row.set("le_us", b.upper_us == UINT64_MAX ? Json(nullptr) : Json(b.upper_us));
      row.set("count", Json(b.count));
      buckets.push_back(std::move(row));
    }
    s.set("buckets", std::move(buckets));
    stages.set(h.name, std::move(s));
  }
  j.set("stages", std::move(stages));
  return j;
}

std::string AnalyzeParams::cache_key(Engine engine) const {
  // Normalized values (supplied-or-default), so an explicit default and an
  // omitted field share the cache entry.
  std::string key{to_string(engine)};
  switch (engine) {
    case Engine::SpstaNumeric: {
      const core::SpstaOptions defaults;
      key += "|dt=" + json_number(request.grid_dt.value_or(defaults.grid_dt)) +
             "|pad=" +
             json_number(request.grid_pad_sigma.value_or(defaults.grid_pad_sigma)) +
             "|maxpts=" +
             std::to_string(request.max_grid_points.value_or(defaults.max_grid_points));
      break;
    }
    case Engine::Mc: {
      const mc::MonteCarloConfig defaults;
      key += "|runs=" + std::to_string(request.runs.value_or(defaults.runs)) +
             "|seed=" + std::to_string(request.seed.value_or(defaults.seed));
      break;
    }
    case Engine::SpstaMoment:
    case Engine::Canonical:
    case Engine::Ssta:
      break;  // no result-affecting parameters
  }
  return key;
}

AnalysisService::AnalysisService() = default;

Response AnalysisService::execute_line(std::string_view line) {
  auto parsed = parse_request(line);
  if (Response* error = std::get_if<Response>(&parsed)) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    return std::move(*error);
  }
  return execute(std::get<Request>(parsed));
}

Response AnalysisService::execute(const Request& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Response response = dispatch(request);
  if (!response.ok) errors_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

Response AnalysisService::dispatch(const Request& request) {
  try {
    if (request.cmd == "ping") return handle_ping(request);
    if (request.cmd == "load") return handle_load(request);
    if (request.cmd == "analyze") return handle_analyze(request);
    if (request.cmd == "query") return handle_query(request);
    if (request.cmd == "set_delay") return handle_set_delay(request);
    if (request.cmd == "set_source") return handle_set_source(request);
    if (request.cmd == "stats") return handle_stats(request);
    if (request.cmd == "unload") return handle_unload(request);
    if (request.cmd == "shutdown") return handle_shutdown(request);
    return Response::failure(request.id, ErrorCode::UnknownCommand,
                             "unknown command '" + request.cmd + "'");
  } catch (const ServiceError& e) {
    return Response::failure(request.id, e.code, e.message);
  } catch (const std::exception& e) {
    return Response::failure(request.id, ErrorCode::InternalError, e.what());
  } catch (...) {
    return Response::failure(request.id, ErrorCode::InternalError,
                             "unknown exception");
  }
}

std::shared_ptr<Session> AnalysisService::resolve_session(const Request& request) {
  const Json* key = request.body.find("session");
  if (key == nullptr || !key->is_string()) {
    fail(ErrorCode::BadRequest, "missing string field 'session'");
  }
  std::shared_ptr<Session> session = store_.find(key->as_string());
  if (session == nullptr) {
    fail(ErrorCode::UnknownSession, "no session '" + key->as_string() +
                                        "' (load a design first)");
  }
  return session;
}

Response AnalysisService::handle_ping(const Request& request) {
  Json result = Json::object();
  result.set("protocol", Json(1));
  Json engines = Json::array();
  for (const Engine e : {Engine::SpstaMoment, Engine::SpstaNumeric, Engine::Canonical,
                         Engine::Ssta, Engine::Mc}) {
    engines.push_back(Json(std::string(to_string(e))));
  }
  result.set("engines", std::move(engines));
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::handle_load(const Request& request) {
  const Json* circuit = request.body.find("circuit");
  const Json* text = request.body.find("text");
  const Json* path = request.body.find("path");
  const int given = (circuit != nullptr) + (text != nullptr) + (path != nullptr);
  if (given != 1) {
    fail(ErrorCode::BadRequest,
         "load needs exactly one of 'circuit', 'text', 'path'");
  }

  LoadedText source;
  if (circuit != nullptr) {
    if (!circuit->is_string()) fail(ErrorCode::BadParams, "'circuit' must be a string");
    source = {"circuit", circuit->as_string()};
  } else {
    const Json* format = request.body.find("format");
    if (format != nullptr && !format->is_string()) {
      fail(ErrorCode::BadParams, "'format' must be a string");
    }
    if (text != nullptr) {
      if (!text->is_string()) fail(ErrorCode::BadParams, "'text' must be a string");
      if (format == nullptr) fail(ErrorCode::BadParams, "'text' load needs 'format'");
      source = {format->as_string(), text->as_string()};
    } else {
      if (!path->is_string()) fail(ErrorCode::BadParams, "'path' must be a string");
      std::ifstream in(path->as_string(), std::ios::binary);
      if (!in) fail(ErrorCode::IoError, "cannot open '" + path->as_string() + "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source.format = format != nullptr ? format->as_string()
                                        : infer_format(path->as_string());
      source.content = buffer.str();
    }
    if (source.format != "bench" && source.format != "verilog" &&
        source.format != "hier") {
      fail(ErrorCode::BadParams,
           "format must be 'bench', 'verilog' or 'hier', got '" + source.format + "'");
    }
  }

  // Content hash = (format, bytes): identical content re-loads the
  // existing session without re-parsing — including content loaded by a
  // different client, which is the cross-session plan-cache hit.
  const std::uint64_t hash = load_content_hash(source.format, source.content);

  if (source.format == "hier") {
    // Hierarchical load: the factory parses the hierarchy and compiles its
    // unique blocks (through the process-wide library, so two sessions
    // sharing a block compile it once) under the same per-key latch.
    const auto make_session = [this, &source](const std::string& key) {
      try {
        netlist::HierDesign design = netlist::parse_hier_bench(source.content);
        hier::HierAnalyzerOptions options;
        options.shared_models = &block_models_;
        options.shared_blocks = &block_library_;
        return std::make_shared<Session>(key, std::move(design), options);
      } catch (const ServiceError&) {
        throw;
      } catch (const std::invalid_argument& e) {
        fail(ErrorCode::BadParams, e.what());
      } catch (const std::exception& e) {
        fail(ErrorCode::BadParams, std::string("parse failed: ") + e.what());
      }
    };
    const auto [session, fresh] = store_.load(hash, make_session);
    const netlist::HierDesign& design = session->hier_analyzer->design();
    Json result = Json::object();
    result.set("session", Json(session->key));
    result.set("name", Json(session->display_name));
    result.set("reloaded", Json(!fresh));
    result.set("hier", Json(true));
    result.set("blocks", Json(design.blocks().size()));
    result.set("instances", Json(design.instances().size()));
    result.set("inputs", Json(design.top_inputs().size()));
    result.set("outputs", Json(design.top_outputs().size()));
    result.set("expanded_gates", Json(design.expanded_gate_count()));
    result.set("expanded_nodes", Json(design.expanded_node_count()));
    result.set("expanded_dffs", Json(design.expanded_dff_count()));
    return Response::success(request.id, std::move(result));
  }

  // The parse runs inside the store's design factory: outside the store
  // mutex, and only when no session (ready or in flight) exists for the
  // hash — concurrent identical loads wait on the per-key latch and never
  // parse or compile twice.
  const auto make_design = [&source]() -> netlist::Netlist {
    try {
      if (source.format == "circuit") {
        return netlist::make_paper_circuit(source.content);
      }
      if (source.format == "bench") {
        return netlist::parse_bench(source.content);
      }
      return netlist::parse_verilog(source.content);
    } catch (const ServiceError&) {
      throw;
    } catch (const std::invalid_argument& e) {
      fail(ErrorCode::BadParams, e.what());
    } catch (const std::exception& e) {
      fail(ErrorCode::BadParams, std::string("parse failed: ") + e.what());
    }
  };

  const auto [session, fresh] = store_.load(hash, make_design, &pattern_cache_);
  Json result = Json::object();
  result.set("session", Json(session->key));
  result.set("name", Json(session->display_name));
  result.set("reloaded", Json(!fresh));
  result.set("nodes", Json(session->design().node_count()));
  result.set("gates", Json(session->design().gate_count()));
  result.set("inputs", Json(session->design().primary_inputs().size()));
  result.set("outputs", Json(session->design().primary_outputs().size()));
  result.set("dffs", Json(session->design().dffs().size()));
  result.set("sources", Json(session->design().timing_sources().size()));
  result.set("endpoints", Json(session->design().timing_endpoints().size()));
  return Response::success(request.id, std::move(result));
}

std::pair<const CachedAnalysis*, bool> AnalysisService::ensure_analysis(
    Session& session, Engine engine, const AnalyzeParams& params) {
  AnalysisRequest request = params.request;
  request.engine = engine;
  // Reject engine/option mismatches (e.g. grid_dt with the moment engine)
  // before touching counters or the cache: a request the engine cannot
  // honor must not cost an analysis.
  try {
    Analyzer::validate(request);
  } catch (const std::invalid_argument& e) {
    fail(ErrorCode::BadParams, e.what());
  }

  const std::string key = params.cache_key(engine);
  ++session.analyses;
  if (const auto it = session.cache.find(key); it != session.cache.end()) {
    ++it->second.hits;
    ++session.cache_hits;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return {&it->second, true};
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  CachedAnalysis entry;
  if (engine == Engine::SpstaMoment && session.incremental) {
    // Warm path: the incremental engine's settled state is bit-identical
    // to a fresh full run (settle_eps == 0).
    const double t0 = now_seconds();
    core::SpstaResult result;
    result.node = session.incremental->flush();
    entry.result = std::move(result);
    entry.elapsed_seconds = now_seconds() - t0;
  } else {
    AnalysisReport report = session.analyzer->run(request);
    entry.result = std::move(report.result);
    entry.elapsed_seconds = report.elapsed_seconds;
  }
  record_engine_run(engine, entry.elapsed_seconds);
  const auto [it, inserted] = session.cache.emplace(key, std::move(entry));
  (void)inserted;
  return {&it->second, false};
}

Response AnalysisService::handle_analyze(const Request& request) {
  const std::shared_ptr<Session> session_ptr = resolve_session(request);
  Session& session = *session_ptr;
  const Engine engine = engine_of(request.body);
  const AnalyzeParams params = parse_params(request.body);

  const std::lock_guard<std::mutex> lock(session.mutex);
  // Second shed point: the wait for session.mutex (another client's long
  // analysis) counts against the deadline too.
  check_deadline(request);

  if (session.is_hier()) {
    // Hierarchical path: composition through block models, cached per
    // (engine, params) like flat results. The validate step restricts the
    // engine set to the two block models exist for.
    AnalysisRequest hier_request = params.request;
    hier_request.engine = engine;
    try {
      hier::HierAnalyzer::validate(hier_request);
    } catch (const std::invalid_argument& e) {
      fail(ErrorCode::BadParams, e.what());
    }
    const std::string key = params.cache_key(engine);
    ++session.analyses;
    bool cached = true;
    auto it = session.hier_cache.find(key);
    if (it == session.hier_cache.end()) {
      cached = false;
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      hier::HierReport report = session.hier_analyzer->run(hier_request);
      record_engine_run(engine, report.elapsed_seconds);
      it = session.hier_cache.emplace(key, CachedHierAnalysis{std::move(report), 0})
               .first;
    } else {
      ++it->second.hits;
      ++session.cache_hits;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    const hier::HierReport& report = it->second.report;
    Json result = hier_endpoints_json(report);
    result.set("engine", Json(std::string(to_string(engine))));
    result.set("cached", Json(cached));
    result.set("hier", Json(true));
    result.set("elapsed_ms", Json(report.elapsed_seconds * 1e3));
    result.set("models_extracted", Json(report.models_extracted));
    result.set("model_cache_hits", Json(report.model_cache_hits));
    return Response::success(request.id, std::move(result));
  }

  const auto [analysis, cached] = ensure_analysis(session, engine, params);

  Json result = endpoints_json(session, *analysis);
  result.set("engine", Json(std::string(to_string(engine))));
  result.set("cached", Json(cached));
  result.set("eco_version", Json(session.eco_version));
  result.set("elapsed_ms", Json(analysis->elapsed_seconds * 1e3));
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::handle_query(const Request& request) {
  const std::shared_ptr<Session> session_ptr = resolve_session(request);
  Session& session = *session_ptr;
  const Engine engine = engine_of(request.body);
  const AnalyzeParams params = parse_params(request.body);
  if (session.is_hier()) {
    fail(ErrorCode::BadParams,
         "query targets flat sessions; analyze reports hierarchical endpoints");
  }
  const Json* node = request.body.find("node");
  const Json* path = request.body.find("path");
  if ((node == nullptr) == (path == nullptr)) {
    fail(ErrorCode::BadRequest, "query needs exactly one of 'node', 'path'");
  }
  if (request.body.find("density") != nullptr && node == nullptr) {
    fail(ErrorCode::BadRequest, "'density' needs a 'node' query");
  }

  const std::lock_guard<std::mutex> lock(session.mutex);
  check_deadline(request);

  // Resolve the query target *before* running any engine: a bogus node
  // must not cost an analysis (or populate the cache).
  NodeId query_node = netlist::kInvalidNode;
  if (node != nullptr) query_node = resolve_node(session, *node);

  // Warm-query fast path: once a session has taken an ECO edit, a plain
  // moment-engine node query reads the warm incremental engine directly —
  // per-node, memoized against the monotone edit epoch — instead of
  // materializing (and copying) a full SpstaResult per (engine, params)
  // cache entry. Bit-identical: the engine settles exactly (eps == 0).
  if (node != nullptr && engine == Engine::SpstaMoment && session.incremental &&
      request.body.find("density") == nullptr) {
    AnalysisRequest validate_request = params.request;
    validate_request.engine = engine;
    try {
      Analyzer::validate(validate_request);
    } catch (const std::invalid_argument& e) {
      fail(ErrorCode::BadParams, e.what());
    }
    core::IncrementalSpsta& inc = *session.incremental;
    if (session.query_cache_epoch != inc.epoch()) {
      session.query_cache.clear();
      session.query_cache_epoch = inc.epoch();
    }
    static obs::Counter& cache_hit_counter =
        obs::registry().counter("incremental.cache_hit");
    auto it = session.query_cache.find(query_node);
    const bool hit = it != session.query_cache.end();
    if (hit) {
      cache_hit_counter.add();
    } else {
      it = session.query_cache.emplace(query_node, inc.node(query_node)).first;
    }
    ++session.queries;

    Json stats = node_top_json(it->second);
    stats.set("node", Json(static_cast<std::uint64_t>(query_node)));
    stats.set("name", Json(session.design().node(query_node).name));
    stats.set("type", Json(std::string(
                          netlist::to_string(session.design().node(query_node).type))));
    Json result = Json::object();
    result.set("engine", Json(std::string(to_string(engine))));
    result.set("cached", Json(hit));
    result.set("eco_version", Json(session.eco_version));
    result.set("stats", std::move(stats));
    return Response::success(request.id, std::move(result));
  }

  const auto [analysis, cached] = ensure_analysis(session, engine, params);
  ++session.queries;

  Json result = Json::object();
  result.set("engine", Json(std::string(to_string(engine))));
  result.set("cached", Json(cached));
  result.set("eco_version", Json(session.eco_version));

  if (node != nullptr) {
    const NodeId id = query_node;
    Json stats = node_stats_json(*analysis, id);
    stats.set("node", Json(static_cast<std::uint64_t>(id)));
    stats.set("name", Json(session.design().node(id).name));
    stats.set("type",
              Json(std::string(netlist::to_string(session.design().node(id).type))));

    // Full arrival density of one transition (numeric engine only): the
    // grid spec plus every sample. On a JSON-lines connection the samples
    // are inlined (shortest-round-trip doubles, so they are bit-exact);
    // on a binary-frame connection they ship as one raw f64 WAVEFORM
    // sidecar frame and the body says `samples_wire:"frame"` —
    // DESIGN.md §15's bulk payload path.
    std::vector<std::vector<double>> sidecars;
    if (const Json* density = request.body.find("density")) {
      const bool rise = density->is_string() && density->as_string() == "rise";
      const bool fall = density->is_string() && density->as_string() == "fall";
      if (!rise && !fall) {
        fail(ErrorCode::BadParams, "'density' must be \"rise\" or \"fall\"");
      }
      const auto* numeric =
          std::get_if<core::SpstaNumericResult>(&analysis->result);
      if (numeric == nullptr) {
        fail(ErrorCode::BadParams,
             "'density' requires engine \"spsta_numeric\"");
      }
      const core::NodeTopDensity& top = numeric->node.at(id);
      const stats::PiecewiseDensity& pd = rise ? top.rise : top.fall;
      Json d = Json::object();
      d.set("direction", Json(std::string(rise ? "rise" : "fall")));
      d.set("t0", Json(pd.grid().t0));
      d.set("dt", Json(pd.grid().dt));
      d.set("n", Json(static_cast<std::uint64_t>(pd.grid().n)));
      d.set("mass", Json(pd.mass()));
      if (request.binary_frames) {
        d.set("samples_wire", Json(std::string("frame")));
        sidecars.emplace_back(pd.values().begin(), pd.values().end());
      } else {
        Json samples = Json::array();
        for (const double v : pd.values()) samples.push_back(Json(v));
        d.set("samples", std::move(samples));
      }
      stats.set("density", std::move(d));
    }

    result.set("stats", std::move(stats));
    if (!sidecars.empty()) {
      result.set("waveform_frames",
                 Json(static_cast<std::uint64_t>(sidecars.size())));
    }
    Response response = Response::success(request.id, std::move(result));
    response.waveforms = std::move(sidecars);
    return response;
  }

  // Path query: structural critical path (mean delays), each point
  // annotated with the engine's arrival statistics.
  NodeId endpoint = netlist::kInvalidNode;
  const std::vector<double> means = session.delays().means();
  if (path->is_string() || path->is_number()) {
    endpoint = resolve_node(session, *path);
  } else if (path->is_bool() && path->as_bool()) {
    const auto worst = netlist::critical_paths(session.design(), means, 1);
    if (worst.empty()) fail(ErrorCode::BadParams, "design has no timing endpoints");
    endpoint = worst.front().nodes.back();
  } else {
    fail(ErrorCode::BadParams, "'path' must be true or an endpoint node");
  }
  const netlist::Path critical =
      netlist::critical_path_to(session.design(), endpoint, means);
  Json points = Json::array();
  for (const NodeId id : critical.nodes) {
    Json point = node_stats_json(*analysis, id);
    point.set("node", Json(static_cast<std::uint64_t>(id)));
    point.set("name", Json(session.design().node(id).name));
    points.push_back(std::move(point));
  }
  Json path_json = Json::object();
  path_json.set("endpoint", Json(session.design().node(endpoint).name));
  path_json.set("delay", Json(critical.delay));
  path_json.set("points", std::move(points));
  result.set("path", std::move(path_json));
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::handle_set_delay(const Request& request) {
  using EcoEdit = core::IncrementalSpsta::EcoEdit;
  const std::shared_ptr<Session> session_ptr = resolve_session(request);
  Session& session = *session_ptr;
  if (session.is_hier()) {
    fail(ErrorCode::BadParams, "set_delay is not supported on hierarchical sessions");
  }
  const Json* edits_field = request.body.find("edits");
  const Json* node = request.body.find("node");
  if ((edits_field == nullptr) == (node == nullptr)) {
    fail(ErrorCode::BadRequest,
         "set_delay needs exactly one of 'node' (single edit) or 'edits' (batch)");
  }
  bool probe = false;
  if (const Json* p = request.body.find("probe")) {
    if (!p->is_bool()) fail(ErrorCode::BadParams, "'probe' must be a boolean");
    probe = p->as_bool();
  }
  if (edits_field != nullptr &&
      (!edits_field->is_array() || edits_field->as_array().empty())) {
    fail(ErrorCode::BadParams, "'edits' must be a non-empty array");
  }

  const std::lock_guard<std::mutex> lock(session.mutex);
  check_deadline(request);

  // Resolve every edit before applying any: a bogus entry must not leave a
  // half-applied batch behind.
  const auto parse_edit = [&session](const Json& object) -> EcoEdit {
    const Json* n = object.find("node");
    if (n == nullptr) fail(ErrorCode::BadRequest, "set_delay edit needs 'node'");
    const double mean = number_field(object, "mean", -1e301, -1e300, 1e300);
    if (mean == -1e301) fail(ErrorCode::BadRequest, "set_delay edit needs 'mean'");
    const double stddev = number_field(object, "std", 0.0, 0.0, 1e300);
    return EcoEdit::delay_edit(resolve_node(session, *n),
                               stats::Gaussian{mean, stddev * stddev});
  };
  std::vector<EcoEdit> edits;
  if (edits_field != nullptr) {
    edits.reserve(edits_field->as_array().size());
    for (const Json& entry : edits_field->as_array()) {
      if (!entry.is_object()) {
        fail(ErrorCode::BadParams, "'edits' entries must be objects");
      }
      edits.push_back(parse_edit(entry));
    }
  } else {
    edits.push_back(parse_edit(request.body));
  }

  if (probe) return run_probe(request, session, edits);

  const core::IncrementalSpsta::CommitStats stats = session.apply_eco(edits);

  Json result = Json::object();
  if (node != nullptr) {
    result.set("node", Json(static_cast<std::uint64_t>(edits.front().node)));
    result.set("name", Json(session.design().node(edits.front().node).name));
  }
  result.set("edits", Json(edits.size()));
  result.set("eco_version", Json(session.eco_version));
  // Per-request ECO cost: what THIS wave re-evaluated, not lifetime totals
  // (`stats` still reports the session-lifetime counter).
  result.set("nodes_reevaluated", Json(stats.cone_size));
  result.set("settled_early", Json(stats.settled_early));
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::run_probe(const Request& request, Session& session,
                                    std::span<const core::IncrementalSpsta::EcoEdit> edits) {
  // Targets: an explicit 'nodes' list, defaulting to every timing endpoint
  // (the set an ECO optimization loop watches).
  std::vector<NodeId> targets;
  if (const Json* nodes = request.body.find("nodes")) {
    if (!nodes->is_array() || nodes->as_array().empty()) {
      fail(ErrorCode::BadParams, "'nodes' must be a non-empty array");
    }
    targets.reserve(nodes->as_array().size());
    for (const Json& entry : nodes->as_array()) {
      targets.push_back(resolve_node(session, entry));
    }
  } else {
    targets = session.design().timing_endpoints();
  }

  const core::IncrementalSpsta::ProbeResult probed = session.probe_eco(edits, targets);

  Json results = Json::array();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    Json row = node_top_json(probed.tops[i]);
    row.set("node", Json(static_cast<std::uint64_t>(targets[i])));
    row.set("name", Json(session.design().node(targets[i]).name));
    results.push_back(std::move(row));
  }
  Json result = Json::object();
  result.set("probe", Json(true));
  result.set("edits", Json(edits.size()));
  // A probe commits nothing: eco_version is unchanged and later queries
  // still see the pre-probe state.
  result.set("eco_version", Json(session.eco_version));
  result.set("nodes_reevaluated", Json(probed.stats.cone_size));
  result.set("settled_early", Json(probed.stats.settled_early));
  result.set("results", std::move(results));
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::handle_set_source(const Request& request) {
  const std::shared_ptr<Session> session_ptr = resolve_session(request);
  Session& session = *session_ptr;
  if (session.is_hier()) {
    fail(ErrorCode::BadParams, "set_source is not supported on hierarchical sessions");
  }
  const Json* source = request.body.find("source");
  if (source == nullptr || !source->is_number() ||
      source->as_number() != std::floor(source->as_number()) ||
      source->as_number() < 0) {
    fail(ErrorCode::BadRequest, "set_source needs a non-negative integer 'source'");
  }

  const std::lock_guard<std::mutex> lock(session.mutex);
  const std::size_t index = static_cast<std::size_t>(source->as_number());
  if (index >= session.sources().size()) {
    fail(ErrorCode::BadParams,
         "source index " + std::to_string(index) + " out of range [0, " +
             std::to_string(session.sources().size()) + ")");
  }

  netlist::SourceStats stats = session.sources()[index];
  if (const Json* probs = request.body.find("probs")) {
    if (!probs->is_array() || probs->as_array().size() != 4) {
      fail(ErrorCode::BadParams, "'probs' must be [p0, p1, pr, pf]");
    }
    double p[4];
    for (int i = 0; i < 4; ++i) {
      const Json& v = probs->as_array()[i];
      if (!v.is_number() || v.as_number() < 0) {
        fail(ErrorCode::BadParams, "'probs' entries must be non-negative numbers");
      }
      p[i] = v.as_number();
    }
    if (p[0] + p[1] + p[2] + p[3] <= 0) {
      fail(ErrorCode::BadParams, "'probs' must not be all zero");
    }
    stats.probs = netlist::FourValueProbs{p[0], p[1], p[2], p[3]}.normalized();
  }
  const auto arrival = [&](std::string_view key,
                           stats::Gaussian fallback) -> stats::Gaussian {
    const Json* v = request.body.find(key);
    if (v == nullptr) return fallback;
    if (!v->is_array() || v->as_array().size() != 2 ||
        !v->as_array()[0].is_number() || !v->as_array()[1].is_number() ||
        v->as_array()[1].as_number() < 0) {
      fail(ErrorCode::BadParams,
           "'" + std::string(key) + "' must be [mean, std] with std >= 0");
    }
    const double s = v->as_array()[1].as_number();
    return {v->as_array()[0].as_number(), s * s};
  };
  stats.rise_arrival = arrival("rise", stats.rise_arrival);
  stats.fall_arrival = arrival("fall", stats.fall_arrival);

  const core::IncrementalSpsta::CommitStats wave = session.apply_set_source(index, stats);

  Json result = Json::object();
  result.set("source", Json(index));
  result.set("eco_version", Json(session.eco_version));
  result.set("nodes_reevaluated", Json(wave.cone_size));
  result.set("settled_early", Json(wave.settled_early));
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::handle_stats(const Request& request) {
  Json result = Json::object();
  result.set("protocol", Json(1));
  result.set("sessions", Json(store_.size()));
  result.set("requests", Json(requests_.load(std::memory_order_relaxed)));
  result.set("errors", Json(errors_.load(std::memory_order_relaxed)));
  result.set("metrics", metrics_json());

  Json cache = Json::object();
  cache.set("hits", Json(cache_hits_.load(std::memory_order_relaxed)));
  cache.set("misses", Json(cache_misses_.load(std::memory_order_relaxed)));
  result.set("analysis_cache", std::move(cache));

  {
    // Cross-session plan cache (the LRU session store).
    Json store = Json::object();
    store.set("plan_hits", Json(store_.plan_hits()));
    store.set("plan_misses", Json(store_.plan_misses()));
    store.set("evictions", Json(store_.evictions()));
    store.set("latch_waits", Json(store_.latch_waits()));
    store.set("approx_bytes", Json(store_.approx_bytes()));
    const StoreBudget budget = store_.budget();
    if (budget.max_sessions != 0) store.set("max_sessions", Json(budget.max_sessions));
    if (budget.max_bytes != 0) store.set("max_bytes", Json(budget.max_bytes));

    // Hierarchical sharing layers, budgeted alongside the session store.
    Json models = Json::object();
    models.set("hits", Json(block_models_.hits()));
    models.set("misses", Json(block_models_.misses()));
    models.set("evictions", Json(block_models_.evictions()));
    models.set("entries", Json(block_models_.size()));
    models.set("approx_bytes", Json(block_models_.approx_bytes()));
    store.set("block_models", std::move(models));
    Json library = Json::object();
    library.set("entries", Json(block_library_.size()));
    library.set("hits", Json(block_library_.hits()));
    library.set("misses", Json(block_library_.misses()));
    store.set("block_library", std::move(library));
    result.set("plan_cache", std::move(store));
  }

  Json pattern = Json::object();
  pattern.set("entries", Json(pattern_cache_.size()));
  pattern.set("hits", Json(pattern_cache_.hits()));
  pattern.set("misses", Json(pattern_cache_.misses()));
  result.set("pattern_cache", std::move(pattern));

  {
    const std::lock_guard<std::mutex> lock(usage_mutex_);
    Json engines = Json::object();
    for (const auto& [name, usage] : usage_) {
      Json u = Json::object();
      u.set("runs", Json(usage.runs));
      u.set("wall_ms", Json(usage.wall_seconds * 1e3));
      engines.set(name, std::move(u));
    }
    result.set("engines", std::move(engines));
  }

  if (request.body.find("session") != nullptr) {
    const std::shared_ptr<Session> session_ptr = resolve_session(request);
    Session& session = *session_ptr;
    const std::lock_guard<std::mutex> lock(session.mutex);
    Json s = Json::object();
    s.set("name", Json(session.display_name));
    if (session.is_hier()) {
      const netlist::HierDesign& design = session.hier_analyzer->design();
      s.set("hier", Json(true));
      s.set("blocks", Json(design.blocks().size()));
      s.set("instances", Json(design.instances().size()));
      s.set("expanded_gates", Json(design.expanded_gate_count()));
      s.set("cache_entries", Json(session.hier_cache.size()));
    } else {
      s.set("nodes", Json(session.design().node_count()));
      s.set("gates", Json(session.design().gate_count()));
      s.set("cache_entries", Json(session.cache.size()));
      s.set("eco_edits", Json(session.eco_edits));
      s.set("eco_version", Json(session.eco_version));
      s.set("nodes_reevaluated",
            Json(session.incremental ? session.incremental->nodes_reevaluated() : 0));
    }
    s.set("analyses", Json(session.analyses));
    s.set("cache_hits", Json(session.cache_hits));
    s.set("queries", Json(session.queries));
    result.set("session", std::move(s));
  } else {
    Json keys = Json::array();
    for (const std::string& key : store_.keys()) keys.push_back(Json(key));
    result.set("session_keys", std::move(keys));
  }
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::handle_unload(const Request& request) {
  const Json* key = request.body.find("session");
  if (key == nullptr || !key->is_string()) {
    fail(ErrorCode::BadRequest, "missing string field 'session'");
  }
  if (!store_.unload(key->as_string())) {
    fail(ErrorCode::UnknownSession, "no session '" + key->as_string() + "'");
  }
  Json result = Json::object();
  result.set("unloaded", Json(key->as_string()));
  result.set("sessions", Json(store_.size()));
  return Response::success(request.id, std::move(result));
}

Response AnalysisService::handle_shutdown(const Request& request) {
  shutdown_.store(true, std::memory_order_release);
  Json result = Json::object();
  result.set("stopping", Json(true));
  result.set("requests", Json(requests_.load(std::memory_order_relaxed)));
  return Response::success(request.id, std::move(result));
}

void AnalysisService::record_engine_run(Engine engine, double seconds) {
  const std::lock_guard<std::mutex> lock(usage_mutex_);
  EngineUsage& usage = usage_[std::string(to_string(engine))];
  ++usage.runs;
  usage.wall_seconds += seconds;
}

}  // namespace spsta::service
