#include "service/frame.hpp"

#include <bit>
#include <cstring>

namespace spsta::service {

namespace {

/// Header = u32 length + u8 kind.
constexpr std::size_t kHeaderBytes = 5;

void append_u32_le(std::string& out, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v & 0xff),
                         static_cast<char>((v >> 8) & 0xff),
                         static_cast<char>((v >> 16) & 0xff),
                         static_cast<char>((v >> 24) & 0xff)};
  out.append(bytes, 4);
}

std::uint32_t read_u32_le(const char* p) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint64_t to_le64(std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= ((v >> (8 * i)) & 0xff) << (8 * (7 - i));
    return r;
  }
  return v;
}

bool known_kind(std::uint8_t kind) {
  return kind == static_cast<std::uint8_t>(FrameKind::Json) ||
         kind == static_cast<std::uint8_t>(FrameKind::Waveform);
}

}  // namespace

void append_frame(std::string& out, FrameKind kind, std::string_view payload) {
  append_u32_le(out, static_cast<std::uint32_t>(payload.size() + 1));
  out.push_back(static_cast<char>(kind));
  out.append(payload);
}

std::string encode_frame(FrameKind kind, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  append_frame(out, kind, payload);
  return out;
}

void append_waveform_frame(std::string& out, std::span<const double> samples) {
  append_u32_le(out, static_cast<std::uint32_t>(samples.size() * 8 + 1));
  out.push_back(static_cast<char>(FrameKind::Waveform));
  const std::size_t base = out.size();
  out.resize(base + samples.size() * 8);
  char* dst = out.data() + base;
  for (const double sample : samples) {
    std::uint64_t bits;
    std::memcpy(&bits, &sample, 8);
    bits = to_le64(bits);
    std::memcpy(dst, &bits, 8);
    dst += 8;
  }
}

std::vector<double> decode_waveform(std::string_view payload) {
  std::vector<double> samples(payload.size() / 8);
  const char* src = payload.data();
  for (double& sample : samples) {
    std::uint64_t bits;
    std::memcpy(&bits, src, 8);
    bits = to_le64(bits);
    std::memcpy(&sample, &bits, 8);
    src += 8;
  }
  return samples;
}

void FrameDecoder::feed(std::string_view bytes) {
  // Discard-in-flight: an oversized payload is consumed as it streams in,
  // never buffered — the cap holds on allocation, not just on yield.
  if (skip_remaining_ > 0) {
    const std::size_t eat = std::min<std::uint64_t>(skip_remaining_, bytes.size());
    skip_remaining_ -= eat;
    bytes.remove_prefix(eat);
    if (skip_remaining_ > 0) return;
  }
  buffer_.append(bytes);
}

bool FrameDecoder::mid_frame() const noexcept {
  if (skip_remaining_ > 0) return true;
  if (buffer_.empty()) return false;
  if (buffer_.size() < kHeaderBytes) return true;
  const std::uint64_t length = read_u32_le(buffer_.data());
  return buffer_.size() < 4 + length;
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  // A skipped frame reports its BadFrame only once fully consumed, so the
  // caller answers exactly one bad_request per malformed frame.
  if (skip_remaining_ > 0) return Status::NeedMore;
  if (!pending_error_.empty()) {
    error_ = std::move(pending_error_);
    pending_error_.clear();
    return Status::BadFrame;
  }
  if (buffer_.size() < kHeaderBytes) {
    // A zero-length frame has no kind byte: the 4-byte header alone is the
    // whole (malformed) frame.
    if (buffer_.size() >= 4 && read_u32_le(buffer_.data()) == 0) {
      buffer_.erase(0, 4);
      error_ = "frame length must be >= 1 (no kind byte)";
      return Status::BadFrame;
    }
    return Status::NeedMore;
  }
  const std::uint64_t length = read_u32_le(buffer_.data());
  if (length == 0) {
    buffer_.erase(0, 4);
    error_ = "frame length must be >= 1 (no kind byte)";
    return Status::BadFrame;
  }
  const std::uint64_t payload_bytes = length - 1;
  if (payload_bytes > kMaxRequestBytes) {
    // Enforced pre-allocation: drop the header, stream-discard the
    // payload, and report once it is gone.
    pending_error_ = "frame payload of " + std::to_string(payload_bytes) +
                     " bytes exceeds the " + std::to_string(kMaxRequestBytes) +
                     " byte limit";
    const std::string_view rest(buffer_.data() + kHeaderBytes,
                                buffer_.size() - kHeaderBytes);
    const std::size_t eat = std::min<std::uint64_t>(payload_bytes, rest.size());
    skip_remaining_ = payload_bytes - eat;
    buffer_.erase(0, kHeaderBytes + eat);
    if (skip_remaining_ > 0) return Status::NeedMore;
    error_ = std::move(pending_error_);
    pending_error_.clear();
    return Status::BadFrame;
  }
  if (buffer_.size() < 4 + length) return Status::NeedMore;

  const std::uint8_t kind = static_cast<std::uint8_t>(buffer_[4]);
  if (!known_kind(kind)) {
    buffer_.erase(0, 4 + length);
    error_ = "unknown frame kind " + std::to_string(kind);
    return Status::BadFrame;
  }
  if (kind == static_cast<std::uint8_t>(FrameKind::Waveform) &&
      payload_bytes % 8 != 0) {
    buffer_.erase(0, 4 + length);
    error_ = "waveform frame payload of " + std::to_string(payload_bytes) +
             " bytes is not a multiple of 8";
    return Status::BadFrame;
  }
  out.kind = static_cast<FrameKind>(kind);
  out.payload.assign(buffer_, kHeaderBytes, payload_bytes);
  buffer_.erase(0, 4 + length);
  return Status::Ready;
}

}  // namespace spsta::service
