/// \file frame.hpp
/// Length-prefixed binary framing for the analysis service's socket
/// transport (ROADMAP item 1, DESIGN.md §15).
///
/// Wire grammar, all integers little-endian:
///
///   frame   := u32 length ; u8 kind ; payload[length - 1]
///   kind    := 0x00 JSON      (payload is one JSON document — exactly the
///                              bytes of a JSON-lines request/response,
///                              without the trailing newline)
///            | 0x01 WAVEFORM  (payload is a raw array of IEEE-754 f64
///                              samples, little-endian; length - 1 must be
///                              a multiple of 8)
///
/// `length` counts the kind byte plus the payload, so a valid frame has
/// length >= 1. The payload is capped at kMaxRequestBytes (the same 8 MiB
/// cap the JSON-lines protocol puts on one request line) and the cap is
/// enforced from the header alone, BEFORE any payload allocation: an
/// oversized frame is skipped in bounded chunks and surfaced as a
/// recoverable BadFrame, never a multi-gigabyte buffer.
///
/// A connection opens in JSON-lines mode; a client whose very first bytes
/// are the 5-byte magic kFrameMagic ("\0SPF1") switches the connection to
/// frame mode before any request (the NUL guarantees no collision with a
/// JSON text line). Negotiation is per connection: one daemon serves
/// JSON-lines and binary-frame clients side by side.
///
/// The decoder is incremental and transport-agnostic: feed() whatever
/// bytes arrived, next() yields complete frames. Malformed frames (zero
/// length, unknown kind, payload over the cap, a WAVEFORM payload that is
/// not a multiple of 8) are reported as BadFrame with the framing intact —
/// the caller answers a structured `bad_request` and keeps decoding.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.hpp"

namespace spsta::service {

/// Payload discriminator of one frame.
enum class FrameKind : std::uint8_t {
  Json = 0x00,      ///< one JSON document (request or response)
  Waveform = 0x01,  ///< raw little-endian f64 sample block
};

/// Connection-mode magic: a client that wants binary frames sends these 5
/// bytes first. A JSON-lines request can never start with a NUL byte.
inline constexpr char kFrameMagic[5] = {'\0', 'S', 'P', 'F', '1'};

/// One decoded frame.
struct Frame {
  FrameKind kind = FrameKind::Json;
  std::string payload;
};

/// Serializes one frame (header + payload) onto \p out.
void append_frame(std::string& out, FrameKind kind, std::string_view payload);

/// encode_frame(kind, payload) as a fresh string.
[[nodiscard]] std::string encode_frame(FrameKind kind, std::string_view payload);

/// Serializes \p samples as one WAVEFORM frame onto \p out.
void append_waveform_frame(std::string& out, std::span<const double> samples);

/// Decodes a WAVEFORM payload back to samples, bit-exactly. \p payload
/// size must be a multiple of 8 (the decoder guarantees this for frames it
/// yields with kind == Waveform).
[[nodiscard]] std::vector<double> decode_waveform(std::string_view payload);

/// Incremental frame decoder: feed() bytes as they arrive, next() yields
/// whole frames. One instance per connection.
class FrameDecoder {
 public:
  enum class Status {
    NeedMore,  ///< no complete frame buffered yet
    Ready,     ///< \p out holds the next frame
    BadFrame,  ///< malformed frame consumed; error() says why; keep going
  };

  /// Appends raw transport bytes.
  void feed(std::string_view bytes);

  /// Yields the next frame. On BadFrame the offending frame has been
  /// consumed (oversized payloads are discarded without buffering) and
  /// decoding can continue with the following frame.
  [[nodiscard]] Status next(Frame& out);

  /// Description of the last BadFrame.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed (test observability).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

  /// True when a partial frame (header seen, payload incomplete) is
  /// pending — an EOF now means the peer died mid-frame.
  [[nodiscard]] bool mid_frame() const noexcept;

 private:
  std::string buffer_;
  /// Remaining payload bytes of an oversized frame being discarded.
  std::uint64_t skip_remaining_ = 0;
  /// Error to report once the skipped frame has been fully consumed.
  std::string pending_error_;
  std::string error_;
};

}  // namespace spsta::service
