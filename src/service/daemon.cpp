#include "service/daemon.hpp"

#include <chrono>
#include <deque>
#include <future>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/worker_pool.hpp"

namespace spsta::service {

namespace {

/// True when the line holds anything beyond whitespace (blank lines are
/// ignored rather than answered, so interactive use stays pleasant).
bool has_content(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return true;
  }
  return false;
}

/// Writes one response line, recording serialization time and the
/// optional trace entry. Shared by both serve runtimes.
void write_response(std::ostream& out, const Response& response,
                    obs::LatencyHistogram& serialize_hist, obs::TraceLog* trace) {
  const auto t0 = std::chrono::steady_clock::now();
  out << response.to_line() << '\n';
  const auto serialize_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  serialize_hist.record_ns(static_cast<std::uint64_t>(serialize_ns));
  if (trace != nullptr) {
    trace->write({response.span.trace_id, response.span.cmd, response.ok,
                  response.span.queue_ms, response.span.execute_ms,
                  static_cast<double>(serialize_ns) * 1e-6});
  }
}

/// Batch-scheduler runtime: deterministic batches, responses per batch.
ServeReport serve_batched(std::istream& in, std::ostream& out,
                          AnalysisService& service, const ServeOptions& options,
                          obs::LatencyHistogram& serialize_hist,
                          obs::TraceLog* trace) {
  BatchScheduler scheduler(service, options.threads);
  ServeReport report;
  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    std::vector<Incoming> batch;
    if (has_content(line)) batch.push_back(Incoming{std::move(line)});
    // Drain whole lines that are already buffered: piped scripts become
    // real batches without blocking an interactive client.
    while (options.greedy_batch && batch.size() < options.max_batch &&
           in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      if (has_content(line)) batch.push_back(Incoming{std::move(line)});
    }
    if (batch.empty()) continue;

    const std::vector<Response> responses = scheduler.run(batch);
    for (const Response& response : responses) {
      write_response(out, response, serialize_hist, trace);
    }
    out.flush();
    ++report.batches;
    report.requests += batch.size();
  }
  report.shutdown = service.shutdown_requested();
  return report;
}

/// Worker-pool runtime: lines are submitted to the sharded pool as they
/// arrive (admission control may shed them immediately); completed
/// responses are written back strictly in submission order, so the
/// protocol's ordering contract holds even though shards finish out of
/// order.
ServeReport serve_pooled(std::istream& in, std::ostream& out,
                         AnalysisService& service, const ServeOptions& options,
                         obs::LatencyHistogram& serialize_hist,
                         obs::TraceLog* trace) {
  WorkerPool pool(service, {options.workers, options.queue_capacity});
  ServeReport report;
  std::deque<std::future<Response>> pending;

  // Backstop on reorder-buffer growth: beyond this, block on the oldest
  // response before reading more input (the pool's own queues stay
  // bounded regardless — this only bounds daemon-side future storage).
  const std::size_t max_pending =
      2 * pool.shards() * pool.queue_capacity() + 64;

  const auto flush_ready = [&](bool block_all) {
    bool wrote = false;
    while (!pending.empty()) {
      if (!block_all && pending.front().wait_for(std::chrono::seconds(0)) !=
                            std::future_status::ready) {
        break;
      }
      write_response(out, pending.front().get(), serialize_hist, trace);
      pending.pop_front();
      wrote = true;
    }
    if (wrote) {
      out.flush();
      ++report.batches;
    }
  };

  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    if (has_content(line)) {
      pending.push_back(pool.submit(std::move(line)));
      ++report.requests;
    }
    if (pending.size() >= max_pending) {
      write_response(out, pending.front().get(), serialize_hist, trace);
      pending.pop_front();
      out.flush();
      ++report.batches;
    }
    flush_ready(/*block_all=*/false);
  }
  flush_ready(/*block_all=*/true);
  report.shutdown = service.shutdown_requested();
  return report;
}

}  // namespace

ServeReport serve(std::istream& in, std::ostream& out, AnalysisService& service,
                  const ServeOptions& options) {
  const std::unique_ptr<obs::TraceLog> trace =
      options.trace_path.empty() ? nullptr
                                 : std::make_unique<obs::TraceLog>(options.trace_path);
  static obs::LatencyHistogram& serialize_hist =
      obs::registry().histogram("service.serialize");
  if (options.workers > 0) {
    return serve_pooled(in, out, service, options, serialize_hist, trace.get());
  }
  return serve_batched(in, out, service, options, serialize_hist, trace.get());
}

}  // namespace spsta::service
