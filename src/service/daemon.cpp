#include "service/daemon.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace spsta::service {

namespace {

/// True when the line holds anything beyond whitespace (blank lines are
/// ignored rather than answered, so interactive use stays pleasant).
bool has_content(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return true;
  }
  return false;
}

}  // namespace

ServeReport serve(std::istream& in, std::ostream& out, AnalysisService& service,
                  const ServeOptions& options) {
  BatchScheduler scheduler(service, options.threads);
  ServeReport report;

  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    std::vector<Incoming> batch;
    if (has_content(line)) batch.push_back(Incoming{std::move(line)});
    // Drain whole lines that are already buffered: piped scripts become
    // real batches without blocking an interactive client.
    while (options.greedy_batch && batch.size() < options.max_batch &&
           in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      if (has_content(line)) batch.push_back(Incoming{std::move(line)});
    }
    if (batch.empty()) continue;

    const std::vector<Response> responses = scheduler.run(batch);
    for (const Response& response : responses) {
      out << response.to_line() << '\n';
    }
    out.flush();
    ++report.batches;
    report.requests += batch.size();
  }
  report.shutdown = service.shutdown_requested();
  return report;
}

}  // namespace spsta::service
