#include "service/daemon.hpp"

#include <chrono>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spsta::service {

namespace {

/// True when the line holds anything beyond whitespace (blank lines are
/// ignored rather than answered, so interactive use stays pleasant).
bool has_content(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return true;
  }
  return false;
}

}  // namespace

ServeReport serve(std::istream& in, std::ostream& out, AnalysisService& service,
                  const ServeOptions& options) {
  BatchScheduler scheduler(service, options.threads);
  ServeReport report;
  const std::unique_ptr<obs::TraceLog> trace =
      options.trace_path.empty() ? nullptr
                                 : std::make_unique<obs::TraceLog>(options.trace_path);

  static obs::LatencyHistogram& serialize_hist =
      obs::registry().histogram("service.serialize");

  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    std::vector<Incoming> batch;
    if (has_content(line)) batch.push_back(Incoming{std::move(line)});
    // Drain whole lines that are already buffered: piped scripts become
    // real batches without blocking an interactive client.
    while (options.greedy_batch && batch.size() < options.max_batch &&
           in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      if (has_content(line)) batch.push_back(Incoming{std::move(line)});
    }
    if (batch.empty()) continue;

    const std::vector<Response> responses = scheduler.run(batch);
    for (const Response& response : responses) {
      const auto t0 = std::chrono::steady_clock::now();
      out << response.to_line() << '\n';
      const auto serialize_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
      serialize_hist.record_ns(static_cast<std::uint64_t>(serialize_ns));
      if (trace != nullptr) {
        trace->write({response.span.trace_id, response.span.cmd, response.ok,
                      response.span.queue_ms, response.span.execute_ms,
                      static_cast<double>(serialize_ns) * 1e-6});
      }
    }
    out.flush();
    ++report.batches;
    report.requests += batch.size();
  }
  report.shutdown = service.shutdown_requested();
  return report;
}

}  // namespace spsta::service
