/// \file protocol.hpp
/// The JSON-lines request/response protocol of the analysis service.
///
/// One request per line, one response line per request, always in request
/// order. A request is a JSON object:
///
///   {"id": 7, "cmd": "analyze", "session": "9f..", "engine": "ssta",
///    "params": {"threads": 4}, "deadline_ms": 250}
///
/// `id` (number or string) is echoed verbatim; `deadline_ms` is a
/// relative deadline from enqueue, enforced by the batch scheduler.
/// Responses are {"id":..,"ok":true,"result":{..}} or
/// {"id":..,"ok":false,"error":{"code":"..","message":".."}} — a
/// malformed request yields an error response, never a dead daemon.
///
/// Commands: ping, load, analyze, query, set_delay, set_source, stats,
/// unload, shutdown (DESIGN.md §9 has the full grammar).

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "service/json.hpp"

namespace spsta::service {

/// Structured error categories of the protocol.
enum class ErrorCode {
  ParseError,        ///< line is not a valid JSON object
  BadRequest,        ///< object lacks a usable cmd / malformed envelope
  UnknownCommand,    ///< cmd is not in the table
  UnknownSession,    ///< session key not loaded
  UnknownNode,       ///< node name / id not in the design
  UnknownEngine,     ///< engine name not in the table
  BadParams,         ///< command parameters missing or out of range
  DeadlineExceeded,  ///< request expired before execution
  Overloaded,        ///< admission control shed the request (retry later)
  IoError,           ///< file could not be read
  InternalError,     ///< unexpected exception (caught, daemon stays up)
};

/// Hard cap on one request line. A longer line is answered with a
/// structured bad_request instead of being parsed — backpressure against
/// a runaway (or hostile) client long before the JSON parser allocates.
/// Generous: inline `text` netlist payloads of every supported circuit
/// size fit with orders of magnitude to spare.
inline constexpr std::size_t kMaxRequestBytes = 8u << 20;

/// Wire name of an error code (e.g. "unknown_session").
[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;

/// A parsed request envelope. `body` is the full request object; command
/// handlers read their parameters from it.
struct Request {
  Json id;                  ///< null when the client sent none
  std::string cmd;
  Json body;                ///< the whole request object
  double deadline_ms = -1;  ///< relative deadline; < 0 means none
  /// Deadline origin. parse_request stamps "now"; the scheduler / worker
  /// pool overwrite it with the wire-arrival time so queue wait counts
  /// against the deadline.
  std::chrono::steady_clock::time_point enqueued = std::chrono::steady_clock::now();
  /// True when the request arrived on a binary-frame connection
  /// (DESIGN.md §15): handlers may move bulk f64 payloads into
  /// Response::waveforms instead of inlining them as JSON arrays. Set by
  /// the socket transport only; stdio and batch paths leave it false.
  bool binary_frames = false;

  /// Milliseconds since `enqueued`.
  [[nodiscard]] double age_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - enqueued)
        .count();
  }
  /// True when the deadline has lapsed. Checked at dispatch AND re-checked
  /// by heavy handlers after they acquire the session mutex: a request that
  /// sat behind same-session contention is shed, not silently run late.
  [[nodiscard]] bool expired() const {
    return deadline_ms >= 0 && age_ms() > deadline_ms;
  }
};

/// Per-request observability span, filled by the batch scheduler. Not
/// part of any cache key — purely descriptive, never result-affecting.
struct RequestSpan {
  std::uint64_t trace_id = 0;  ///< 0 = unassigned (direct execute path)
  std::string cmd;             ///< command ("" for envelope errors)
  double queue_ms = 0.0;       ///< enqueue -> execution start
  double execute_ms = 0.0;     ///< handler wall-clock
};

/// One response line.
struct Response {
  Json id;
  bool ok = false;
  Json body;  ///< result object (ok) or error object (!ok)
  RequestSpan span;  ///< tracing metadata (trace_id echoed on the wire)
  /// Bulk f64 sidecars for binary-frame connections: filled only when the
  /// producing request had binary_frames set. The body then carries
  /// `"waveform_frames": N` and each entry is shipped as one WAVEFORM
  /// frame right after the JSON response frame, in order. Always empty on
  /// the JSON-lines path (to_line() does not serialize sidecars).
  std::vector<std::vector<double>> waveforms;

  [[nodiscard]] static Response success(Json id, Json result);
  [[nodiscard]] static Response failure(Json id, ErrorCode code, std::string message);

  /// The response as one JSON line (no trailing newline). When the span
  /// carries a trace id it is echoed as `"trace_id":"t-<n>"`. A non-finite
  /// number anywhere in the body degrades to a structured internal_error
  /// line — never an invalid document, never a fake zero.
  [[nodiscard]] std::string to_line() const;
  /// Error code of a failure response ("" for successes).
  [[nodiscard]] std::string_view error_code() const;
};

/// Parses one request line. Returns the Request, or a ready error
/// Response when the line is not a valid request envelope (invalid JSON,
/// not an object, missing/empty cmd, bad id or deadline type).
[[nodiscard]] std::variant<Request, Response> parse_request(std::string_view line);

/// True for commands that mutate service state (load, set_delay,
/// set_source, unload, shutdown): the batch scheduler runs these as
/// barriers, never concurrently with other requests. Read-only commands
/// (analyze, query, stats, ping) and unknown commands are parallel-safe.
[[nodiscard]] bool is_mutating_command(std::string_view cmd) noexcept;

}  // namespace spsta::service
