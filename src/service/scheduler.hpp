/// \file scheduler.hpp
/// Batch scheduler: executes a batch of protocol requests against the
/// analysis service, fanning independent requests out over the shared
/// util::ThreadPool while emitting responses strictly in request order.
///
/// Scheduling rules (deterministic by construction):
///   * the batch is split at *mutating* commands (load, set_delay,
///     set_source, unload, shutdown) — each runs alone, as a barrier;
///   * the read-only requests between two barriers form one parallel
///     group dispatched as a single pool job; per-session mutexes inside
///     the service serialize same-session work, and each request writes
///     only its own response slot, so the output is independent of the
///     thread count (the execution layer's usual contract);
///   * a request whose `deadline_ms` has already elapsed when its turn
///     comes is answered with a deadline_exceeded error instead of
///     running — load shedding, not silent dropping;
///   * exceptions never escape: each request resolves to exactly one
///     structured response.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/thread_pool.hpp"

namespace spsta::service {

/// One raw request line plus its enqueue time (deadline origin).
struct Incoming {
  std::string line;
  std::chrono::steady_clock::time_point enqueued = std::chrono::steady_clock::now();
};

/// Counters accumulated across batches.
struct SchedulerStats {
  std::uint64_t batches = 0;
  std::uint64_t requests = 0;
  std::uint64_t parallel_groups = 0;
  std::uint64_t barriers = 0;
  /// Total deadline sheds: the dispatch-time check plus the re-check heavy
  /// handlers perform after winning the session mutex.
  std::uint64_t deadline_expired = 0;
  std::uint64_t deadline_expired_queue = 0;    ///< shed before dispatch
  std::uint64_t deadline_expired_execute = 0;  ///< shed at execute start
};

class BatchScheduler {
 public:
  /// \p threads sizes the shared pool (0 = all hardware threads).
  explicit BatchScheduler(AnalysisService& service, unsigned threads = 0);

  /// Executes a batch; responses[i] answers batch[i].
  [[nodiscard]] std::vector<Response> run(const std::vector<Incoming>& batch);

  /// Convenience for single requests (a batch of one).
  [[nodiscard]] Response run_one(std::string line);

  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] unsigned pool_size() const noexcept { return pool_.size(); }

  /// Per-instance latency histograms (queue wait, execute). Owned by the
  /// scheduler — two schedulers in one process (e.g. two daemons in a
  /// test) no longer bleed into each other's stats. The process-wide
  /// registry histograms "service.queue_wait" / "service.execute" are
  /// still recorded as the cross-instance aggregate the `stats` command
  /// and the load bench read.
  [[nodiscard]] const obs::LatencyHistogram& queue_histogram() const noexcept {
    return queue_hist_;
  }
  [[nodiscard]] const obs::LatencyHistogram& execute_histogram() const noexcept {
    return execute_hist_;
  }

 private:
  AnalysisService& service_;
  util::ThreadPool pool_;
  SchedulerStats stats_;
  obs::LatencyHistogram queue_hist_;    ///< this instance only
  obs::LatencyHistogram execute_hist_;  ///< this instance only
  obs::LatencyHistogram& global_queue_hist_;
  obs::LatencyHistogram& global_execute_hist_;
  /// Per-scheduler trace-id sequence: every response gets `t-<n>` with n
  /// counting from 1, so a fresh daemon's trace ids are reproducible.
  std::atomic<std::uint64_t> trace_seq_{0};
};

}  // namespace spsta::service
