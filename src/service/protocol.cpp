#include "service/protocol.hpp"

namespace spsta::service {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::ParseError: return "parse_error";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::UnknownCommand: return "unknown_command";
    case ErrorCode::UnknownSession: return "unknown_session";
    case ErrorCode::UnknownNode: return "unknown_node";
    case ErrorCode::UnknownEngine: return "unknown_engine";
    case ErrorCode::BadParams: return "bad_params";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::IoError: return "io_error";
    case ErrorCode::InternalError: return "internal_error";
  }
  return "internal_error";
}

Response Response::success(Json id, Json result) {
  Response r;
  r.id = std::move(id);
  r.ok = true;
  r.body = std::move(result);
  return r;
}

Response Response::failure(Json id, ErrorCode code, std::string message) {
  Response r;
  r.id = std::move(id);
  r.ok = false;
  Json error = Json::object();
  error.set("code", Json(std::string(to_string(code))));
  error.set("message", Json(std::move(message)));
  r.body = std::move(error);
  return r;
}

std::string Response::to_line() const {
  Json line = Json::object();
  line.set("id", id);
  line.set("ok", Json(ok));
  line.set(ok ? "result" : "error", body);
  if (span.trace_id != 0) {
    line.set("trace_id", Json("t-" + std::to_string(span.trace_id)));
  }
  try {
    return line.dump();
  } catch (const NonFiniteNumberError&) {
    // An engine produced NaN/Inf and it reached serialization: surface a
    // structured error. The failure body is all strings (and the id came
    // off the wire, where non-finite numbers cannot be expressed), so the
    // nested to_line() cannot throw again.
    Response error =
        failure(id, ErrorCode::InternalError, "non-finite number in response body");
    error.span = span;
    return error.to_line();
  }
}

std::string_view Response::error_code() const {
  if (ok) return "";
  const Json* code = body.find("code");
  // No conditional operator here: mixing `const std::string&` with a char
  // literal would materialize a temporary and dangle the returned view.
  if (code == nullptr || !code->is_string()) return "";
  return code->as_string();
}

std::variant<Request, Response> parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    return Response::failure(Json(), ErrorCode::BadRequest,
                             "request line of " + std::to_string(line.size()) +
                                 " bytes exceeds the " +
                                 std::to_string(kMaxRequestBytes) + " byte limit");
  }
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const JsonParseError& e) {
    return Response::failure(Json(), ErrorCode::ParseError, e.what());
  }
  if (!doc.is_object()) {
    return Response::failure(Json(), ErrorCode::BadRequest,
                             "request must be a JSON object");
  }

  Request req;
  if (const Json* id = doc.find("id")) {
    if (!id->is_number() && !id->is_string() && !id->is_null()) {
      return Response::failure(Json(), ErrorCode::BadRequest,
                               "id must be a number or string");
    }
    req.id = *id;
  }
  const Json* cmd = doc.find("cmd");
  if (cmd == nullptr || !cmd->is_string() || cmd->as_string().empty()) {
    return Response::failure(req.id, ErrorCode::BadRequest,
                             "missing string field 'cmd'");
  }
  req.cmd = cmd->as_string();
  if (const Json* deadline = doc.find("deadline_ms")) {
    if (!deadline->is_number() || deadline->as_number() < 0) {
      return Response::failure(req.id, ErrorCode::BadRequest,
                               "deadline_ms must be a non-negative number");
    }
    req.deadline_ms = deadline->as_number();
  }
  req.body = std::move(doc);
  return req;
}

bool is_mutating_command(std::string_view cmd) noexcept {
  return cmd == "load" || cmd == "set_delay" || cmd == "set_source" ||
         cmd == "unload" || cmd == "shutdown";
}

}  // namespace spsta::service
