/// \file session.hpp
/// The analysis service's session store: designs parsed once, addressed by
/// a content hash, kept alive across requests together with their
/// `Analyzer` (delay model, source statistics, compiled analysis plan),
/// warm incremental engine and per-(engine, params) analysis result cache.
///
/// This is what turns the repo's one-shot binaries into a serving system:
/// the costly work (parsing, plan compilation, the first full analysis) is
/// paid once per design, and every later request against the same content
/// hash reuses it — the "efficient, incremental, suitable for
/// optimization" property block-based SSTA is prized for, applied to the
/// whole process boundary.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/incremental_spsta.hpp"
#include "spsta_api.hpp"

namespace spsta::service {

/// FNV-1a 64-bit over arbitrary bytes — the content hash behind session
/// keys and cache keys. Stable across platforms and runs.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ull) noexcept;

/// 16-hex-digit rendering of a 64-bit hash (session key format).
[[nodiscard]] std::string hash_key(std::uint64_t h);

/// One cached analysis: the full engine result plus bookkeeping.
struct CachedAnalysis {
  AnalysisResult result;
  double elapsed_seconds = 0.0;  ///< wall clock of the producing run
  std::uint64_t hits = 0;        ///< times served from cache
};

/// A loaded design and everything the service keeps warm for it.
///
/// Thread model: the session store hands out stable Session pointers;
/// all mutable state (cache, incremental engine, counters, the analyzer's
/// delays/sources) is guarded by `mutex`. The netlist itself is immutable
/// after load, so concurrent engine runs over it are safe.
struct Session {
  std::string key;          ///< 16-hex content hash
  std::string display_name; ///< netlist name (for humans)

  /// The unified entry point: owns the netlist, delay model and source
  /// statistics, and caches the CompiledDesign plan every analysis against
  /// this session reuses (recompiled lazily after a delay ECO).
  std::unique_ptr<Analyzer> analyzer;

  /// Warm incremental moment engine, created on first use (first
  /// spsta_moment analysis or first ECO edit) from the compiled plan. Uses
  /// exact settle comparison so its state is bit-identical to a fresh full
  /// run.
  std::unique_ptr<core::IncrementalSpsta> incremental;

  /// Bumped by every ECO edit (set_delay / set_source); stale cache
  /// entries are dropped on the bump.
  std::uint64_t eco_version = 0;

  /// (engine|params) -> result, valid for the current eco_version only.
  std::unordered_map<std::string, CachedAnalysis> cache;

  // Per-session counters surfaced by `stats`.
  std::uint64_t analyses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t eco_edits = 0;
  std::uint64_t queries = 0;

  mutable std::mutex mutex;

  /// \p shared_pattern_cache (nullable) is the service's process-wide
  /// switch-pattern cache, shared across sessions.
  Session(std::string key_, netlist::Netlist design_,
          core::PatternCache* shared_pattern_cache = nullptr);

  // Forwarders for the analyzer-owned design state.
  [[nodiscard]] const netlist::Netlist& design() const noexcept {
    return analyzer->design();
  }
  [[nodiscard]] const netlist::DelayModel& delays() const noexcept {
    return analyzer->delays();
  }
  [[nodiscard]] std::span<const netlist::SourceStats> sources() const noexcept {
    return analyzer->sources();
  }

  /// The warm incremental engine, constructing it (initial full analysis)
  /// on first call. Caller must hold `mutex`.
  core::IncrementalSpsta& warm_incremental();

  /// Applies a delay ECO: updates the analyzer (invalidating its plan),
  /// the warm incremental engine, bumps eco_version and clears the cache.
  /// Caller holds `mutex`.
  void apply_set_delay(netlist::NodeId id, const stats::Gaussian& delay);

  /// Applies a source-stats ECO. Caller holds `mutex`.
  void apply_set_source(std::size_t source_index, const netlist::SourceStats& stats);
};

/// Content-hash-addressed store of loaded designs.
class SessionStore {
 public:
  /// Loads (or re-finds) a design from already-parsed content. The key is
  /// the hash of (format tag, canonical text); loading identical content
  /// twice returns the existing session without re-parsing.
  /// \p shared_pattern_cache seeds fresh sessions' analyzers.
  /// Returns {session, freshly_created}.
  std::pair<Session*, bool> load(std::uint64_t content_hash, netlist::Netlist design,
                                 core::PatternCache* shared_pattern_cache = nullptr);

  /// Session by key; nullptr when absent.
  [[nodiscard]] Session* find(std::string_view key) const;

  /// Removes a session. Returns false when absent.
  bool unload(std::string_view key);

  [[nodiscard]] std::size_t size() const;

  /// Keys in load order (for `stats`).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Session>> sessions_;
  std::vector<std::string> order_;
};

}  // namespace spsta::service
