/// \file session.hpp
/// The analysis service's session store: designs parsed once, addressed by
/// a content hash, kept alive across requests together with their
/// `Analyzer` (delay model, source statistics, compiled analysis plan),
/// warm incremental engine and per-(engine, params) analysis result cache.
///
/// This is what turns the repo's one-shot binaries into a serving system:
/// the costly work (parsing, plan compilation, the first full analysis) is
/// paid once per design *content hash* — two clients loading the same
/// netlist share one Session and therefore one compiled plan — and every
/// later request against the same hash reuses it. The store doubles as the
/// service's cross-session plan/result cache: sessions are kept in LRU
/// order and evicted against an entry/byte budget.
///
/// Concurrency contract (the PR-6 bugfix): `load` never constructs a
/// Session (netlist parse + Analyzer + eager plan compile — the expensive
/// part) while holding the store mutex. A per-key in-flight latch makes
/// concurrent loaders of the *same* hash wait for the first builder, while
/// `find` / `unload` / `load` of other keys proceed unblocked for the
/// whole duration of a compile. Sessions are handed out as shared_ptr, so
/// an unload or LRU eviction can never free a session another thread is
/// still analyzing.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/incremental_spsta.hpp"
#include "hier/hier_analyzer.hpp"
#include "spsta_api.hpp"

namespace spsta::service {

/// FNV-1a 64-bit over arbitrary bytes — the content hash behind session
/// keys and cache keys. Stable across platforms and runs.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ull) noexcept;

/// 16-hex-digit rendering of a 64-bit hash (session key format).
[[nodiscard]] std::string hash_key(std::uint64_t h);

/// Inverse of hash_key: parses a 16-hex-digit session key back to the
/// content hash. nullopt when the string is not a 16-digit hex number.
/// The worker pool uses this so a session-bearing request routes to the
/// same shard as the `load` that created the session.
[[nodiscard]] std::optional<std::uint64_t> parse_hash_key(std::string_view key) noexcept;

/// One cached analysis: the full engine result plus bookkeeping.
struct CachedAnalysis {
  AnalysisResult result;
  double elapsed_seconds = 0.0;  ///< wall clock of the producing run
  std::uint64_t hits = 0;        ///< times served from cache
};

/// One cached hierarchical analysis (composed block models).
struct CachedHierAnalysis {
  hier::HierReport report;
  std::uint64_t hits = 0;
};

/// A loaded design and everything the service keeps warm for it.
///
/// Thread model: the session store hands out shared_ptr<Session>; all
/// mutable state (cache, incremental engine, counters, the analyzer's
/// delays/sources) is guarded by `mutex`. The netlist itself is immutable
/// after load, so concurrent engine runs over it are safe.
struct Session {
  std::string key;          ///< 16-hex content hash
  std::string display_name; ///< netlist name (for humans)

  /// The unified entry point: owns the netlist, delay model and source
  /// statistics, and caches the CompiledDesign plan every analysis against
  /// this session reuses (recompiled lazily after a delay ECO).
  std::unique_ptr<Analyzer> analyzer;

  /// Warm incremental moment engine, created on first use (first
  /// spsta_moment analysis or first ECO edit) from the compiled plan. Uses
  /// exact settle comparison so its state is bit-identical to a fresh full
  /// run.
  std::unique_ptr<core::IncrementalSpsta> incremental;

  /// Bumped by every ECO edit (set_delay / set_source); stale cache
  /// entries are dropped on the bump.
  std::uint64_t eco_version = 0;

  /// (engine|params) -> result, valid for the current eco_version only.
  std::unordered_map<std::string, CachedAnalysis> cache;

  /// Endpoint query cache for the warm moment engine, keyed on the
  /// incremental engine's monotone edit epoch: repeated `query` of the
  /// same nodes between edits reads here instead of re-walking (or
  /// re-copying) engine state. Invalidated lazily when the epoch moves.
  std::uint64_t query_cache_epoch = ~std::uint64_t{0};
  std::unordered_map<netlist::NodeId, core::NodeTop> query_cache;

  /// Hierarchical sessions only: the composition analyzer (flat sessions
  /// leave this null — is_hier() is the discriminator) and its per-params
  /// result cache. ECO edits are not supported on hierarchical sessions.
  std::unique_ptr<hier::HierAnalyzer> hier_analyzer;
  std::unordered_map<std::string, CachedHierAnalysis> hier_cache;

  // Per-session counters surfaced by `stats`.
  std::uint64_t analyses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t eco_edits = 0;
  std::uint64_t queries = 0;

  /// Construction-time estimate of the session's resident footprint
  /// (netlist + compiled plan + one warm result), the store's byte-budget
  /// currency. An estimate by design: eviction needs a stable number it
  /// can read without taking `mutex`.
  std::size_t approx_bytes = 0;

  mutable std::mutex mutex;

  /// \p shared_pattern_cache (nullable) is the service's process-wide
  /// switch-pattern cache, shared across sessions. The constructor
  /// compiles the analysis plan eagerly — Session construction IS the
  /// expensive step the store's latch protects, and the first analyze
  /// against the session finds the plan already warm.
  Session(std::string key_, netlist::Netlist design_,
          core::PatternCache* shared_pattern_cache = nullptr);

  /// Hierarchical session: owns a HierAnalyzer over \p design_. Block
  /// compilation (through the shared library in \p hier_options) is the
  /// expensive step here, protected by the same store latch.
  Session(std::string key_, netlist::HierDesign design_,
          const hier::HierAnalyzerOptions& hier_options);

  [[nodiscard]] bool is_hier() const noexcept { return hier_analyzer != nullptr; }

  // Forwarders for the analyzer-owned design state. Flat sessions only —
  // hierarchical sessions have no flat analyzer (guard with is_hier()).
  [[nodiscard]] const netlist::Netlist& design() const noexcept {
    return analyzer->design();
  }
  [[nodiscard]] const netlist::DelayModel& delays() const noexcept {
    return analyzer->delays();
  }
  [[nodiscard]] std::span<const netlist::SourceStats> sources() const noexcept {
    return analyzer->sources();
  }

  /// The warm incremental engine, constructing it (initial full analysis)
  /// on first call. Caller must hold `mutex`.
  core::IncrementalSpsta& warm_incremental();

  /// Applies a batch of ECO edits as one transaction: updates the analyzer
  /// (delays/sources), commits a single merged propagation wave on the
  /// warm incremental engine, bumps eco_version and clears the result
  /// caches. Returns the wave's cost (the per-request `nodes_reevaluated`
  /// / `settled_early` the protocol reports). Caller holds `mutex`.
  core::IncrementalSpsta::CommitStats apply_eco(
      std::span<const core::IncrementalSpsta::EcoEdit> edits);

  /// What-if probe against the warm engine: arrivals under \p edits at
  /// \p targets, with state/delays reverted afterwards. Neither
  /// eco_version nor the caches move. Caller holds `mutex`.
  core::IncrementalSpsta::ProbeResult probe_eco(
      std::span<const core::IncrementalSpsta::EcoEdit> edits,
      std::span<const netlist::NodeId> targets);

  /// Single-edit conveniences forwarding to apply_eco.
  core::IncrementalSpsta::CommitStats apply_set_delay(netlist::NodeId id,
                                                      const stats::Gaussian& delay);
  core::IncrementalSpsta::CommitStats apply_set_source(
      std::size_t source_index, const netlist::SourceStats& stats);
};

/// Entry/byte budget of the store's LRU eviction. 0 = unlimited. The byte
/// budget compares against the sum of Session::approx_bytes.
struct StoreBudget {
  std::size_t max_sessions = 0;
  std::size_t max_bytes = 0;
};

/// Content-hash-addressed store of loaded designs — the service's
/// cross-session plan cache, with LRU eviction against a StoreBudget.
class SessionStore {
 public:
  /// Builds the design a fresh session will own. Invoked outside the store
  /// mutex, and only when no session for the hash exists yet — so `load`
  /// callers can defer parsing into the factory and pay it exactly once
  /// per content hash.
  using DesignFactory = std::function<netlist::Netlist()>;

  /// Generalized factory: builds the whole Session (flat or hierarchical)
  /// for the given key. Same invocation contract as DesignFactory.
  using SessionFactory = std::function<std::shared_ptr<Session>(const std::string& key)>;

  /// Loads (or re-finds) a session built by \p make_session — the
  /// hierarchical entry point and the primitive the DesignFactory overload
  /// forwards to. Latch/eviction semantics are identical.
  std::pair<std::shared_ptr<Session>, bool> load(std::uint64_t content_hash,
                                                 const SessionFactory& make_session);

  /// Loads (or re-finds) a design. The key is the content hash rendered by
  /// hash_key(). When a session for the hash already exists (or is being
  /// built by a concurrent loader — the in-flight latch), the existing
  /// session is returned and \p make_design is never invoked.
  ///
  /// The factory and the Session constructor run OUTSIDE the store mutex:
  /// concurrent find/unload/load of other keys never wait for a compile.
  /// If the factory or constructor throws, the in-flight marker is removed
  /// (waiters retry, one becomes the next builder) and the exception
  /// propagates to this caller only.
  ///
  /// \p shared_pattern_cache seeds fresh sessions' analyzers.
  /// Returns {session, freshly_created}.
  std::pair<std::shared_ptr<Session>, bool> load(
      std::uint64_t content_hash, const DesignFactory& make_design,
      core::PatternCache* shared_pattern_cache = nullptr);

  /// Session by key; nullptr when absent or still being built. A hit
  /// refreshes the session's LRU position.
  [[nodiscard]] std::shared_ptr<Session> find(std::string_view key) const;

  /// Removes a session. Returns false when absent or still in flight.
  /// Threads still holding the shared_ptr keep the session alive.
  bool unload(std::string_view key);

  /// Ready sessions (in-flight builds excluded).
  [[nodiscard]] std::size_t size() const;

  /// Keys in LRU order, least recently used first (for `stats`).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Sets the eviction budget and immediately enforces it.
  void set_budget(StoreBudget budget);
  [[nodiscard]] StoreBudget budget() const;

  /// Sum of approx_bytes over ready sessions.
  [[nodiscard]] std::size_t approx_bytes() const;

  // Cross-session cache counters (process lifetime, relaxed).
  [[nodiscard]] std::uint64_t plan_hits() const noexcept {
    return plan_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plan_misses() const noexcept {
    return plan_misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Loads that waited on another loader's in-flight build of the same key.
  [[nodiscard]] std::uint64_t latch_waits() const noexcept {
    return latch_waits_.load(std::memory_order_relaxed);
  }
  /// In-flight builds right now (test observability for the latch).
  [[nodiscard]] std::size_t loading() const;

 private:
  /// Marks `key` most-recently-used. Caller holds mutex_.
  void touch_lru(const std::string& key) const;
  /// Evicts LRU sessions until the budget holds (never evicts in-flight
  /// builds; `keep` — the key just inserted — survives even over budget).
  /// Caller holds mutex_.
  void enforce_budget(const std::string& keep);

  mutable std::mutex mutex_;
  mutable std::condition_variable ready_cv_;  ///< in-flight latch wakeups
  /// nullptr value = in-flight marker: a loader is building this session
  /// outside the lock.
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  /// Ready keys in LRU order (front = evict next). Mutable: `find` is
  /// logically const but refreshes recency.
  mutable std::vector<std::string> order_;
  StoreBudget budget_;
  std::size_t bytes_ = 0;  ///< sum of approx_bytes over ready sessions

  std::atomic<std::uint64_t> plan_hits_{0};
  std::atomic<std::uint64_t> plan_misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> latch_waits_{0};
};

}  // namespace spsta::service
