/// \file service.hpp
/// The analysis service: executes protocol requests against the session
/// store, routing `analyze`/`query` through a per-session result cache
/// keyed on (design content hash, eco version, engine, params) and ECO
/// edits through the warm incremental engine.
///
/// Contract: execute() never throws — every failure becomes a structured
/// error response, so the daemon survives anything a client sends.
/// Thread model: every command may run concurrently with every other.
/// Read-only commands (analyze, query, stats, ping) serialize same-session
/// work on the per-session mutex; load/unload go through the session
/// store's latch (compiles happen outside the store lock, DESIGN.md §13),
/// and set_delay/set_source take the session mutex like reads. The batch
/// scheduler still runs mutating commands as barriers for deterministic
/// batch semantics; the sharded worker pool relies on per-shard FIFO plus
/// this internal locking instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "core/pattern_cache.hpp"
#include "hier/block_cache.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "spsta_api.hpp"

namespace spsta::service {

/// Engines the `analyze` / `query` commands accept — the unified API's
/// enum; wire names come from spsta::to_string / spsta::parse_engine.
using Engine = spsta::Engine;
using spsta::to_string;

/// JSON rendering of the process-wide obs registry (counters, gauges,
/// per-stage latency histograms). Shared by the `stats` command, the
/// apps' `--metrics` dump and bench/table3_runtime's stage breakdown.
[[nodiscard]] Json metrics_json();

/// The content hash a `load` of (format, content) resolves to — the
/// session key is hash_key() of this value. Exposed so the worker pool's
/// affinity router sends a load to the same shard that will later serve
/// the session it creates.
[[nodiscard]] std::uint64_t load_content_hash(std::string_view format,
                                              std::string_view content) noexcept;

/// Parsed analysis parameters: an AnalysisRequest whose optional fields
/// are set only when the client supplied them, so Analyzer validation
/// rejects options the chosen engine cannot honor instead of silently
/// ignoring them (the engine itself fills the defaults, which match the
/// one-shot binaries).
struct AnalyzeParams {
  AnalysisRequest request;

  /// Cache key for (engine, params). `threads` is deliberately excluded:
  /// the execution layer's determinism contract makes results bit-identical
  /// at any thread count, so a 1-thread and an 8-thread run share a cache
  /// entry.
  [[nodiscard]] std::string cache_key(Engine engine) const;
};

/// Aggregate wall-clock per engine, surfaced by `stats`.
struct EngineUsage {
  std::uint64_t runs = 0;
  double wall_seconds = 0.0;
};

class AnalysisService {
 public:
  AnalysisService();

  /// Executes one parsed request. Never throws.
  [[nodiscard]] Response execute(const Request& request);

  /// Parses and executes one protocol line. Never throws.
  [[nodiscard]] Response execute_line(std::string_view line);

  /// True once a `shutdown` request has been served.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const SessionStore& store() const noexcept { return store_; }
  [[nodiscard]] SessionStore& store() noexcept { return store_; }
  [[nodiscard]] core::PatternCache& pattern_cache() noexcept { return pattern_cache_; }
  [[nodiscard]] hier::BlockModelCache& block_models() noexcept { return block_models_; }
  [[nodiscard]] hier::BlockLibrary& block_library() noexcept { return block_library_; }

  /// Configures the cross-session LRU budget (forwards to the store). The
  /// hierarchical block-model cache shares the same byte ceiling: extracted
  /// port models are derived data, so they must never outgrow the sessions
  /// they serve.
  void set_store_budget(StoreBudget budget) {
    store_.set_budget(budget);
    block_models_.set_budget({0, budget.max_bytes});
  }

  /// Requests served so far (successes and failures).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  Response dispatch(const Request& request);
  Response handle_ping(const Request& request);
  Response handle_load(const Request& request);
  Response handle_analyze(const Request& request);
  Response handle_query(const Request& request);
  Response handle_set_delay(const Request& request);
  /// `set_delay` with `"probe":true`: what-if arrivals at the requested
  /// (or all endpoint) nodes under the edit batch, committing nothing.
  /// Caller (handle_set_delay) holds session.mutex.
  Response run_probe(const Request& request, Session& session,
                     std::span<const core::IncrementalSpsta::EcoEdit> edits);
  Response handle_set_source(const Request& request);
  Response handle_stats(const Request& request);
  Response handle_unload(const Request& request);
  Response handle_shutdown(const Request& request);

  /// The session named by the request's "session" field, or throws. The
  /// shared_ptr keeps the session alive across the handler even if a
  /// concurrent unload or LRU eviction drops it from the store.
  std::shared_ptr<Session> resolve_session(const Request& request);

  /// Cache lookup / engine run for (session, engine, params). Caller must
  /// hold session.mutex. Returns {entry, served_from_cache}.
  std::pair<const CachedAnalysis*, bool> ensure_analysis(Session& session,
                                                         Engine engine,
                                                         const AnalyzeParams& params);

  void record_engine_run(Engine engine, double seconds);

  SessionStore store_;
  core::PatternCache pattern_cache_;   ///< shared across sessions and engines
  hier::BlockModelCache block_models_; ///< extracted port models, shared across hier sessions
  hier::BlockLibrary block_library_;   ///< compiled blocks interned by content

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};

  std::mutex usage_mutex_;
  std::map<std::string, EngineUsage> usage_;  ///< keyed by engine wire name
};

}  // namespace spsta::service
