/// \file json.hpp
/// Minimal JSON value type, parser and writer for the analysis service's
/// JSON-lines protocol. Self-contained (no third-party dependency), with
/// the properties the protocol needs:
///
///   * objects preserve insertion order, so responses serialize
///     deterministically;
///   * numbers round-trip doubles exactly (shortest form that re-reads to
///     the same bits), so cached results compare bitwise across a dump /
///     parse cycle;
///   * the parser enforces a nesting-depth cap and reports byte offsets,
///     so hostile input produces a clean JsonParseError, never a crash.

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <string_view>
#include <utility>
#include <vector>

namespace spsta::service {

/// Error thrown by Json::parse; carries the byte offset of the failure.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& message);
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Thrown when a NaN or infinity reaches the serializer. JSON has no
/// representation for non-finite numbers, and silently emitting `0` would
/// fake a result (a zero delay) — the protocol layer converts this into a
/// structured `internal_error` response instead.
class NonFiniteNumberError : public std::invalid_argument {
 public:
  NonFiniteNumberError() : std::invalid_argument(
      "non-finite number has no JSON representation") {}
};

/// An immutable-ish JSON value. Objects are ordered key/value vectors
/// (duplicate keys are rejected by the parser; find returns the first).
class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;                       ///< null
  Json(std::nullptr_t) {}                 ///< null
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double n) : type_(Type::Number), number_(n) {}
  /// Any other arithmetic type converts through double.
  template <typename T>
    requires(std::is_arithmetic_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, double>)
  Json(T n) : type_(Type::Number), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), string_(s) {}
  Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  /// \p value as a JSON number, or null when non-finite — for *optional*
  /// numeric fields where "no value" is meaningful. Mandatory result
  /// fields should carry the finite value or fail serialization (see
  /// NonFiniteNumberError), never a placeholder.
  [[nodiscard]] static Json number_or_null(double value);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::Object; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Appends to an array value (converts a null to an array first).
  void push_back(Json value);
  /// Sets an object member (converts a null to an object first; replaces
  /// an existing member in place, preserving its position).
  void set(std::string_view key, Json value);

  /// Parses one JSON document; the whole input must be consumed (trailing
  /// whitespace allowed). Throws JsonParseError.
  [[nodiscard]] static Json parse(std::string_view text, std::size_t max_depth = 64);

  /// Compact single-line serialization (no trailing newline). Doubles use
  /// the shortest representation that parses back to the same value.
  /// Throws NonFiniteNumberError if the value holds a NaN or infinity.
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const Json&, const Json&) = default;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Formats a double as the shortest decimal string that parses back to
/// the same bits (JSON number syntax), independent of the process locale.
/// Throws NonFiniteNumberError for NaN / infinity — JSON has no
/// representation for them and a fake `0` would corrupt results.
[[nodiscard]] std::string json_number(double value);

}  // namespace spsta::service
