/// \file worker_pool.hpp
/// The scaled service runtime: a sharded worker pool with session-affinity
/// routing, bounded per-shard queues and admission control (ROADMAP item 1,
/// DESIGN.md §13).
///
/// Where the BatchScheduler optimizes one client's scripted batch for
/// deterministic output order, the WorkerPool optimizes many concurrent
/// clients for throughput under an explicit overload policy:
///
///   * N shards, each one worker thread plus a bounded FIFO queue;
///   * routing is by *content hash*: a request naming a session routes on
///     the session key's hash value, and a `load` routes on the content
///     hash of what it loads — so every request touching one design lands
///     on one shard (per-design FIFO, zero cross-shard contention on the
///     hot path) and identical designs submitted by different clients
///     share that shard's warm compiled plan via the session store;
///   * admission control: a submit against a full shard queue is answered
///     immediately with a structured `overloaded` error carrying a
///     `retry_after_ms` hint (queue depth × the shard's recent mean
///     service time) instead of queueing without bound — shed early,
///     shed cheap;
///   * deadline shedding at dequeue (queue wait burned the budget) plus
///     the service-internal re-check after the session mutex is won;
///   * a `service.pool.queue_depth` gauge tracks total queued requests.
///
/// Responses complete out of order across shards; submit() returns a
/// future per request and the daemon writes completions back in
/// submission order, preserving the protocol's ordering contract.
/// Commands with no routing key (ping, stats, shutdown) spread
/// round-robin.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "service/protocol.hpp"
#include "service/service.hpp"

namespace spsta::service {

struct WorkerPoolOptions {
  /// Worker shards (0 = one per hardware thread, capped at 16).
  unsigned shards = 0;
  /// Bounded queue capacity per shard; a submit beyond it is shed with
  /// `overloaded`.
  std::size_t queue_capacity = 256;
};

/// Aggregated pool counters (relaxed snapshots). Every submitted line is
/// accounted to exactly one outcome, so after drain() the identity
///
///   submitted == executed + rejected_overload + deadline_shed
///              + parse_errors + shutdown_shed
///
/// holds exactly (service_worker_pool_test asserts it).
struct WorkerPoolStats {
  std::uint64_t submitted = 0;          ///< lines accepted into submit()
  std::uint64_t executed = 0;           ///< requests a worker ran
  std::uint64_t rejected_overload = 0;  ///< shed by admission control
  std::uint64_t deadline_shed = 0;      ///< shed at dequeue (stale)
  std::uint64_t parse_errors = 0;       ///< answered at submit (bad envelope)
  std::uint64_t shutdown_shed = 0;      ///< answered at submit while stopping

  /// Outcomes accounted so far; equals `submitted` once the pool is idle.
  [[nodiscard]] std::uint64_t resolved() const noexcept {
    return executed + rejected_overload + deadline_shed + parse_errors +
           shutdown_shed;
  }
};

class WorkerPool {
 public:
  explicit WorkerPool(AnalysisService& service, WorkerPoolOptions options = {});
  /// Drains every queued job (each submitted request is answered exactly
  /// once) and joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Routes, admits and enqueues one request line. Returns a future that
  /// yields the response; a parse failure or an admission-control shed
  /// resolves the future immediately. \p enqueued is the deadline origin.
  /// \p binary_frames marks requests from binary-frame connections
  /// (DESIGN.md §15): handlers may then return bulk payloads as
  /// Response::waveforms sidecars.
  [[nodiscard]] std::future<Response> submit(
      std::string line,
      std::chrono::steady_clock::time_point enqueued = std::chrono::steady_clock::now(),
      bool binary_frames = false);

  /// Blocks until every queue is empty and no worker is mid-request.
  void drain();

  /// Begins a graceful shutdown: every later submit() is answered with
  /// `overloaded` ("shutting down") and counted in shutdown_shed; already
  /// queued requests still execute and workers exit once their queues are
  /// empty. Used by transports to fence late arrivals during drain.
  void stop_accepting();

  [[nodiscard]] unsigned shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return options_.queue_capacity;
  }
  /// Total requests queued right now (all shards).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return total_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] WorkerPoolStats stats() const noexcept;

  /// The shard a request routes to — exposed so tests can pin down the
  /// affinity contract (load of content C and analyze of the session C
  /// created land on the same shard).
  [[nodiscard]] unsigned route_shard(const Request& request) const;

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::uint64_t trace_id = 0;
  };

  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Job> queue;
    std::thread worker;
    /// EWMA of recent execute wall-clock, the retry-after currency.
    std::atomic<std::uint64_t> avg_execute_ns{1'000'000};
  };

  void worker_loop(Shard& shard);
  void update_depth_gauge() const;

  AnalysisService& service_;
  WorkerPoolOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::size_t> total_depth_{0};
  /// Accepted-but-unanswered requests: +1 on queue admit, -1 after the
  /// promise resolves. drain() waits for 0 — no gap where a job is
  /// neither queued nor counted.
  std::atomic<std::size_t> inflight_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  mutable std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<std::uint64_t> trace_seq_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> deadline_shed_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> shutdown_shed_{0};
};

}  // namespace spsta::service
