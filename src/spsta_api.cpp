#include "spsta_api.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

namespace spsta {

std::string_view to_string(Engine engine) noexcept {
  switch (engine) {
    case Engine::SpstaMoment:
      return "spsta_moment";
    case Engine::SpstaNumeric:
      return "spsta_numeric";
    case Engine::Canonical:
      return "canonical";
    case Engine::Ssta:
      return "ssta";
    case Engine::Mc:
      return "mc";
  }
  return "unknown";
}

std::optional<Engine> parse_engine(std::string_view name) noexcept {
  if (name == "spsta_moment") return Engine::SpstaMoment;
  if (name == "spsta_numeric") return Engine::SpstaNumeric;
  if (name == "canonical") return Engine::Canonical;
  if (name == "ssta") return Engine::Ssta;
  if (name == "mc") return Engine::Mc;
  return std::nullopt;
}

namespace {

[[noreturn]] void wrong_engine(Engine held, const char* wanted) {
  throw std::logic_error("AnalysisReport holds a " + std::string(to_string(held)) +
                         " result, not " + wanted);
}

}  // namespace

const core::SpstaResult& AnalysisReport::moment() const {
  const auto* r = std::get_if<core::SpstaResult>(&result);
  if (r == nullptr) wrong_engine(engine, "spsta_moment");
  return *r;
}

const core::SpstaNumericResult& AnalysisReport::numeric() const {
  const auto* r = std::get_if<core::SpstaNumericResult>(&result);
  if (r == nullptr) wrong_engine(engine, "spsta_numeric");
  return *r;
}

const core::SpstaCanonicalResult& AnalysisReport::canonical() const {
  const auto* r = std::get_if<core::SpstaCanonicalResult>(&result);
  if (r == nullptr) wrong_engine(engine, "canonical");
  return *r;
}

const ssta::SstaResult& AnalysisReport::ssta() const {
  const auto* r = std::get_if<ssta::SstaResult>(&result);
  if (r == nullptr) wrong_engine(engine, "ssta");
  return *r;
}

const mc::MonteCarloResult& AnalysisReport::monte_carlo() const {
  const auto* r = std::get_if<mc::MonteCarloResult>(&result);
  if (r == nullptr) wrong_engine(engine, "mc");
  return *r;
}

Analyzer::Analyzer(netlist::Netlist design, netlist::DelayModel delays,
                   std::vector<netlist::SourceStats> sources, Options options)
    : design_(std::move(design)), delays_(std::move(delays)),
      sources_(std::move(sources)), options_(options) {
  if (delays_.size() != design_.node_count()) {
    throw std::invalid_argument("Analyzer: delay model sized for a different netlist");
  }
  const std::size_t num_sources = design_.timing_sources().size();
  if (sources_.size() != num_sources && sources_.size() != 1) {
    throw std::invalid_argument("Analyzer: source stats count mismatch (" +
                                std::to_string(sources_.size()) + " entries for " +
                                std::to_string(num_sources) + " timing sources)");
  }
}

Analyzer::Analyzer(netlist::Netlist design, Options options)
    : design_(std::move(design)), delays_(netlist::DelayModel::unit(design_)),
      sources_{netlist::scenario_I()}, options_(options) {}

const core::CompiledDesign& Analyzer::plan() {
  const std::lock_guard<std::mutex> lock(plan_mutex_);
  if (!plan_) plan_ = std::make_unique<core::CompiledDesign>(design_, delays_);
  return *plan_;
}

std::uint64_t Analyzer::content_hash() { return plan().content_hash(); }

void Analyzer::validate(const AnalysisRequest& request) {
  const auto reject = [&](const char* field, const char* allowed) {
    throw std::invalid_argument(std::string("AnalysisRequest: ") + field +
                                " is not honored by engine '" +
                                std::string(to_string(request.engine)) +
                                "' (valid for " + allowed + " only)");
  };
  if (request.engine != Engine::SpstaNumeric) {
    if (request.grid_dt) reject("grid_dt", "spsta_numeric");
    if (request.grid_pad_sigma) reject("grid_pad_sigma", "spsta_numeric");
    if (request.max_grid_points) reject("max_grid_points", "spsta_numeric");
  }
  if (request.engine != Engine::Mc) {
    if (request.runs) reject("runs", "mc");
    if (request.seed) reject("seed", "mc");
    if (request.track_circuit_max) reject("track_circuit_max", "mc");
  }
  if (request.grid_dt && !(*request.grid_dt > 0.0)) {
    throw std::invalid_argument("AnalysisRequest: grid_dt must be > 0");
  }
  if (request.grid_pad_sigma && !(*request.grid_pad_sigma >= 0.0)) {
    throw std::invalid_argument("AnalysisRequest: grid_pad_sigma must be >= 0");
  }
  if (request.max_grid_points && *request.max_grid_points < 2) {
    throw std::invalid_argument("AnalysisRequest: max_grid_points must be >= 2");
  }
}

util::ThreadPool* Analyzer::acquire_pool(unsigned threads,
                                         std::unique_lock<std::mutex>& lock) {
  lock = std::unique_lock<std::mutex>(pool_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return nullptr;  // concurrent run holds the pool
  const unsigned resolved = util::resolve_threads(threads);
  if (resolved <= 1) return nullptr;  // serial runs need no pool at all
  if (!pool_ || pool_->size() != resolved) {
    pool_ = std::make_unique<util::ThreadPool>(resolved);
  }
  return pool_.get();
}

AnalysisReport Analyzer::run(const AnalysisRequest& request) {
  validate(request);
  const core::CompiledDesign& plan = this->plan();
  const unsigned threads = request.threads.value_or(options_.threads);

  AnalysisReport report;
  report.engine = request.engine;
  const auto start = std::chrono::steady_clock::now();
  switch (request.engine) {
    case Engine::SpstaMoment:
    case Engine::SpstaNumeric: {
      core::SpstaOptions opts;
      opts.threads = threads;
      opts.shared_pattern_cache = options_.shared_pattern_cache;
      std::unique_lock<std::mutex> pool_lock;
      opts.shared_pool = acquire_pool(threads, pool_lock);
      if (request.engine == Engine::SpstaNumeric) {
        const core::SpstaOptions defaults;
        opts.grid_dt = request.grid_dt.value_or(defaults.grid_dt);
        opts.grid_pad_sigma = request.grid_pad_sigma.value_or(defaults.grid_pad_sigma);
        opts.max_grid_points =
            request.max_grid_points.value_or(defaults.max_grid_points);
        report.result = core::run_spsta_numeric(plan, sources_, opts);
      } else {
        report.result = core::run_spsta_moment(plan, sources_, opts);
      }
      break;
    }
    case Engine::Canonical:
      report.result = core::run_spsta_canonical(plan, sources_);
      break;
    case Engine::Ssta:
      report.result = ssta::run_ssta(plan, sources_);
      break;
    case Engine::Mc: {
      mc::MonteCarloConfig cfg;
      cfg.threads = threads;
      cfg.runs = request.runs.value_or(cfg.runs);
      cfg.seed = request.seed.value_or(cfg.seed);
      cfg.track_circuit_max = request.track_circuit_max.value_or(false);
      std::unique_lock<std::mutex> pool_lock;
      cfg.shared_pool = acquire_pool(threads, pool_lock);
      report.result = mc::run_monte_carlo(plan, sources_, cfg);
      break;
    }
  }
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

void Analyzer::set_delay(netlist::NodeId id, const stats::Gaussian& delay) {
  if (id >= design_.node_count()) {
    throw std::invalid_argument("Analyzer::set_delay: bad node id");
  }
  const std::lock_guard<std::mutex> lock(plan_mutex_);
  delays_.set_delay(id, delay);
  plan_.reset();  // delay span products and content hash are stale
}

void Analyzer::set_source(std::size_t source_index, const netlist::SourceStats& stats) {
  // Source statistics are run inputs, not plan inputs: no recompile.
  if (sources_.size() == 1 && source_index < design_.timing_sources().size()) {
    // A broadcast entry must be expanded before a single source can move.
    sources_.assign(design_.timing_sources().size(), sources_[0]);
  }
  if (source_index >= sources_.size()) {
    throw std::invalid_argument("Analyzer::set_source: bad source index");
  }
  sources_[source_index] = stats;
}

}  // namespace spsta
