#include "mc/logic_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace spsta::mc {

using netlist::FourValue;
using netlist::GateType;
using netlist::NodeId;

SimValue eval_gate_timed(GateType type, std::span<const SimValue> inputs,
                         SimRunStats* stats, std::size_t* raw_changes) {
  constexpr std::size_t kMaxFanin = 64;
  if (inputs.size() > kMaxFanin) {
    throw std::invalid_argument("eval_gate_timed: fanin too large");
  }

  bool bits[kMaxFanin];
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    bits[i] = netlist::initial_value(inputs[i].value);
  }
  const bool out_initial = netlist::eval_gate(type, std::span<const bool>(bits, inputs.size()));

  // Order the switching inputs by time; then sweep, flipping one bit per
  // event and tracking the output's last change.
  struct Event {
    double time;
    std::size_t index;
  };
  Event events[kMaxFanin];
  std::size_t num_events = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const FourValue v = inputs[i].value;
    if (v == FourValue::Rise || v == FourValue::Fall) {
      events[num_events++] = {inputs[i].time, i};
    }
  }
  std::sort(events, events + num_events,
            [](const Event& a, const Event& b) { return a.time < b.time; });

  bool out_prev = out_initial;
  double last_change = 0.0;
  std::size_t changes = 0;
  for (std::size_t e = 0; e < num_events; ++e) {
    bits[events[e].index] = !bits[events[e].index];
    const bool out_now =
        netlist::eval_gate(type, std::span<const bool>(bits, inputs.size()));
    if (out_now != out_prev) {
      out_prev = out_now;
      last_change = events[e].time;
      ++changes;
    }
  }
  const bool out_final = out_prev;
  if (raw_changes) *raw_changes = changes;

  SimValue out;
  out.value = netlist::from_initial_final(out_initial, out_final);
  if (out_initial != out_final) {
    out.time = last_change;
    if (stats && changes > 1) {
      ++stats->glitching_gates;
      stats->filtered_changes += changes - 1;
    }
  } else if (changes > 0) {
    // Pure pulse: filtered to a constant (the paper does not count glitches).
    if (stats) {
      ++stats->glitching_gates;
      stats->filtered_changes += changes;
    }
  }
  return out;
}

std::vector<SimValue> simulate_once(const netlist::Netlist& design,
                                    const netlist::Levelization& levels,
                                    std::span<const SimValue> source_values,
                                    std::span<const double> gate_delays,
                                    SimRunStats* stats,
                                    std::vector<std::uint32_t>* raw_changes) {
  return simulate_once(design, levels, source_values, gate_delays, gate_delays,
                       stats, raw_changes);
}

std::vector<SimValue> simulate_once(const netlist::Netlist& design,
                                    const netlist::Levelization& levels,
                                    std::span<const SimValue> source_values,
                                    std::span<const double> rise_delays,
                                    std::span<const double> fall_delays,
                                    SimRunStats* stats,
                                    std::vector<std::uint32_t>* raw_changes) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_values.size() != sources.size()) {
    throw std::invalid_argument("simulate_once: source value count mismatch");
  }
  if (rise_delays.size() != design.node_count() ||
      fall_delays.size() != design.node_count()) {
    throw std::invalid_argument("simulate_once: delay count mismatch");
  }

  std::vector<SimValue> value(design.node_count());
  for (std::size_t i = 0; i < sources.size(); ++i) value[sources[i]] = source_values[i];
  if (raw_changes) {
    raw_changes->assign(design.node_count(), 0);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const FourValue v = source_values[i].value;
      (*raw_changes)[sources[i]] = (v == FourValue::Rise || v == FourValue::Fall) ? 1 : 0;
    }
  }

  std::vector<SimValue> ins;
  for (NodeId id : levels.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    ins.clear();
    for (NodeId f : node.fanins) ins.push_back(value[f]);
    std::size_t changes = 0;
    SimValue out = eval_gate_timed(node.type, ins, stats, raw_changes ? &changes : nullptr);
    if (raw_changes) (*raw_changes)[id] = static_cast<std::uint32_t>(changes);
    if (out.value == FourValue::Rise) {
      out.time += rise_delays[id];
    } else if (out.value == FourValue::Fall) {
      out.time += fall_delays[id];
    }
    value[id] = out;
  }
  return value;
}

}  // namespace spsta::mc
