/// \file monte_carlo.hpp
/// The Monte Carlo driver of the paper's experiment: N independent runs of
/// the four-value logic-timing simulator, with per-node accumulation of
/// value-occurrence counts and rise/fall arrival-time moments. This is the
/// ground truth SPSTA and SSTA are compared against (Tables 2-3).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mc/logic_sim.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "stats/histogram.hpp"
#include "stats/welford.hpp"

namespace spsta::core {
class CompiledDesign;
}
namespace spsta::util {
class ThreadPool;
}

namespace spsta::mc {

/// Monte Carlo configuration.
struct MonteCarloConfig {
  std::uint64_t runs = 10000;  ///< the paper uses 10K
  std::uint64_t seed = 1;
  /// Worker threads sharding the runs (0 = all hardware threads). Each
  /// run draws from its own RNG stream seeded by (seed, run index) and
  /// runs are accumulated chunk-by-chunk in a layout that depends only on
  /// `runs`, so results are bit-identical at any thread count.
  unsigned threads = 1;
  /// Optional node whose rise-arrival samples are histogrammed (Fig. 1).
  std::optional<netlist::NodeId> histogram_node;
  double histogram_lo = -5.0;
  double histogram_hi = 25.0;
  std::size_t histogram_bins = 120;
  /// Track the per-run maximum arrival over all timing endpoints (either
  /// direction) — the circuit-level delay sample behind timing yield.
  bool track_circuit_max = false;
  /// Optional long-lived pool (e.g. the Analyzer's); when set it overrides
  /// `threads` for dispatch and the run spawns no threads of its own. The
  /// pool must be idle (ThreadPool runs one job at a time).
  util::ThreadPool* shared_pool = nullptr;
};

/// Accumulated per-node estimates.
struct NodeEstimate {
  std::uint64_t count[4] = {0, 0, 0, 0};  ///< indexed by FourValue
  /// Pre-glitch-filter output edge count over all runs — the quantity
  /// transition-density power estimation predicts.
  std::uint64_t raw_edges = 0;
  stats::RunningMoments rise_time;
  stats::RunningMoments fall_time;

  /// Empirical four-value probabilities. With zero observed samples the
  /// estimate is the uninformative uniform {0.25, 0.25, 0.25, 0.25} — NOT
  /// a confident "P0 = 1" — so accuracy comparisons against analytic
  /// engines never score phantom agreement on never-simulated nodes.
  [[nodiscard]] netlist::FourValueProbs probs() const noexcept;
  /// P(value == Rise) over runs.
  [[nodiscard]] double rise_probability() const noexcept;
  [[nodiscard]] double fall_probability() const noexcept;
  /// Expected pre-filter edges per cycle.
  [[nodiscard]] double raw_edge_rate() const noexcept;
};

/// Full Monte Carlo result.
struct MonteCarloResult {
  std::vector<NodeEstimate> node;
  std::uint64_t runs = 0;
  /// Total glitch-filtered gates over all runs.
  std::uint64_t glitching_gates = 0;
  std::optional<stats::Histogram> histogram;

  /// Populated when config.track_circuit_max is set: moments of the
  /// per-run latest endpoint arrival, counted only over runs where some
  /// endpoint transitioned, plus the quiet-run count and the raw samples
  /// (sorted) for exact empirical yield queries.
  stats::RunningMoments circuit_max;
  std::uint64_t quiet_runs = 0;
  std::vector<double> circuit_max_samples;
  /// critical_count[node]: runs in which this endpoint had the latest
  /// arrival (zero for non-endpoints). Also requires track_circuit_max.
  std::vector<std::uint64_t> critical_count;

  /// Empirical timing yield: fraction of runs whose latest endpoint
  /// arrival is <= \p period (quiet runs always meet timing). Requires
  /// track_circuit_max.
  [[nodiscard]] double empirical_yield(double period) const;
};

/// Monte Carlo over a precompiled plan (implementation-level; application
/// code goes through the Analyzer facade in spsta_api.hpp): reuses the
/// plan's levelization and source/endpoint lists. Sampling depends only on
/// (seed, run index), so results are bit-identical to the legacy overload.
[[nodiscard]] MonteCarloResult run_monte_carlo(
    const core::CompiledDesign& plan,
    std::span<const netlist::SourceStats> source_stats, const MonteCarloConfig& config);

/// Runs the Monte Carlo experiment: per run, each timing source draws a
/// four-value from its probabilities and (for r/f) an arrival time from
/// its rise/fall distribution; per-gate delays with nonzero variance are
/// re-sampled each run. \p source_stats follows design.timing_sources()
/// order (single element broadcasts). Thin compile-then-run wrapper.
[[nodiscard]] MonteCarloResult run_monte_carlo(
    const netlist::Netlist& design, const netlist::DelayModel& delays,
    std::span<const netlist::SourceStats> source_stats, const MonteCarloConfig& config);

}  // namespace spsta::mc
