#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <array>

#include "core/compiled_design.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "util/thread_pool.hpp"

namespace spsta::mc {

using netlist::FourValue;
using netlist::NodeId;

netlist::FourValueProbs NodeEstimate::probs() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  // No samples: return the uninformative uniform estimate, not "P0 = 1".
  if (total <= 0.0) return {0.25, 0.25, 0.25, 0.25};
  return {static_cast<double>(count[static_cast<int>(FourValue::Zero)]) / total,
          static_cast<double>(count[static_cast<int>(FourValue::One)]) / total,
          static_cast<double>(count[static_cast<int>(FourValue::Rise)]) / total,
          static_cast<double>(count[static_cast<int>(FourValue::Fall)]) / total};
}

double NodeEstimate::rise_probability() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  return total <= 0.0
             ? 0.0
             : static_cast<double>(count[static_cast<int>(FourValue::Rise)]) / total;
}

double NodeEstimate::fall_probability() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  return total <= 0.0
             ? 0.0
             : static_cast<double>(count[static_cast<int>(FourValue::Fall)]) / total;
}

double NodeEstimate::raw_edge_rate() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  return total <= 0.0 ? 0.0 : static_cast<double>(raw_edges) / total;
}

double MonteCarloResult::empirical_yield(double period) const {
  if (runs == 0) return 1.0;
  const auto it = std::upper_bound(circuit_max_samples.begin(),
                                   circuit_max_samples.end(), period);
  const auto met = static_cast<std::uint64_t>(it - circuit_max_samples.begin());
  return static_cast<double>(met + quiet_runs) / static_cast<double>(runs);
}

namespace {

/// Per-chunk partial result. Chunks cover contiguous run-index ranges in a
/// layout that depends only on the total run count, and the final merge
/// walks chunks in index order — so the accumulated statistics are
/// bit-identical no matter how many threads processed the chunks.
struct ChunkAccum {
  std::vector<NodeEstimate> node;
  std::uint64_t glitching_gates = 0;
  std::optional<stats::Histogram> histogram;
  stats::RunningMoments circuit_max;
  std::uint64_t quiet_runs = 0;
  std::vector<double> circuit_max_samples;
  std::vector<std::uint64_t> critical_count;
};

}  // namespace

MonteCarloResult run_monte_carlo(const core::CompiledDesign& plan,
                                 std::span<const netlist::SourceStats> source_stats,
                                 const MonteCarloConfig& config) {
  plan.check_source_stats(source_stats, "run_monte_carlo");
  const netlist::Netlist& design = plan.design();
  const netlist::DelayModel& delays = plan.delays();
  const std::span<const NodeId> sources = plan.timing_sources();
  const netlist::Levelization& levels = plan.levelization();
  const std::span<const NodeId> endpoints = plan.timing_endpoints();
  const std::size_t node_count = plan.node_count();

  MonteCarloResult result;
  result.node.resize(node_count);
  result.critical_count.assign(node_count, 0);
  result.runs = config.runs;
  if (config.histogram_node) {
    result.histogram.emplace(config.histogram_lo, config.histogram_hi,
                             config.histogram_bins);
  }

  // Shared read-only baseline: mean delays, and whether any vary.
  std::vector<double> base_rise(node_count);
  std::vector<double> base_fall(node_count);
  bool delays_fixed = true;
  for (NodeId id = 0; id < node_count; ++id) {
    base_rise[id] = delays.delay(id, true).mean;
    base_fall[id] = delays.delay(id, false).mean;
    if (delays.delay(id, true).var > 0.0 || delays.delay(id, false).var > 0.0) {
      delays_fixed = false;
    }
  }

  // Chunk layout: a function of `runs` alone (never of the thread count).
  // At least 256 runs per chunk bounds accumulator memory; at most 32
  // chunks bounds it from the other side while keeping 8+ threads busy.
  static constexpr std::uint64_t kMinChunkRuns = 256;
  static constexpr std::uint64_t kMaxChunks = 32;
  const std::uint64_t chunk_runs =
      std::max(kMinChunkRuns, (config.runs + kMaxChunks - 1) / kMaxChunks);
  const std::size_t num_chunks =
      config.runs == 0 ? 0
                       : static_cast<std::size_t>((config.runs + chunk_runs - 1) / chunk_runs);
  std::vector<ChunkAccum> chunks(num_chunks);

  const auto run_chunk = [&](std::size_t c) {
    ChunkAccum& acc = chunks[c];
    acc.node.resize(node_count);
    if (config.histogram_node) {
      acc.histogram.emplace(config.histogram_lo, config.histogram_hi,
                            config.histogram_bins);
    }
    if (config.track_circuit_max) acc.critical_count.assign(node_count, 0);

    std::vector<SimValue> source_values(sources.size());
    std::vector<double> rise_delays = base_rise;
    std::vector<double> fall_delays = base_fall;
    std::vector<std::uint32_t> raw_changes;

    const std::uint64_t first = static_cast<std::uint64_t>(c) * chunk_runs;
    const std::uint64_t last = std::min(config.runs, first + chunk_runs);
    for (std::uint64_t run = first; run < last; ++run) {
      // One RNG stream per run, seeded by (seed, run index): which thread
      // executes the run is immaterial to what it draws.
      stats::Xoshiro256 rng = stats::Xoshiro256::for_stream(config.seed, run);

      // Draw source values and transition times.
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const netlist::SourceStats& st =
            source_stats.size() == 1 ? source_stats[0] : source_stats[i];
        const std::array<double, 4> weights{st.probs.p0, st.probs.p1, st.probs.pr,
                                            st.probs.pf};
        static constexpr std::array<FourValue, 4> values{
            FourValue::Zero, FourValue::One, FourValue::Rise, FourValue::Fall};
        const FourValue v = values[rng.categorical(weights)];
        SimValue sv;
        sv.value = v;
        if (v == FourValue::Rise) {
          sv.time = rng.normal(st.rise_arrival.mean, st.rise_arrival.stddev());
        } else if (v == FourValue::Fall) {
          sv.time = rng.normal(st.fall_arrival.mean, st.fall_arrival.stddev());
        }
        source_values[i] = sv;
      }
      // Re-sample variational gate delays (per direction; only one applies
      // per gate per cycle, so independent draws are fine).
      if (!delays_fixed) {
        for (NodeId id = 0; id < node_count; ++id) {
          const stats::Gaussian& dr = delays.delay(id, true);
          const stats::Gaussian& df = delays.delay(id, false);
          rise_delays[id] = dr.var > 0.0 ? rng.normal(dr.mean, dr.stddev()) : dr.mean;
          fall_delays[id] = df.var > 0.0 ? rng.normal(df.mean, df.stddev()) : df.mean;
        }
      }

      SimRunStats run_stats;
      const std::vector<SimValue> value =
          simulate_once(design, levels, source_values, rise_delays, fall_delays,
                        &run_stats, &raw_changes);
      acc.glitching_gates += run_stats.glitching_gates;

      for (NodeId id = 0; id < node_count; ++id) {
        NodeEstimate& est = acc.node[id];
        ++est.count[static_cast<int>(value[id].value)];
        est.raw_edges += raw_changes[id];
        if (value[id].value == FourValue::Rise) {
          est.rise_time.add(value[id].time);
        } else if (value[id].value == FourValue::Fall) {
          est.fall_time.add(value[id].time);
        }
      }
      if (config.histogram_node && acc.histogram) {
        const SimValue& v = value[*config.histogram_node];
        if (v.value == FourValue::Rise) acc.histogram->add(v.time);
      }
      if (config.track_circuit_max) {
        bool any = false;
        double latest = 0.0;
        NodeId latest_ep = 0;
        for (NodeId ep : endpoints) {
          const SimValue& v = value[ep];
          if (v.value == FourValue::Rise || v.value == FourValue::Fall) {
            if (!any || v.time > latest) {
              latest = v.time;
              latest_ep = ep;
            }
            any = true;
          }
        }
        if (any) {
          acc.circuit_max.add(latest);
          acc.circuit_max_samples.push_back(latest);
          ++acc.critical_count[latest_ep];
        } else {
          ++acc.quiet_runs;
        }
      }
    }
  };

  {
    static obs::LatencyHistogram& shard_hist =
        obs::registry().histogram("stage.mc.shards");
    const obs::StageTimer timer(shard_hist);
    util::ThreadPool local_pool(config.shared_pool != nullptr ? 1 : config.threads);
    util::ThreadPool& pool =
        config.shared_pool != nullptr ? *config.shared_pool : local_pool;
    pool.for_each_index(num_chunks, run_chunk);
  }

  static obs::LatencyHistogram& merge_hist =
      obs::registry().histogram("stage.mc.merge");
  const obs::StageTimer merge_timer(merge_hist);
  // Ordered merge: chunk index order == run order, independent of threads.
  for (const ChunkAccum& acc : chunks) {
    for (NodeId id = 0; id < node_count; ++id) {
      NodeEstimate& est = result.node[id];
      const NodeEstimate& part = acc.node[id];
      for (int v = 0; v < 4; ++v) est.count[v] += part.count[v];
      est.raw_edges += part.raw_edges;
      est.rise_time.merge(part.rise_time);
      est.fall_time.merge(part.fall_time);
    }
    result.glitching_gates += acc.glitching_gates;
    if (result.histogram && acc.histogram) result.histogram->merge(*acc.histogram);
    result.circuit_max.merge(acc.circuit_max);
    result.quiet_runs += acc.quiet_runs;
    result.circuit_max_samples.insert(result.circuit_max_samples.end(),
                                      acc.circuit_max_samples.begin(),
                                      acc.circuit_max_samples.end());
    if (config.track_circuit_max) {
      for (NodeId id = 0; id < node_count; ++id) {
        result.critical_count[id] += acc.critical_count[id];
      }
    }
  }
  std::sort(result.circuit_max_samples.begin(), result.circuit_max_samples.end());
  return result;
}

MonteCarloResult run_monte_carlo(const netlist::Netlist& design,
                                 const netlist::DelayModel& delays,
                                 std::span<const netlist::SourceStats> source_stats,
                                 const MonteCarloConfig& config) {
  return run_monte_carlo(core::CompiledDesign(design, delays), source_stats, config);
}

}  // namespace spsta::mc
