#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "stats/rng.hpp"

namespace spsta::mc {

using netlist::FourValue;
using netlist::NodeId;

netlist::FourValueProbs NodeEstimate::probs() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  if (total <= 0.0) return {1.0, 0.0, 0.0, 0.0};
  return {static_cast<double>(count[static_cast<int>(FourValue::Zero)]) / total,
          static_cast<double>(count[static_cast<int>(FourValue::One)]) / total,
          static_cast<double>(count[static_cast<int>(FourValue::Rise)]) / total,
          static_cast<double>(count[static_cast<int>(FourValue::Fall)]) / total};
}

double NodeEstimate::rise_probability() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  return total <= 0.0
             ? 0.0
             : static_cast<double>(count[static_cast<int>(FourValue::Rise)]) / total;
}

double NodeEstimate::fall_probability() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  return total <= 0.0
             ? 0.0
             : static_cast<double>(count[static_cast<int>(FourValue::Fall)]) / total;
}

double NodeEstimate::raw_edge_rate() const noexcept {
  const double total = static_cast<double>(count[0] + count[1] + count[2] + count[3]);
  return total <= 0.0 ? 0.0 : static_cast<double>(raw_edges) / total;
}

double MonteCarloResult::empirical_yield(double period) const {
  if (runs == 0) return 1.0;
  const auto it = std::upper_bound(circuit_max_samples.begin(),
                                   circuit_max_samples.end(), period);
  const auto met = static_cast<std::uint64_t>(it - circuit_max_samples.begin());
  return static_cast<double>(met + quiet_runs) / static_cast<double>(runs);
}

MonteCarloResult run_monte_carlo(const netlist::Netlist& design,
                                 const netlist::DelayModel& delays,
                                 std::span<const netlist::SourceStats> source_stats,
                                 const MonteCarloConfig& config) {
  const std::vector<NodeId> sources = design.timing_sources();
  if (source_stats.size() != sources.size() && source_stats.size() != 1) {
    throw std::invalid_argument("run_monte_carlo: source stats count mismatch");
  }
  const netlist::Levelization levels = netlist::levelize(design);
  const std::vector<NodeId> endpoints = design.timing_endpoints();

  MonteCarloResult result;
  result.node.resize(design.node_count());
  result.critical_count.assign(design.node_count(), 0);
  result.runs = config.runs;
  if (config.histogram_node) {
    result.histogram.emplace(config.histogram_lo, config.histogram_hi,
                             config.histogram_bins);
  }

  stats::Xoshiro256 rng(config.seed);
  std::vector<SimValue> source_values(sources.size());
  std::vector<double> rise_delays(design.node_count());
  std::vector<double> fall_delays(design.node_count());
  bool delays_fixed = true;
  for (NodeId id = 0; id < design.node_count(); ++id) {
    rise_delays[id] = delays.delay(id, true).mean;
    fall_delays[id] = delays.delay(id, false).mean;
    if (delays.delay(id, true).var > 0.0 || delays.delay(id, false).var > 0.0) {
      delays_fixed = false;
    }
  }

  for (std::uint64_t run = 0; run < config.runs; ++run) {
    // Draw source values and transition times.
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const netlist::SourceStats& st =
          source_stats.size() == 1 ? source_stats[0] : source_stats[i];
      const std::array<double, 4> weights{st.probs.p0, st.probs.p1, st.probs.pr,
                                          st.probs.pf};
      static constexpr std::array<FourValue, 4> values{FourValue::Zero, FourValue::One,
                                                       FourValue::Rise, FourValue::Fall};
      const FourValue v = values[rng.categorical(weights)];
      SimValue sv;
      sv.value = v;
      if (v == FourValue::Rise) {
        sv.time = rng.normal(st.rise_arrival.mean, st.rise_arrival.stddev());
      } else if (v == FourValue::Fall) {
        sv.time = rng.normal(st.fall_arrival.mean, st.fall_arrival.stddev());
      }
      source_values[i] = sv;
    }
    // Re-sample variational gate delays (per direction; only one applies
    // per gate per cycle, so independent draws are fine).
    if (!delays_fixed) {
      for (NodeId id = 0; id < design.node_count(); ++id) {
        const stats::Gaussian& dr = delays.delay(id, true);
        const stats::Gaussian& df = delays.delay(id, false);
        rise_delays[id] = dr.var > 0.0 ? rng.normal(dr.mean, dr.stddev()) : dr.mean;
        fall_delays[id] = df.var > 0.0 ? rng.normal(df.mean, df.stddev()) : df.mean;
      }
    }

    SimRunStats run_stats;
    std::vector<std::uint32_t> raw_changes;
    const std::vector<SimValue> value =
        simulate_once(design, levels, source_values, rise_delays, fall_delays,
                      &run_stats, &raw_changes);
    result.glitching_gates += run_stats.glitching_gates;

    for (NodeId id = 0; id < design.node_count(); ++id) {
      NodeEstimate& est = result.node[id];
      ++est.count[static_cast<int>(value[id].value)];
      est.raw_edges += raw_changes[id];
      if (value[id].value == FourValue::Rise) {
        est.rise_time.add(value[id].time);
      } else if (value[id].value == FourValue::Fall) {
        est.fall_time.add(value[id].time);
      }
    }
    if (config.histogram_node && result.histogram) {
      const SimValue& v = value[*config.histogram_node];
      if (v.value == FourValue::Rise) result.histogram->add(v.time);
    }
    if (config.track_circuit_max) {
      bool any = false;
      double latest = 0.0;
      NodeId latest_ep = 0;
      for (NodeId ep : endpoints) {
        const SimValue& v = value[ep];
        if (v.value == FourValue::Rise || v.value == FourValue::Fall) {
          if (!any || v.time > latest) {
            latest = v.time;
            latest_ep = ep;
          }
          any = true;
        }
      }
      if (any) {
        result.circuit_max.add(latest);
        result.circuit_max_samples.push_back(latest);
        ++result.critical_count[latest_ep];
      } else {
        ++result.quiet_runs;
      }
    }
  }
  std::sort(result.circuit_max_samples.begin(), result.circuit_max_samples.end());
  return result;
}

}  // namespace spsta::mc
