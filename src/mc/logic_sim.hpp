/// \file logic_sim.hpp
/// One run of the paper's four-value logic-timing simulator (Sec. 4):
/// values in {0, 1, r, f} with arrival times on transitions, propagated
/// through the levelized netlist with glitch filtering.
///
/// Timing semantics: a gate's switching inputs partition time into
/// intervals; the output's transition time is the instant after which the
/// output stays at its final value (its *last* change), plus the gate
/// delay. For an AND gate this reduces to Table 1's rules — MAX over
/// rising inputs for an output rise, MIN over falling inputs for an output
/// fall — and it generalizes to every gate type, including XOR.

#pragma once

#include <span>
#include <vector>

#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace spsta::mc {

/// Value of one net during a run. `time` is meaningful only when `value`
/// is Rise or Fall.
struct SimValue {
  netlist::FourValue value = netlist::FourValue::Zero;
  double time = 0.0;
};

/// Per-run observability extras.
struct SimRunStats {
  /// Gates whose output pulsed (changed and returned) — the glitches the
  /// four-value logic filters out.
  std::size_t glitching_gates = 0;
  /// Total filtered output changes beyond the settled transition.
  std::size_t filtered_changes = 0;
};

/// Evaluates one gate: four-value output plus settled transition time
/// (before gate delay). Exposed for unit tests of the Table 1 semantics.
/// \p raw_changes (optional) receives the number of output value changes
/// *before* glitch filtering — the edge count transition-density power
/// estimation predicts.
[[nodiscard]] SimValue eval_gate_timed(netlist::GateType type,
                                       std::span<const SimValue> inputs,
                                       SimRunStats* stats = nullptr,
                                       std::size_t* raw_changes = nullptr);

/// Simulates one vector. \p source_values follows
/// design.timing_sources() order; \p gate_delays supplies one realized
/// delay per node id. Returns a value per node id. \p raw_changes
/// (optional, size node_count) receives per-node pre-filter edge counts.
[[nodiscard]] std::vector<SimValue> simulate_once(
    const netlist::Netlist& design, const netlist::Levelization& levels,
    std::span<const SimValue> source_values, std::span<const double> gate_delays,
    SimRunStats* stats = nullptr, std::vector<std::uint32_t>* raw_changes = nullptr);

/// Direction-aware variant: a gate whose output rises uses
/// \p rise_delays, a falling output uses \p fall_delays.
[[nodiscard]] std::vector<SimValue> simulate_once(
    const netlist::Netlist& design, const netlist::Levelization& levels,
    std::span<const SimValue> source_values, std::span<const double> rise_delays,
    std::span<const double> fall_delays, SimRunStats* stats = nullptr,
    std::vector<std::uint32_t>* raw_changes = nullptr);

}  // namespace spsta::mc
