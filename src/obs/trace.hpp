/// \file trace.hpp
/// Per-request trace log: one JSON line per served request, appended to a
/// file the operator names (`spsta_serviced --trace=FILE`). Each event
/// carries the request's trace id (also echoed in the response envelope),
/// the command, outcome, and the span breakdown the scheduler and serve
/// loop measured: queue wait, execute, serialize.
///
/// The writer is deliberately independent of the service's Json type (the
/// obs layer sits below everything) and formats numbers with
/// std::to_chars, so trace output is locale-independent like the rest of
/// the numeric I/O.

#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace spsta::obs {

/// One served request's span breakdown.
struct TraceEvent {
  std::uint64_t trace_id = 0;
  std::string_view cmd;        ///< protocol command ("" for envelope errors)
  bool ok = false;             ///< response outcome
  double queue_ms = 0.0;       ///< enqueue -> execution start
  double execute_ms = 0.0;     ///< handler wall-clock
  double serialize_ms = 0.0;   ///< response -> wire line
};

/// Append-only JSON-lines trace sink. Thread-safe; write() under a mutex
/// so concurrent scheduler threads never interleave lines. A TraceLog
/// that failed to open is inert (ok() == false, write() drops events).
class TraceLog {
 public:
  TraceLog() = default;
  explicit TraceLog(const std::string& path);
  ~TraceLog();
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t events_written() const noexcept { return events_; }

  void write(const TraceEvent& event);

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint64_t events_ = 0;
};

/// Formats one trace event as a JSON line (no trailing newline). Exposed
/// for tests.
[[nodiscard]] std::string trace_line(const TraceEvent& event);

}  // namespace spsta::obs
