#include "obs/trace.hpp"

#include <charconv>
#include <cmath>

namespace spsta::obs {

namespace {

/// Locale-independent shortest-round-trip double rendering; non-finite
/// spans (should not happen — they come from clock differences) clamp to 0
/// rather than corrupting the log with invalid JSON.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, ec == std::errc() ? end : buf + 1);  // "0" fallback
}

/// Minimal JSON string escaping (commands come off the wire, so they can
/// hold anything).
void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      static constexpr char hex[] = "0123456789abcdef";
      out += "\\u00";
      out.push_back(hex[u >> 4]);
      out.push_back(hex[u & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

std::string trace_line(const TraceEvent& event) {
  std::string out;
  out.reserve(128);
  out += "{\"trace_id\":\"t-";
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, event.trace_id);
  out.append(buf, ec == std::errc() ? end : buf);
  out += "\",\"cmd\":";
  append_escaped(out, event.cmd);
  out += ",\"ok\":";
  out += event.ok ? "true" : "false";
  out += ",\"queue_ms\":";
  append_number(out, event.queue_ms);
  out += ",\"execute_ms\":";
  append_number(out, event.execute_ms);
  out += ",\"serialize_ms\":";
  append_number(out, event.serialize_ms);
  out.push_back('}');
  return out;
}

TraceLog::TraceLog(const std::string& path) : file_(std::fopen(path.c_str(), "a")) {}

TraceLog::~TraceLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceLog::write(const TraceEvent& event) {
  if (file_ == nullptr) return;
  const std::string line = trace_line(event);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  ++events_;
}

}  // namespace spsta::obs
