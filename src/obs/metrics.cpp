#include "obs/metrics.hpp"

#include <algorithm>

namespace spsta::obs {

namespace detail {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}

}  // namespace detail

namespace {

template <typename Map, typename Metric = typename Map::mapped_type::element_type>
Metric& get_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  return *map.emplace(std::string(name), std::make_unique<Metric>()).first->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return get_or_create(mutex_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create(mutex_, gauges_, name);
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  return get_or_create(mutex_, histograms_, name);
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.enabled = enabled();
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramValue v;
    v.name = name;
    v.count = h->count();
    v.total_ns = h->total_ns();
    v.max_ns = h->max_ns();
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n != 0) v.buckets.push_back({LatencyHistogram::bucket_upper_us(i), n});
    }
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

double Snapshot::histogram_total_ms(std::string_view name) const noexcept {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return static_cast<double>(h.total_ns) * 1e-6;
  }
  return 0.0;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double Snapshot::histogram_quantile_ms(std::string_view name,
                                       double q) const noexcept {
  for (const HistogramValue& h : histograms) {
    if (h.name != name) continue;
    if (h.count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the q-th sample (1-based, ceil): the smallest bucket whose
    // cumulative count reaches it holds the quantile.
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       q * static_cast<double>(h.count) + 0.9999999));
    std::uint64_t seen = 0;
    for (const HistogramValue::Bucket& b : h.buckets) {
      seen += b.count;
      if (seen >= rank) {
        if (b.upper_us == UINT64_MAX) {
          return static_cast<double>(h.max_ns) * 1e-6;  // overflow: true max
        }
        return static_cast<double>(b.upper_us) * 1e-3;
      }
    }
    return static_cast<double>(h.max_ns) * 1e-6;
  }
  return 0.0;
}

Registry& registry() noexcept {
  static Registry instance;
  return instance;
}

}  // namespace spsta::obs
