/// \file metrics.hpp
/// The observability layer's metrics registry: named counters, gauges and
/// fixed-bucket latency histograms, plus the RAII stage timer the engines
/// and the service use to attribute wall-clock to pipeline stages.
///
/// Overhead contract (DESIGN.md §10):
///   * compiled out (SPSTA_OBS_ENABLED=0): every record path is a
///     constant-false branch the compiler deletes — no atomics, no clock
///     reads, no registry writes;
///   * compiled in but disabled at runtime (set_enabled(false)): one
///     relaxed atomic load per record site, nothing else;
///   * enabled: one relaxed atomic add per counter increment; a timer
///     costs two steady_clock reads plus a handful of relaxed adds at
///     scope exit.
///
/// Metrics NEVER feed back into analysis: they are not part of any result
/// cache key and no engine reads them, so results stay bit-identical with
/// metrics on, off, or compiled out (the determinism contract holds;
/// tests/determinism_test.cpp checks it).
///
/// Hot paths hold a reference obtained once:
///
///   static obs::LatencyHistogram& h = obs::registry().histogram("stage.x");
///   obs::StageTimer timer(h);

#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef SPSTA_OBS_ENABLED
#define SPSTA_OBS_ENABLED 1
#endif

namespace spsta::obs {

/// True when instrumentation was compiled in (SPSTA_OBS_ENABLED).
inline constexpr bool kCompiledIn = SPSTA_OBS_ENABLED != 0;

namespace detail {
/// Runtime switch; one relaxed load per record site when compiled in.
[[nodiscard]] std::atomic<bool>& enabled_flag() noexcept;
}  // namespace detail

/// True when recording is active (compiled in AND runtime-enabled).
[[nodiscard]] inline bool enabled() noexcept {
  if constexpr (!kCompiledIn) return false;
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

/// Toggles recording at runtime. A no-op when compiled out.
inline void set_enabled(bool on) noexcept {
  if constexpr (kCompiledIn) {
    detail::enabled_flag().store(on, std::memory_order_relaxed);
  }
}

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (double payload).
class Gauge {
 public:
  void set(double x) noexcept {
    if (enabled()) {
      bits_.store(std::bit_cast<std::uint64_t>(x), std::memory_order_relaxed);
    }
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bucket latency histogram over log2-spaced microsecond bounds:
/// bucket 0 holds sub-microsecond samples, bucket i (1 <= i < kBuckets-1)
/// holds [2^(i-1), 2^i) µs, and the last bucket is the overflow. Bucket
/// layout is fixed at compile time, so recording is a relaxed add with no
/// allocation and snapshots need no locking.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 22;  ///< overflow at ~1.05 s

  void record_ns(std::uint64_t ns) noexcept {
    if (!enabled()) return;
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    // Relaxed CAS max: losing a race only ever keeps a larger value.
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket \p i in µs; UINT64_MAX for overflow.
  [[nodiscard]] static std::uint64_t bucket_upper_us(std::size_t i) noexcept {
    if (i + 1 >= kBuckets) return UINT64_MAX;
    return std::uint64_t{1} << i;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) noexcept {
    const std::uint64_t us = ns / 1000;
    if (us == 0) return 0;
    return std::min<std::size_t>(kBuckets - 1, std::bit_width(us));
  }

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Point-in-time copy of every registered metric (lock held only for the
/// name walk; values are relaxed reads, so a snapshot taken concurrently
/// with recording is approximate — by design).
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    struct Bucket {
      std::uint64_t upper_us = 0;  ///< UINT64_MAX = overflow bucket
      std::uint64_t count = 0;
    };
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::vector<Bucket> buckets;  ///< non-empty buckets only
  };

  bool enabled = false;
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Convenience: total of histogram \p name in milliseconds (0 if absent).
  [[nodiscard]] double histogram_total_ms(std::string_view name) const noexcept;
  /// Convenience: value of counter \p name (0 if absent).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;
  /// Quantile estimate (q in [0,1]) of histogram \p name in milliseconds,
  /// from the log2 bucket bounds: the value returned is the upper bound of
  /// the bucket holding the q-th sample (the overflow bucket reports the
  /// recorded max), so it is an upper estimate with bucket resolution —
  /// what a fixed-bucket histogram can honestly answer. 0 when the
  /// histogram is absent or empty. The service load bench reports
  /// p50/p95/p99 through this.
  [[nodiscard]] double histogram_quantile_ms(std::string_view name,
                                             double q) const noexcept;
};

/// Name-addressed metric store. Metrics live for the process lifetime
/// (stable addresses), so hot paths cache references; get-or-create takes
/// a mutex but is intended to run once per call site via a function-local
/// static.
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);

  /// Zeroes every registered metric's value (registrations stay — cached
  /// references remain valid). Benchmarks use this between sections.
  void reset_values();

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
};

/// The process-wide registry.
[[nodiscard]] Registry& registry() noexcept;

/// RAII stage timer: measures its own scope into a LatencyHistogram.
/// Decides enabled-ness once at construction; a disabled timer never
/// reads the clock.
class StageTimer {
 public:
  explicit StageTimer(LatencyHistogram& sink) noexcept
      : sink_(enabled() ? &sink : nullptr) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (sink_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      sink_->record_ns(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  LatencyHistogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spsta::obs
