#include "bdd/equivalence.hpp"

#include <algorithm>
#include <map>

#include "bdd/bdd_netlist.hpp"
#include "netlist/levelize.hpp"

namespace spsta::bdd {

using netlist::Netlist;
using netlist::NodeId;

namespace {

/// Output functions keyed by a stable name: PO net names plus
/// "<dff>.D" for flip-flop data pins.
std::map<std::string, NodeId> output_map(const Netlist& n) {
  std::map<std::string, NodeId> out;
  for (NodeId id : n.primary_outputs()) out.emplace(n.node(id).name, id);
  for (NodeId q : n.dffs()) {
    if (!n.node(q).fanins.empty()) {
      out.emplace(n.node(q).name + ".D", n.node(q).fanins[0]);
    }
  }
  return out;
}

}  // namespace

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    std::size_t max_bdd_nodes) {
  EquivalenceResult result;

  // Source name sets must match; build b's variable order to mirror a's.
  std::vector<std::string> a_sources, b_sources;
  for (NodeId id : a.timing_sources()) a_sources.push_back(a.node(id).name);
  for (NodeId id : b.timing_sources()) b_sources.push_back(b.node(id).name);
  std::vector<std::string> a_sorted = a_sources, b_sorted = b_sources;
  std::sort(a_sorted.begin(), a_sorted.end());
  std::sort(b_sorted.begin(), b_sorted.end());
  if (a_sorted != b_sorted) {
    result.failure_reason = "timing source name sets differ";
    return result;
  }
  const std::map<std::string, NodeId> a_outs = output_map(a);
  const std::map<std::string, NodeId> b_outs = output_map(b);
  if (a_outs.size() != b_outs.size() ||
      !std::equal(a_outs.begin(), a_outs.end(), b_outs.begin(),
                  [](const auto& x, const auto& y) { return x.first == y.first; })) {
    result.failure_reason = "output name sets differ";
    return result;
  }
  result.source_names = a_sources;

  // Build both designs' BDDs in one shared manager so functions compare
  // by canonical reference. Compose manually: build a's BDDs, then b's
  // with variables remapped to a's order.
  NetlistBdds a_bdds = build_netlist_bdds(a, max_bdd_nodes);
  // Map b's source index -> a's variable index by name.
  std::map<std::string, std::size_t> var_of;
  for (std::size_t i = 0; i < a_sources.size(); ++i) var_of.emplace(a_sources[i], i);

  // Evaluate b's functions inside a's manager by topological rebuild.
  std::vector<std::optional<BddRef>> b_fn(b.node_count());
  const netlist::Levelization lv = netlist::levelize(b);
  for (NodeId id : lv.order) {
    const netlist::Node& node = b.node(id);
    if (!netlist::is_combinational(node.type)) {
      b_fn[id] = a_bdds.manager.var(var_of.at(node.name));
      continue;
    }
    bool ok = true;
    std::vector<BddRef> ins;
    for (NodeId f : node.fanins) {
      if (!b_fn[f]) {
        ok = false;
        break;
      }
      ins.push_back(*b_fn[f]);
    }
    if (!ok) continue;
    try {
      BddRef acc;
      switch (node.type) {
        case netlist::GateType::Const0: acc = kFalse; break;
        case netlist::GateType::Const1: acc = kTrue; break;
        case netlist::GateType::Buf: acc = ins.at(0); break;
        case netlist::GateType::Not: acc = a_bdds.manager.apply_not(ins.at(0)); break;
        case netlist::GateType::And:
        case netlist::GateType::Nand: {
          acc = kTrue;
          for (BddRef f : ins) acc = a_bdds.manager.apply_and(acc, f);
          if (node.type == netlist::GateType::Nand) acc = a_bdds.manager.apply_not(acc);
          break;
        }
        case netlist::GateType::Or:
        case netlist::GateType::Nor: {
          acc = kFalse;
          for (BddRef f : ins) acc = a_bdds.manager.apply_or(acc, f);
          if (node.type == netlist::GateType::Nor) acc = a_bdds.manager.apply_not(acc);
          break;
        }
        case netlist::GateType::Xor:
        case netlist::GateType::Xnor: {
          acc = kFalse;
          for (BddRef f : ins) acc = a_bdds.manager.apply_xor(acc, f);
          if (node.type == netlist::GateType::Xnor) acc = a_bdds.manager.apply_not(acc);
          break;
        }
        default: acc = kFalse; break;
      }
      b_fn[id] = acc;
    } catch (const BddOverflow&) {
      result.failure_reason = "BDD node budget exceeded";
      return result;
    }
  }

  for (const auto& [name, a_node] : a_outs) {
    const NodeId b_node = b_outs.at(name);
    if (!a_bdds.function[a_node] || !b_fn[b_node]) {
      result.failure_reason = "BDD unavailable for output '" + name + "'";
      return result;
    }
    const BddRef fa = *a_bdds.function[a_node];
    const BddRef fb = *b_fn[b_node];
    if (fa != fb) {
      result.counterexample_output = name;
      // Distinguishing assignment: restrict-based descent of the XOR
      // toward the true terminal (diff is satisfiable since fa != fb).
      const BddRef diff = a_bdds.manager.apply_xor(fa, fb);
      const std::size_t nv = a_sources.size();
      std::vector<bool> cex(nv, false);
      BddRef walk = diff;
      for (std::size_t i = 0; i < nv && walk != kTrue; ++i) {
        BddManager& m = a_bdds.manager;
        const BddRef hi = m.restrict_var(walk, i, true);
        if (hi != kFalse) {
          cex[i] = true;
          walk = hi;
        } else {
          walk = m.restrict_var(walk, i, false);
        }
      }
      result.counterexample = cex;
      result.equivalent = false;
      return result;
    }
  }
  result.equivalent = true;
  return result;
}

}  // namespace spsta::bdd
