/// \file bdd_netlist.hpp
/// Symbolic simulation of a netlist into BDDs: one Boolean function per
/// net over the timing-source variables (PIs and DFF outputs). This is the
/// "symbolic simulation which computes Boolean functions for each node"
/// of paper Sec. 3.5, enabling exact signal probabilities that respect
/// reconvergent-fanout correlation.

#pragma once

#include <optional>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"

namespace spsta::bdd {

/// BDDs for every node of a netlist.
struct NetlistBdds {
  /// The manager owning all functions; variable i corresponds to
  /// sources[i].
  BddManager manager;
  /// Timing sources in variable order.
  std::vector<netlist::NodeId> sources;
  /// function[node]: the node's Boolean function, or nullopt if the
  /// per-node growth cap was exceeded (clients fall back to approximate
  /// propagation for such nodes).
  std::vector<std::optional<BddRef>> function;

  explicit NetlistBdds(std::size_t num_vars, std::size_t max_nodes)
      : manager(num_vars, max_nodes) {}
};

/// Builds BDDs for all nodes in topological order. Nodes whose function
/// would push the manager past \p max_nodes are marked nullopt, as is
/// every node depending on them.
[[nodiscard]] NetlistBdds build_netlist_bdds(const netlist::Netlist& design,
                                             std::size_t max_nodes = 1u << 22);

}  // namespace spsta::bdd
