/// \file bdd.hpp
/// A reduced ordered binary decision diagram (ROBDD) package, built for the
/// paper's exact signal-probability computation (Sec. 2.2.1: "by
/// representing a Boolean function in a BDD, such computation takes linear
/// time in terms of the BDD size") and for Boolean-difference probabilities
/// in transition-density power estimation (Sec. 2.2.2).
///
/// Design: integer node references into a manager-owned node table, a
/// unique table guaranteeing canonicity, an ITE computed-table, and a
/// weighted terminal-probability evaluator.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace spsta::bdd {

/// Reference to a BDD node owned by a BddManager. 0 and 1 are the
/// constant-false / constant-true terminals.
using BddRef = std::uint32_t;
inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

/// Thrown when a construction would exceed the manager's node limit.
class BddOverflow : public std::runtime_error {
 public:
  BddOverflow() : std::runtime_error("BDD node limit exceeded") {}
};

/// Manager for BDDs over a fixed number of variables with a fixed order
/// (variable 0 is the topmost). All BddRefs returned by one manager stay
/// valid for the manager's lifetime (no garbage collection; analyses are
/// one-shot netlist traversals).
class BddManager {
 public:
  /// \p max_nodes bounds the node table; constructions that would grow
  /// past it throw BddOverflow (callers fall back to approximations).
  explicit BddManager(std::size_t num_vars, std::size_t max_nodes = 1u << 22);

  [[nodiscard]] std::size_t num_vars() const noexcept { return num_vars_; }
  /// Total nodes allocated (including both terminals).
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// The function "variable i".
  [[nodiscard]] BddRef var(std::size_t i);
  /// The function "NOT variable i".
  [[nodiscard]] BddRef nvar(std::size_t i);

  /// If-then-else: ite(f, g, h) = f·g + f'·h — the universal connective.
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);

  [[nodiscard]] BddRef apply_not(BddRef f);
  [[nodiscard]] BddRef apply_and(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_or(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_xor(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_nand(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_nor(BddRef f, BddRef g);
  [[nodiscard]] BddRef apply_xnor(BddRef f, BddRef g);

  /// Cofactor: f with variable \p i fixed to \p value.
  [[nodiscard]] BddRef restrict_var(BddRef f, std::size_t i, bool value);

  /// Boolean difference df/dx_i = f|x=1 XOR f|x=0 (paper Eq. 7): the
  /// condition under which a toggle on x_i propagates to f.
  [[nodiscard]] BddRef boolean_difference(BddRef f, std::size_t i);

  /// Existential quantification over variable \p i.
  [[nodiscard]] BddRef exists(BddRef f, std::size_t i);

  /// Evaluates f on a complete input assignment.
  [[nodiscard]] bool evaluate(BddRef f, std::span<const bool> assignment) const;

  /// P(f = 1) given independent P(x_i = 1) probabilities (paper Eq. 5
  /// computed exactly over the DAG). Linear in the BDD size.
  [[nodiscard]] double probability(BddRef f, std::span<const double> var_probs) const;

  /// Number of satisfying assignments over all num_vars() variables.
  [[nodiscard]] double sat_count(BddRef f) const;

  /// Variables f structurally depends on, in order.
  [[nodiscard]] std::vector<std::size_t> support(BddRef f) const;

  /// Count of distinct nodes reachable from f (terminals included).
  [[nodiscard]] std::size_t node_count(BddRef f) const;

 private:
  struct Node {
    std::uint32_t var;  ///< kTerminalVar for terminals
    BddRef low;
    BddRef high;
  };
  static constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFu;

  [[nodiscard]] BddRef make_node(std::uint32_t var, BddRef low, BddRef high);
  [[nodiscard]] std::uint32_t top_var(BddRef f, BddRef g, BddRef h) const noexcept;
  [[nodiscard]] BddRef cofactor(BddRef f, std::uint32_t var, bool value) const noexcept;

  /// Exact-key hash for (f, g, h) triples and (var, low, high) triples.
  struct TripleHash {
    std::size_t operator()(const std::array<std::uint32_t, 3>& k) const noexcept {
      std::uint64_t x = k[0];
      x = x * 0x9E3779B97F4A7C15ULL + k[1];
      x = x * 0x9E3779B97F4A7C15ULL + k[2];
      x ^= x >> 29;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 32;
      return static_cast<std::size_t>(x);
    }
  };
  using TripleMap = std::unordered_map<std::array<std::uint32_t, 3>, BddRef, TripleHash>;

  std::size_t num_vars_;
  std::size_t max_nodes_;
  std::vector<Node> nodes_;
  TripleMap unique_;
  TripleMap ite_cache_;
  TripleMap restrict_cache_;
  std::vector<BddRef> var_refs_;
};

}  // namespace spsta::bdd
