/// \file equivalence.hpp
/// Combinational equivalence checking via BDDs: two netlists are
/// equivalent when every like-named primary output (and DFF D pin)
/// computes the same Boolean function of the like-named timing sources.
/// Used to validate netlist transformations and parser round-trips.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace spsta::bdd {

/// Result of an equivalence check.
struct EquivalenceResult {
  bool equivalent = false;
  /// First mismatching output name (empty when equivalent or on setup
  /// mismatch).
  std::string counterexample_output;
  /// A source assignment distinguishing the two (parallel to
  /// `source_names`), present when a functional mismatch was found.
  std::optional<std::vector<bool>> counterexample;
  std::vector<std::string> source_names;
  /// Non-empty when the designs are structurally incomparable (different
  /// source/output name sets) or a BDD overflowed.
  std::string failure_reason;
};

/// Checks combinational equivalence of \p a and \p b. Sources are matched
/// by name (both designs must have identical source name sets), as are
/// outputs (primary outputs plus DFF D functions, keyed by the DFF name).
[[nodiscard]] EquivalenceResult check_equivalence(const netlist::Netlist& a,
                                                  const netlist::Netlist& b,
                                                  std::size_t max_bdd_nodes = 1u << 22);

}  // namespace spsta::bdd
