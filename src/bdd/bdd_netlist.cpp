#include "bdd/bdd_netlist.hpp"

#include "netlist/levelize.hpp"

namespace spsta::bdd {

using netlist::GateType;
using netlist::NodeId;

namespace {

BddRef combine(BddManager& m, GateType type, const std::vector<BddRef>& ins) {
  switch (type) {
    case GateType::Const0: return kFalse;
    case GateType::Const1: return kTrue;
    case GateType::Buf: return ins.at(0);
    case GateType::Not: return m.apply_not(ins.at(0));
    case GateType::And:
    case GateType::Nand: {
      BddRef acc = kTrue;
      for (BddRef f : ins) acc = m.apply_and(acc, f);
      return type == GateType::And ? acc : m.apply_not(acc);
    }
    case GateType::Or:
    case GateType::Nor: {
      BddRef acc = kFalse;
      for (BddRef f : ins) acc = m.apply_or(acc, f);
      return type == GateType::Or ? acc : m.apply_not(acc);
    }
    case GateType::Xor:
    case GateType::Xnor: {
      BddRef acc = kFalse;
      for (BddRef f : ins) acc = m.apply_xor(acc, f);
      return type == GateType::Xor ? acc : m.apply_not(acc);
    }
    case GateType::Input:
    case GateType::Dff: break;  // handled by caller
  }
  return kFalse;
}

}  // namespace

NetlistBdds build_netlist_bdds(const netlist::Netlist& design, std::size_t max_nodes) {
  const std::vector<NodeId> sources = design.timing_sources();
  NetlistBdds out(sources.size(), max_nodes);
  out.sources = sources;
  out.function.assign(design.node_count(), std::nullopt);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.function[sources[i]] = out.manager.var(i);
  }

  const netlist::Levelization lv = netlist::levelize(design);
  for (NodeId id : lv.order) {
    const netlist::Node& node = design.node(id);
    if (!netlist::is_combinational(node.type)) continue;
    std::vector<BddRef> ins;
    ins.reserve(node.fanins.size());
    bool ok = true;
    for (NodeId f : node.fanins) {
      if (!out.function[f]) {
        ok = false;
        break;
      }
      ins.push_back(*out.function[f]);
    }
    if (!ok) continue;
    try {
      out.function[id] = combine(out.manager, node.type, ins);
    } catch (const BddOverflow&) {
      out.function[id] = std::nullopt;  // this node and its dependents degrade
    }
  }
  return out;
}

}  // namespace spsta::bdd
