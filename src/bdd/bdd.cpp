#include "bdd/bdd.hpp"

#include <algorithm>

namespace spsta::bdd {

namespace {
constexpr std::size_t kMaxNodesHard = 1u << 26;
constexpr std::size_t kMaxVarsHard = 0xFFFFFFFEu;
}  // namespace

BddManager::BddManager(std::size_t num_vars, std::size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(std::min(max_nodes, kMaxNodesHard)) {
  if (num_vars > kMaxVarsHard) {
    throw std::invalid_argument("BddManager: too many variables");
  }
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1 = true
  var_refs_.resize(num_vars_, kFalse);
  for (std::size_t i = 0; i < num_vars_; ++i) {
    var_refs_[i] = make_node(static_cast<std::uint32_t>(i), kFalse, kTrue);
  }
}

BddRef BddManager::make_node(std::uint32_t var, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  const std::array<std::uint32_t, 3> key{var, low, high};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= max_nodes_) throw BddOverflow();
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(std::size_t i) { return var_refs_.at(i); }

BddRef BddManager::nvar(std::size_t i) {
  return make_node(static_cast<std::uint32_t>(i), kTrue, kFalse);
}

std::uint32_t BddManager::top_var(BddRef f, BddRef g, BddRef h) const noexcept {
  std::uint32_t v = kTerminalVar;
  v = std::min(v, nodes_[f].var);
  v = std::min(v, nodes_[g].var);
  v = std::min(v, nodes_[h].var);
  return v;
}

BddRef BddManager::cofactor(BddRef f, std::uint32_t var, bool value) const noexcept {
  const Node& n = nodes_[f];
  if (n.var != var) return f;
  return value ? n.high : n.low;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::array<std::uint32_t, 3> cache_key{f, g, h};
  const auto it = ite_cache_.find(cache_key);
  if (it != ite_cache_.end()) return it->second;

  const std::uint32_t v = top_var(f, g, h);
  const BddRef f0 = cofactor(f, v, false), f1 = cofactor(f, v, true);
  const BddRef g0 = cofactor(g, v, false), g1 = cofactor(g, v, true);
  const BddRef h0 = cofactor(h, v, false), h1 = cofactor(h, v, true);
  const BddRef low = ite(f0, g0, h0);
  const BddRef high = ite(f1, g1, h1);
  const BddRef result = make_node(v, low, high);
  ite_cache_.emplace(cache_key, result);
  return result;
}

BddRef BddManager::apply_not(BddRef f) { return ite(f, kFalse, kTrue); }
BddRef BddManager::apply_and(BddRef f, BddRef g) { return ite(f, g, kFalse); }
BddRef BddManager::apply_or(BddRef f, BddRef g) { return ite(f, kTrue, g); }
BddRef BddManager::apply_xor(BddRef f, BddRef g) { return ite(f, apply_not(g), g); }
BddRef BddManager::apply_nand(BddRef f, BddRef g) { return apply_not(apply_and(f, g)); }
BddRef BddManager::apply_nor(BddRef f, BddRef g) { return apply_not(apply_or(f, g)); }
BddRef BddManager::apply_xnor(BddRef f, BddRef g) { return apply_not(apply_xor(f, g)); }

BddRef BddManager::restrict_var(BddRef f, std::size_t i, bool value) {
  const Node& n = nodes_[f];
  if (n.var == kTerminalVar || n.var > i) return f;
  if (n.var == i) return value ? n.high : n.low;
  const std::array<std::uint32_t, 3> key{
      f, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(value)};
  const auto it = restrict_cache_.find(key);
  if (it != restrict_cache_.end()) return it->second;
  const BddRef low = restrict_var(n.low, i, value);
  const BddRef high = restrict_var(n.high, i, value);
  const BddRef result = make_node(n.var, low, high);
  restrict_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::boolean_difference(BddRef f, std::size_t i) {
  return apply_xor(restrict_var(f, i, true), restrict_var(f, i, false));
}

BddRef BddManager::exists(BddRef f, std::size_t i) {
  return apply_or(restrict_var(f, i, true), restrict_var(f, i, false));
}

bool BddManager::evaluate(BddRef f, std::span<const bool> assignment) const {
  while (nodes_[f].var != kTerminalVar) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.high : n.low;
  }
  return f == kTrue;
}

double BddManager::probability(BddRef f, std::span<const double> var_probs) const {
  std::unordered_map<BddRef, double> memo;
  memo.emplace(kFalse, 0.0);
  memo.emplace(kTrue, 1.0);
  // Iterative post-order to avoid recursion depth issues on deep BDDs.
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    if (memo.contains(cur)) {
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[cur];
    const bool lo_done = memo.contains(n.low);
    const bool hi_done = memo.contains(n.high);
    if (lo_done && hi_done) {
      const double p = var_probs[n.var];
      memo.emplace(cur, (1.0 - p) * memo.at(n.low) + p * memo.at(n.high));
      stack.pop_back();
    } else {
      if (!lo_done) stack.push_back(n.low);
      if (!hi_done) stack.push_back(n.high);
    }
  }
  return memo.at(f);
}

double BddManager::sat_count(BddRef f) const {
  std::vector<double> probs(num_vars_, 0.5);
  double count = probability(f, probs);
  for (std::size_t i = 0; i < num_vars_; ++i) count *= 2.0;
  return count;
}

std::vector<std::size_t> BddManager::support(BddRef f) const {
  std::vector<char> seen_node(nodes_.size(), 0);
  std::vector<char> seen_var(num_vars_, 0);
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    stack.pop_back();
    if (seen_node[cur]) continue;
    seen_node[cur] = 1;
    const Node& n = nodes_[cur];
    if (n.var == kTerminalVar) continue;
    seen_var[n.var] = 1;
    stack.push_back(n.low);
    stack.push_back(n.high);
  }
  std::vector<std::size_t> vars;
  for (std::size_t i = 0; i < num_vars_; ++i) {
    if (seen_var[i]) vars.push_back(i);
  }
  return vars;
}

std::size_t BddManager::node_count(BddRef f) const {
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<BddRef> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = 1;
    ++count;
    const Node& n = nodes_[cur];
    if (n.var != kTerminalVar) {
      stack.push_back(n.low);
      stack.push_back(n.high);
    }
  }
  return count;
}

}  // namespace spsta::bdd
