/// \file spsta_api.hpp
/// The public face of the toolkit: one umbrella header, one `Analyzer`.
///
/// An `Analyzer` owns a design (netlist + delay model + source statistics)
/// and the `CompiledDesign` analysis plan derived from it — levelization,
/// arena adjacency, structural delay span, switch-pattern cache — compiled
/// lazily on first use and reused by every subsequent run, so repeated
/// analyses touch zero structural code. A single `AnalysisRequest` selects
/// any engine (moment / numeric / canonical SPSTA, block-based SSTA, the
/// Monte Carlo ground truth) and `run()` returns a unified
/// `AnalysisReport`. Requests are validated against the selected engine:
/// options the engine cannot honor (e.g. grid settings for the moment
/// engine, run counts for anything but Monte Carlo) are rejected with
/// `std::invalid_argument` instead of being silently ignored.
///
/// The per-engine `run_*` functions under src/core, src/ssta and src/mc
/// remain available as implementation-level entry points; results through
/// either path are bit-identical at any thread count (the repo's
/// determinism contract, tests/determinism_test.cpp).
///
/// Quick start:
///
///     spsta::Analyzer analyzer(std::move(netlist));   // unit delays,
///                                                     // scenario I inputs
///     spsta::AnalysisRequest request;
///     request.engine = spsta::Engine::SpstaMoment;
///     const spsta::AnalysisReport report = analyzer.run(request);
///     const auto& top = report.moment().node[some_id];

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "core/compiled_design.hpp"
#include "core/spsta.hpp"
#include "core/spsta_canonical.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/delay_model.hpp"
#include "netlist/four_value.hpp"
#include "netlist/netlist.hpp"
#include "ssta/ssta.hpp"
#include "util/thread_pool.hpp"

namespace spsta {

/// The analysis engines one `Analyzer` dispatches to. Wire names (used by
/// the service protocol and the CLI) are "spsta_moment", "spsta_numeric",
/// "canonical", "ssta", "mc".
enum class Engine { SpstaMoment, SpstaNumeric, Canonical, Ssta, Mc };

/// Wire name of an engine.
[[nodiscard]] std::string_view to_string(Engine engine) noexcept;

/// Parses a wire name; nullopt for unknown names.
[[nodiscard]] std::optional<Engine> parse_engine(std::string_view name) noexcept;

/// One analysis request. Every field except `engine` is optional: unset
/// fields take the engine's defaults (and the Analyzer's default thread
/// count). A field set for an engine that cannot honor it is an error —
/// `Analyzer::validate` throws std::invalid_argument — so a request never
/// silently means less than it says:
///   * grid_dt / grid_pad_sigma / max_grid_points — numeric engine only
///   * runs / seed / track_circuit_max            — Monte Carlo only
///   * threads — accepted by every engine (an execution hint; results are
///     thread-count-invariant, and serial engines run on one thread).
///
/// Numeric runs execute on the fast kernel layer (DESIGN.md §12, §16):
/// delay kernels and their FFT spectra are precomputed in the plan,
/// each node issues one batched convolution over both transition
/// columns, and the inner loops dispatch to a runtime-selected SIMD
/// tier that is bit-identical to the scalar reference. Two process-wide
/// knobs (not per-request fields) tune the layer:
///   * direct->FFT crossover — `stats::set_conv_crossover()` or the
///     `SPSTA_CONV_CROSSOVER` environment variable (malformed values
///     are rejected with a one-time warning and fall back to the
///     calibrated default). Process-wide because it must stay constant
///     while runs are in flight to keep the kernel choice a pure
///     function of sizes; changing it between runs changes rounding
///     (not accuracy) of subsequent results.
///   * SIMD tier — `SPSTA_FORCE_SCALAR=1` or
///     `stats::simd::set_force_scalar()` pins the scalar reference.
///     Tier choice never changes a result bit (the contract in
///     stats/simd.hpp), so this knob trades only speed.
/// Any fixed setting of either knob preserves thread-count bit-identity.
struct AnalysisRequest {
  Engine engine = Engine::SpstaMoment;
  std::optional<unsigned> threads;

  std::optional<double> grid_dt;
  std::optional<double> grid_pad_sigma;
  std::optional<std::size_t> max_grid_points;

  std::optional<std::uint64_t> runs;
  std::optional<std::uint64_t> seed;
  std::optional<bool> track_circuit_max;
};

/// Any engine's result.
using AnalysisResult =
    std::variant<core::SpstaResult, core::SpstaNumericResult,
                 core::SpstaCanonicalResult, ssta::SstaResult, mc::MonteCarloResult>;

/// The unified result of one `Analyzer::run`.
struct AnalysisReport {
  Engine engine = Engine::SpstaMoment;
  AnalysisResult result;
  double elapsed_seconds = 0.0;

  /// Typed accessors; each throws std::logic_error when the report holds a
  /// different engine's result.
  [[nodiscard]] const core::SpstaResult& moment() const;
  [[nodiscard]] const core::SpstaNumericResult& numeric() const;
  [[nodiscard]] const core::SpstaCanonicalResult& canonical() const;
  [[nodiscard]] const ssta::SstaResult& ssta() const;
  [[nodiscard]] const mc::MonteCarloResult& monte_carlo() const;
};

/// Analyzer construction options. (Namespace-scope rather than nested so
/// `= {}` default arguments can use its member initializers inside the
/// Analyzer class body.)
struct AnalyzerOptions {
  /// Default worker threads for requests that leave `threads` unset
  /// (0 = all hardware threads).
  unsigned threads = 1;
  /// Optional pattern cache shared across Analyzers (e.g. the service's
  /// process-wide cache); when null each plan uses its own.
  core::PatternCache* shared_pattern_cache = nullptr;
};

/// The unified analysis entry point: owns the design, its compiled plan,
/// and the execution resources shared across runs (switch-pattern cache
/// via the plan, thread pool).
///
/// Thread model: `run()` is safe to call concurrently — the plan compiles
/// once under a lock and is immutable afterwards; concurrent runs that
/// contend for the shared pool fall back to a private one. ECO edits
/// (`set_delay`, `set_source`) must not race running analyses.
class Analyzer {
 public:
  using Options = AnalyzerOptions;

  /// Full construction: the Analyzer takes ownership of the netlist, delay
  /// model and per-source statistics (one entry broadcasts to all sources,
  /// as everywhere else).
  Analyzer(netlist::Netlist design, netlist::DelayModel delays,
           std::vector<netlist::SourceStats> sources, Options options = {});

  /// Paper defaults: unit gate delays, scenario-I statistics on every
  /// timing source.
  explicit Analyzer(netlist::Netlist design, Options options = {});

  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  [[nodiscard]] const netlist::Netlist& design() const noexcept { return design_; }
  [[nodiscard]] const netlist::DelayModel& delays() const noexcept { return delays_; }
  [[nodiscard]] std::span<const netlist::SourceStats> sources() const noexcept {
    return sources_;
  }

  /// The compiled analysis plan, built on first use and cached until an
  /// ECO edit invalidates it. Valid until the next `set_delay`.
  [[nodiscard]] const core::CompiledDesign& plan();

  /// Content hash of (netlist, delay model) — see
  /// CompiledDesign::content_hash.
  [[nodiscard]] std::uint64_t content_hash();

  /// Throws std::invalid_argument when the request sets an option its
  /// engine cannot honor, or sets a value out of range.
  static void validate(const AnalysisRequest& request);

  /// Validates, compiles (if needed) and dispatches the request.
  [[nodiscard]] AnalysisReport run(const AnalysisRequest& request);

  /// ECO edits. `set_delay` recompiles the plan on next use (the delay
  /// span products and content hash move); `set_source` does not — source
  /// statistics are run inputs, not part of the plan.
  void set_delay(netlist::NodeId id, const stats::Gaussian& delay);
  void set_source(std::size_t source_index, const netlist::SourceStats& stats);

 private:
  /// Pool for `threads` participants if the shared one is free, else null
  /// (caller uses a private pool). The unique_lock keeps it reserved.
  [[nodiscard]] util::ThreadPool* acquire_pool(unsigned threads,
                                               std::unique_lock<std::mutex>& lock);

  netlist::Netlist design_;
  netlist::DelayModel delays_;
  std::vector<netlist::SourceStats> sources_;
  Options options_;

  std::mutex plan_mutex_;
  std::unique_ptr<core::CompiledDesign> plan_;

  std::mutex pool_mutex_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace spsta
