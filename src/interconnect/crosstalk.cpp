#include "interconnect/crosstalk.hpp"

#include <algorithm>
#include <cmath>

#include "stats/normal.hpp"

namespace spsta::interconnect {

namespace {

/// Integral of u * phi_{m,s}(u) over [a, b].
double first_moment_piece(double m, double s, double a, double b) {
  const double alpha = (a - m) / s;
  const double beta = (b - m) / s;
  return m * (stats::normal_cdf(beta) - stats::normal_cdf(alpha)) -
         s * (stats::normal_pdf(beta) - stats::normal_pdf(alpha));
}

}  // namespace

CrosstalkPush analyze_crosstalk(const stats::Gaussian& victim_arrival,
                                const stats::Gaussian& aggressor_arrival,
                                double aggressor_switch_probability,
                                const CouplingModel& coupling) {
  CrosstalkPush out;
  const double p_switch = std::clamp(aggressor_switch_probability, 0.0, 1.0);
  const double w = coupling.window;
  const double m = aggressor_arrival.mean - victim_arrival.mean;
  const double var = aggressor_arrival.var + victim_arrival.var;
  out.worst_case_push = p_switch > 0.0 ? coupling.peak_push : 0.0;
  if (w <= 0.0 || p_switch <= 0.0) return out;

  if (var <= 0.0) {
    // Deterministic offset.
    const bool aligned = std::abs(m) <= w;
    out.alignment_probability = aligned ? p_switch : 0.0;
    out.mean_push =
        aligned ? p_switch * coupling.peak_push * (1.0 - std::abs(m) / w) : 0.0;
    return out;
  }

  const double s = std::sqrt(var);
  const double p_window =
      stats::normal_cdf((w - m) / s) - stats::normal_cdf((-w - m) / s);
  out.alignment_probability = p_switch * p_window;

  // E[(1 - |u|/w) 1(|u|<=w)] = P(window) - (1/w) * E[|u| 1(|u|<=w)].
  const double abs_in_window =
      -first_moment_piece(m, s, -w, 0.0) + first_moment_piece(m, s, 0.0, w);
  const double kernel = std::max(0.0, p_window - abs_in_window / w);
  out.mean_push = p_switch * coupling.peak_push * kernel;
  return out;
}

CrosstalkPush analyze_crosstalk(const stats::PiecewiseDensity& victim_pdf,
                                const stats::PiecewiseDensity& aggressor_top,
                                const CouplingModel& coupling) {
  CrosstalkPush out;
  const double agg_mass = std::min(1.0, aggressor_top.mass());
  out.worst_case_push = agg_mass > 0.0 ? coupling.peak_push : 0.0;
  const double w = coupling.window;
  if (w <= 0.0 || agg_mass <= 0.0 || victim_pdf.empty()) return out;

  // Integrate over the victim pdf: at victim time t, the aggressor t.o.p.
  // mass inside [t-w, t+w] aligns, and the expected kernel value is the
  // t.o.p.-weighted triangular average.
  const stats::GridSpec& grid = victim_pdf.grid();
  const stats::PiecewiseDensity vic = victim_pdf.normalized();
  double align = 0.0;
  double push = 0.0;
  double prev_a = 0.0, prev_p = 0.0;
  for (std::size_t i = 0; i < grid.n; ++i) {
    const double t = grid.time_at(i);
    const double fv = vic.values()[i];
    // Window mass and kernel expectation from the aggressor density.
    const double in_window = aggressor_top.cdf_at(t + w) - aggressor_top.cdf_at(t - w);
    // Approximate the kernel integral by sampling the aggressor density
    // across the window (trapezoid over 16 sub-samples).
    double kernel = 0.0;
    constexpr int kSub = 16;
    double prev = aggressor_top.value_at(t - w) * 0.0;  // kernel is 0 at the edge
    for (int j = 1; j <= kSub; ++j) {
      const double u = -w + 2.0 * w * static_cast<double>(j) / kSub;
      const double val =
          aggressor_top.value_at(t + u) * (1.0 - std::abs(u) / w);
      kernel += 0.5 * (prev + val) * (2.0 * w / kSub);
      prev = val;
    }
    const double a_term = fv * in_window;
    const double p_term = fv * kernel;
    if (i > 0) {
      align += 0.5 * (prev_a + a_term) * grid.dt;
      push += 0.5 * (prev_p + p_term) * grid.dt;
    }
    prev_a = a_term;
    prev_p = p_term;
  }
  out.alignment_probability = std::clamp(align, 0.0, 1.0);
  out.mean_push = coupling.peak_push * std::max(0.0, push);
  return out;
}

}  // namespace spsta::interconnect
