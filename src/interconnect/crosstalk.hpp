/// \file crosstalk.hpp
/// Statistical crosstalk aggressor alignment — the paper's motivating
/// example (Sec. 1 and refs [6, 7]): a coupled aggressor switching within
/// a window around the victim's transition pushes the victim's delay, and
/// "the probability for two signals to arrive at about the same time ...
/// cannot be accurately estimated in SSTA, it can only be assumed, e.g.,
/// that it always happens in worst case analysis".
///
/// Model: when the aggressor switches at offset u = t_agg - t_vic inside
/// [-window, +window], the victim's delay is pushed by
///   push(u) = peak_push * (1 - |u| / window)     (triangular kernel).
/// Worst-case analysis assumes u = 0 and a switching aggressor; the
/// statistical analysis integrates the kernel over the joint arrival
/// distribution and weights by the aggressor's transition probability —
/// exactly what the four-value t.o.p. provides.

#pragma once

#include "stats/gaussian.hpp"
#include "stats/piecewise.hpp"

namespace spsta::interconnect {

/// Coupling parameters.
struct CouplingModel {
  double peak_push = 0.5;  ///< delay push at perfect alignment
  double window = 1.0;     ///< half-width of the alignment window
};

/// Statistics of the victim's delay push.
struct CrosstalkPush {
  double alignment_probability = 0.0;  ///< P(aggressor switches in-window)
  double mean_push = 0.0;              ///< E[push] (unconditional)
  double worst_case_push = 0.0;        ///< peak_push when P(switch) > 0
};

/// Closed-form analysis for Gaussian victim/aggressor arrivals:
/// u ~ N(mu_a - mu_v, var_a + var_v) (independent arrivals), aggressor
/// switching with probability \p aggressor_switch_probability.
[[nodiscard]] CrosstalkPush analyze_crosstalk(const stats::Gaussian& victim_arrival,
                                              const stats::Gaussian& aggressor_arrival,
                                              double aggressor_switch_probability,
                                              const CouplingModel& coupling);

/// Numeric analysis over t.o.p. densities: the victim density is a
/// normalized arrival pdf; the aggressor t.o.p. carries its own mass
/// (transition probability), so no separate switch probability is needed.
[[nodiscard]] CrosstalkPush analyze_crosstalk(const stats::PiecewiseDensity& victim_pdf,
                                              const stats::PiecewiseDensity& aggressor_top,
                                              const CouplingModel& coupling);

}  // namespace spsta::interconnect
